//! Cross-crate integration tests: the full crawl → download → analyze →
//! dedup pipeline against a generated hub, checked against the generator's
//! ground truth.

use dhub_study::figures;
use dhub_study::pipeline::{run_study, StudyData};
use dhub_synth::{generate_hub, GroundTruth, SynthConfig, SyntheticHub};
use std::sync::OnceLock;

fn hub() -> &'static SyntheticHub {
    static HUB: OnceLock<SyntheticHub> = OnceLock::new();
    HUB.get_or_init(|| generate_hub(&SynthConfig::tiny(20170530).with_repos(120)))
}

fn data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| run_study(hub(), dhub_par::default_threads()))
}

fn truth() -> &'static GroundTruth {
    &hub().truth
}

#[test]
fn crawler_finds_every_repository() {
    let d = data();
    assert_eq!(d.crawl.distinct_repos, truth().total_repos());
    // The index injects duplicates, so raw hits exceed distinct repos.
    assert!(d.crawl.raw_results > d.crawl.distinct_repos);
}

#[test]
fn download_report_matches_ground_truth() {
    let d = data();
    let t = truth();
    assert_eq!(d.download.images_downloaded, t.ok_repos.len());
    assert_eq!(d.download.failed_auth, t.auth_repos.len());
    assert_eq!(d.download.failed_no_latest, t.no_latest_repos.len());
    assert_eq!(d.download.failed_other, 0);
}

#[test]
fn every_layer_decodes() {
    assert_eq!(data().analyze_errors, 0);
}

#[test]
fn unique_layers_never_fetched_twice() {
    let d = data();
    let total_refs: usize = d.image_layers.iter().map(|i| i.layers.len()).sum();
    assert_eq!(
        d.download.layer_fetches_skipped as usize + d.download.unique_layers,
        total_refs,
        "every manifest layer reference is either a fetch or a skip"
    );
}

#[test]
fn empty_layer_is_most_referenced() {
    let d = data();
    let sizes = d.layer_sizes();
    let sharing = dhub_dedup::layer_sharing(&d.image_layers, &sizes);
    let (top_digest, top_refs) = sharing.top(1)[0];
    assert_eq!(Some(top_digest), truth().empty_layer_digest);
    // Roughly half of all images include it (EMPTY_LAYER_IMAGE_FRACTION).
    let share = top_refs as f64 / d.images.len() as f64;
    assert!((0.3..0.75).contains(&share), "empty-layer share {share}");
}

#[test]
fn dedup_invariants() {
    let d = data();
    let layers = d.layer_slice();
    let stats = dhub_dedup::file_dedup(&layers, 4);
    assert!(stats.unique_files <= stats.total_instances);
    assert!(stats.unique_bytes <= stats.total_bytes);
    assert!(stats.count_ratio() >= 1.0);
    assert!(stats.capacity_ratio() >= 1.0);
    let sum_of_repeats: u64 = stats.repeat_counts.iter().sum();
    assert_eq!(sum_of_repeats, stats.total_instances);
    // The analyzer's own totals agree with the dedup index.
    let files: u64 = layers.iter().map(|l| l.file_count).sum();
    assert_eq!(files, stats.total_instances);
}

#[test]
fn image_profiles_are_consistent_sums() {
    let d = data();
    for img in d.images.iter().take(50) {
        let mut fis = 0;
        let mut files = 0;
        for l in &img.layers {
            let lp = &d.layers[l];
            fis += lp.fls;
            files += lp.file_count;
        }
        assert_eq!(img.fis, fis);
        assert_eq!(img.file_count, files);
        assert!(img.cis > 0);
    }
}

#[test]
fn all_figures_produce_reports() {
    let reports = figures::all_figures(data());
    assert_eq!(reports.len(), 29, "Table 1 + Figs. 3..=29 + Table 2");
    for r in &reports {
        assert!(!r.rows.is_empty(), "{} has no rows", r.id);
        let text = r.render();
        assert!(text.contains(r.id));
        for a in &r.anchors {
            assert!(a.measured.is_finite(), "{}: anchor {} not finite", r.id, a.name);
            assert!(a.measured >= 0.0, "{}: anchor {} negative", r.id, a.name);
        }
    }
}

#[test]
fn famous_repositories_reproduced() {
    let d = data();
    let nginx = d.pulls.iter().find(|(r, _)| r.full() == "nginx").expect("nginx crawled");
    assert!(nginx.1 >= 650_000_000);
    let max = d.pulls.iter().map(|(_, c)| *c).max().unwrap();
    assert_eq!(max, nginx.1, "nginx is the most-pulled repository");
}

#[test]
fn pipeline_is_deterministic_across_thread_counts() {
    let hub2 = generate_hub(&SynthConfig::tiny(20170530).with_repos(120));
    let d2 = run_study(&hub2, 2);
    let d = data();
    assert_eq!(d.layers.len(), d2.layers.len());
    assert_eq!(d.images.len(), d2.images.len());
    let f1: u64 = d.layer_slice().iter().map(|l| l.file_count).sum();
    let f2: u64 = d2.layer_slice().iter().map(|l| l.file_count).sum();
    assert_eq!(f1, f2);
    // Same layer digests exactly.
    let mut k1: Vec<_> = d.layers.keys().collect();
    let mut k2: Vec<_> = d2.layers.keys().collect();
    k1.sort();
    k2.sort();
    assert_eq!(k1, k2);
}

#[test]
fn registry_bytes_match_downloaded_bytes() {
    let d = data();
    let stored: u64 = d.layer_slice().iter().map(|l| l.cls).sum();
    assert_eq!(d.download.bytes_fetched, stored);
}

#[test]
fn classifier_sees_no_unclassifiable_flood() {
    // The generator forges valid signatures; OtherBinary should stay a
    // modest minority (it is 8.8 % of the mix), not a catch-all flood.
    let d = data();
    let census = figures::TypeCensus::build(d);
    let other = census.count(dhub_model::FileKind::OtherBinary) as f64;
    let total = census.total_count() as f64;
    assert!(other / total < 0.2, "OtherBinary share {}", other / total);
}
