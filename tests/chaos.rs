//! Chaos suite: the full crawl → download → analyze pipeline under
//! deterministic fault injection.
//!
//! The paper's 30-day crawl survived a flaky public registry. These tests
//! pin fault seeds and assert the reproduction does too: with retries, a
//! faulted run's dataset is *byte-identical* to the fault-free one; with
//! retries disabled, every crawled repository still lands in exactly one
//! outcome bucket.

use dhub_downloader::download_all_http_with;
use dhub_faults::{FaultConfig, FaultInjector, FaultKind, RetryPolicy};
use dhub_mirror::{Mirror, MirrorConfig, MirrorReport, PolicyKind};
use dhub_obs::{MetricsRegistry, MetricsSnapshot};
use dhub_registry::RegistryServer;
use dhub_study::pipeline::{
    run_study_http_with, run_study_obs, run_study_streaming_obs, run_study_streaming_with,
    run_study_with, StudyData,
};
use dhub_synth::{generate_hub, SyntheticHub, SynthConfig};
use std::sync::Arc;

const HUB_SEED: u64 = 42;
const FAULT_SEED: u64 = 7;
const THREADS: usize = 4;

fn hub() -> SyntheticHub {
    generate_hub(&SynthConfig::tiny(HUB_SEED).with_repos(60))
}

fn faulted_hub(rate: f64) -> SyntheticHub {
    let hub = hub();
    let cfg = FaultConfig::uniform(FAULT_SEED, rate);
    hub.registry.set_fault_injector(Some(Arc::new(FaultInjector::new(cfg))));
    hub
}

/// A retry budget large enough that no operation gives up at 20 % faults
/// (21 consecutive faults on one key ≈ 0.2^21 — never at a pinned seed we
/// checked).
fn patient() -> RetryPolicy {
    RetryPolicy::fast(20).with_seed(FAULT_SEED)
}

fn assert_same_dataset(faulted: &StudyData, clean: &StudyData) {
    // Crawl recovered everything.
    assert_eq!(faulted.crawl.raw_results, clean.crawl.raw_results);
    assert_eq!(faulted.crawl.distinct_repos, clean.crawl.distinct_repos);
    assert_eq!(faulted.crawl.pages_fetched, clean.crawl.pages_fetched);
    assert_eq!(faulted.crawl.pages_gave_up, 0);

    // Download counts byte-identical.
    let (f, c) = (&faulted.download, &clean.download);
    assert_eq!(f.images_downloaded, c.images_downloaded);
    assert_eq!(f.unique_layers, c.unique_layers);
    assert_eq!(f.bytes_fetched, c.bytes_fetched);
    assert_eq!(f.layer_fetches_skipped, c.layer_fetches_skipped);
    assert_eq!(f.failed_auth, c.failed_auth);
    assert_eq!(f.failed_no_latest, c.failed_no_latest);
    assert_eq!(f.failed_other, c.failed_other);
    assert_eq!(f.gave_up, 0, "the patient policy must never give up");

    // Analysis results identical layer-by-layer and image-by-image.
    assert_eq!(faulted.layers.len(), clean.layers.len());
    for (d, p) in &clean.layers {
        assert_eq!(faulted.layers.get(d), Some(p), "layer profile diverged under faults");
    }
    assert_eq!(faulted.images, clean.images);

    // Popularity signal unharmed: faulted attempts must not inflate pulls.
    assert_eq!(faulted.pulls, clean.pulls);
}

#[test]
fn faulted_pipeline_with_retries_is_byte_identical() {
    let clean = run_study_with(&hub(), THREADS, &patient());
    assert_eq!(clean.download.retries, 0, "no faults, no retries");

    for rate in [0.0, 0.05, 0.20] {
        let faulted = run_study_with(&faulted_hub(rate), THREADS, &patient());
        assert_same_dataset(&faulted, &clean);
        if rate == 0.0 {
            assert_eq!(faulted.download.retries, 0);
        }
        if rate >= 0.20 {
            assert!(
                faulted.download.retries > 0,
                "20 % fault rate must force download retries"
            );
            // Page-level retries are exercised in dhub-crawler's own chaos
            // tests: this hub has only a handful of search pages, so an
            // all-clean draw at 20 % is legitimate.
        }
    }
}

#[test]
fn chaos_run_is_deterministic_across_thread_counts() {
    // The fault stream is a pure function of (seed, op, key, attempt):
    // per-key attempt sequencing makes the whole report — including the
    // retry counters — independent of worker count.
    let a = run_study_with(&faulted_hub(0.20), 2, &patient());
    let b = run_study_with(&faulted_hub(0.20), 8, &patient());
    assert_eq!(a.download, b.download);
    assert_eq!(a.crawl, b.crawl);
}

#[test]
fn streaming_pipeline_survives_the_same_chaos() {
    let clean = run_study_with(&hub(), THREADS, &patient());
    let faulted = run_study_streaming_with(&faulted_hub(0.20), THREADS, &patient());
    assert_eq!(faulted.crawl.raw_results, clean.crawl.raw_results);
    assert_eq!(faulted.download.images_downloaded, clean.download.images_downloaded);
    assert_eq!(faulted.download.unique_layers, clean.download.unique_layers);
    assert_eq!(faulted.download.bytes_fetched, clean.download.bytes_fetched);
    assert_eq!(faulted.download.failed_auth, clean.download.failed_auth);
    assert_eq!(faulted.download.failed_no_latest, clean.download.failed_no_latest);
    assert_eq!(faulted.download.gave_up, 0);
    assert!(faulted.download.retries > 0);
    for (d, p) in &clean.layers {
        assert_eq!(faulted.layers.get(d), Some(p));
    }
}

/// Every counter the reports are derived from, checked against the report
/// field it backs. A mismatch here means a code path updated one side
/// without the other — exactly the drift the DeltaCounter design forbids.
fn assert_counters_match_reports(snap: &MetricsSnapshot, s: &StudyData) {
    let c = &s.crawl;
    assert_eq!(snap.counter("dhub_crawl_pages_fetched_total"), c.pages_fetched as u64);
    assert_eq!(snap.counter("dhub_crawl_page_retries_total"), c.page_retries as u64);
    assert_eq!(snap.counter("dhub_crawl_pages_gave_up_total"), c.pages_gave_up as u64);
    assert_eq!(snap.counter("dhub_crawl_raw_results_total"), c.raw_results as u64);
    assert_eq!(snap.counter("dhub_crawl_dedup_hits_total"), c.dedup_hits as u64);
    assert_eq!(snap.counter("dhub_crawl_backoff_ns_total"), c.backoff_sleep.as_nanos() as u64);

    let d = &s.download;
    assert_eq!(snap.counter("dhub_download_images_ok_total"), d.images_downloaded as u64);
    assert_eq!(snap.counter("dhub_download_unique_layers_total"), d.unique_layers as u64);
    assert_eq!(snap.counter("dhub_download_bytes_total"), d.bytes_fetched);
    assert_eq!(
        snap.counter("dhub_download_layer_fetches_skipped_total"),
        d.layer_fetches_skipped
    );
    assert_eq!(snap.counter("dhub_download_failed_auth_total"), d.failed_auth as u64);
    assert_eq!(snap.counter("dhub_download_failed_no_latest_total"), d.failed_no_latest as u64);
    assert_eq!(snap.counter("dhub_download_failed_other_total"), d.failed_other as u64);
    assert_eq!(snap.counter("dhub_download_retries_total"), d.retries as u64);
    assert_eq!(snap.counter("dhub_download_gave_up_total"), d.gave_up as u64);
    assert_eq!(snap.counter("dhub_download_corrupt_retries_total"), d.corrupt_retries as u64);
    assert_eq!(
        snap.counter("dhub_download_backoff_ns_total"),
        d.backoff_sleep.as_nanos() as u64
    );
    assert_eq!(
        snap.counter("dhub_download_sim_transfer_ns_total"),
        d.simulated_transfer.as_nanos() as u64
    );

    assert_eq!(snap.counter("dhub_analyze_layers_total"), s.layers.len() as u64);
    assert_eq!(snap.counter("dhub_analyze_errors_total"), s.analyze_errors as u64);
    let total_files: u64 = s.layer_slice().iter().map(|l| l.file_count).sum();
    assert_eq!(snap.counter("dhub_analyze_files_total"), total_files);
    let total_cls: u64 = s.layer_slice().iter().map(|l| l.cls).sum();
    assert_eq!(
        snap.counter("dhub_analyze_bytes_total"),
        total_cls,
        "analyze bytes counter must equal the profiles' summed compressed size"
    );
}

#[test]
fn obs_counters_reconcile_with_reports_at_every_fault_rate() {
    for rate in [0.0, 0.05, 0.20] {
        let obs = MetricsRegistry::new();
        let s = run_study_obs(&faulted_hub(rate), THREADS, &patient(), &obs);
        assert_counters_match_reports(&obs.snapshot(), &s);
    }
}

#[test]
fn streaming_obs_counters_reconcile_too() {
    let obs = MetricsRegistry::new();
    let s = run_study_streaming_obs(&faulted_hub(0.20), THREADS, &patient(), &obs);
    assert_counters_match_reports(&obs.snapshot(), &s);
}

#[test]
fn obs_counters_identical_across_worker_counts() {
    // Counters are exact (no sampling, no loss under contention), the
    // fault stream is keyed per operation, and span ids are pure functions
    // of (parent, name, key) — so everything except wall-clock span
    // durations must be identical at 2 and 8 workers.
    let obs2 = MetricsRegistry::new();
    let a = run_study_obs(&faulted_hub(0.20), 2, &patient(), &obs2);
    let obs8 = MetricsRegistry::new();
    let b = run_study_obs(&faulted_hub(0.20), 8, &patient(), &obs8);

    let (sa, sb) = (obs2.snapshot(), obs8.snapshot());
    // `dhub_analyze_busy_ns_total` is a wall-clock accumulator (analysis
    // CPU-seconds), the one counter that is *supposed* to vary run to run;
    // every event-count and byte-count counter must match exactly.
    let drop_clock = |s: &dhub_obs::MetricsSnapshot| {
        s.counters
            .iter()
            .filter(|(k, _)| !k.ends_with("_busy_ns_total"))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<std::collections::BTreeMap<_, _>>()
    };
    assert_eq!(drop_clock(&sa), drop_clock(&sb), "counter totals diverged across worker counts");
    assert_eq!(sa.span_id_xor, sb.span_id_xor, "span-id digest diverged across worker counts");
    assert_eq!(
        sa.spans.keys().collect::<Vec<_>>(),
        sb.spans.keys().collect::<Vec<_>>(),
        "span name sets diverged"
    );
    for (name, span) in &sa.spans {
        assert_eq!(
            span.calls,
            sb.spans[name].calls,
            "span {name:?} call count diverged across worker counts"
        );
    }
    assert_counters_match_reports(&sa, &a);
    assert_counters_match_reports(&sb, &b);
}

// ---------------------------------------------------------------------------
// Fused analyze+ingest chaos (DESIGN.md §6f): the store-filling pipeline
// must deliver the exact dataset — and the exact store state — the
// separate analyze-then-ingest paths produce, at every fault rate.

#[test]
fn fused_store_pipeline_matches_reference_at_every_fault_rate() {
    use dhub_dedupstore::DedupStore;

    let clean = run_study_with(&hub(), THREADS, &patient());
    for rate in [0.0, 0.05, 0.20] {
        let store = DedupStore::new();
        let obs = MetricsRegistry::new();
        let fused = dhub_study::pipeline::run_study_store_obs(
            &faulted_hub(rate),
            THREADS,
            &patient(),
            &store,
            &obs,
        );
        // Dataset identical to the plain pipeline's fault-free run.
        assert_same_dataset(&fused, &clean);
        assert_counters_match_reports(&obs.snapshot(), &fused);

        // Store state identical to a reference (slow-path) ingest of the
        // same layers, fetched clean from an identical hub.
        let reference = DedupStore::new();
        let clean_hub = hub();
        for d in fused.layers.keys() {
            let blob = clean_hub.registry.get_blob(d).expect("analyzed layers exist in the hub");
            reference.ingest_layer_reference(*d, &blob).unwrap();
        }
        assert_eq!(store.stats(), reference.stats(), "store stats diverged at rate {rate}");
        assert_eq!(
            store.stats().dedup_factor().to_bits(),
            reference.stats().dedup_factor().to_bits(),
            "dedup factor must be bit-identical at rate {rate}"
        );
        for d in fused.layers.keys() {
            assert_eq!(
                store.reconstruct_tar(d).unwrap(),
                reference.reconstruct_tar(d).unwrap(),
                "recipe reconstruction diverged at rate {rate}"
            );
        }
    }
}

#[test]
fn fused_ingest_reuses_scratch_after_warmup() {
    use dhub_dedupstore::{analyze_and_ingest_all, DedupStore};
    use dhub_synth::layergen::build_app_layer;
    use dhub_synth::pool::FilePool;

    let pool = FilePool::build(&SynthConfig::tiny(3), 20_000);
    let layers: Vec<_> = (0..16u64)
        .map(|s| {
            let l = build_app_layer(&pool, 0xF00D + s);
            (l.digest, Arc::new(l.blob))
        })
        .collect();
    let obs = MetricsRegistry::new();
    // threads=1 runs inline on this thread, so its thread-local arena is
    // observable. First batch warms the buffer up to the largest tar.
    let store = DedupStore::new();
    analyze_and_ingest_all(&layers, 1, &store, &obs);
    let warm = dhub_par::with_scratch(|s| s.stats());
    // Second batch into a fresh store: every layer reuses the warm buffer.
    let store = DedupStore::new();
    analyze_and_ingest_all(&layers, 1, &store, &obs);
    let end = dhub_par::with_scratch(|s| s.stats());
    assert_eq!(end.grows, warm.grows, "fused path allocated decompression buffers after warmup");
    assert_eq!(end.acquires, warm.acquires + layers.len() as u64);
    assert_eq!(end.capacity, warm.capacity);
}

#[test]
fn without_retries_every_repo_lands_in_exactly_one_bucket() {
    let s = run_study_with(&faulted_hub(0.20), THREADS, &RetryPolicy::none());
    let d = &s.download;
    // Attempted = crawl survivors; each one either downloaded or failed
    // into exactly one taxonomy bucket.
    assert_eq!(
        d.images_downloaded + d.failures(),
        s.crawl.distinct_repos,
        "taxonomy buckets must partition the attempted repositories"
    );
    assert_eq!(d.retries, 0, "RetryPolicy::none must never retry");
    assert!(d.gave_up > 0, "20 % faults with no retries must abandon work");
    assert!(d.failed_other > 0, "transient faults surface as failed_other");

    // The clean pipeline downloads strictly more.
    let clean = run_study_with(&hub(), THREADS, &patient());
    assert!(d.images_downloaded < clean.download.images_downloaded);
}

#[test]
fn http_transport_rides_out_server_side_faults() {
    // Faults injected in the HTTP server this time (drops, 429/503 status
    // codes, truncated and bit-flipped bodies on the wire) — the client's
    // retry loop and digest verification must still deliver the identical
    // dataset.
    let hub = hub();
    let officials: Vec<_> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let crawl = dhub_crawler::crawl(&hub.search, &officials);

    let clean_srv = RegistryServer::start(hub.registry.clone()).unwrap();
    let clean = download_all_http_with(clean_srv.addr(), &crawl.repos, THREADS, &patient());
    clean_srv.shutdown();

    let inj = Arc::new(FaultInjector::new(FaultConfig::uniform(FAULT_SEED, 0.20)));
    let srv = RegistryServer::start_with_faults(hub.registry.clone(), Some(inj.clone())).unwrap();
    let faulted = download_all_http_with(srv.addr(), &crawl.repos, THREADS, &patient());
    srv.shutdown();

    assert_eq!(faulted.report.images_downloaded, clean.report.images_downloaded);
    assert_eq!(faulted.report.unique_layers, clean.report.unique_layers);
    assert_eq!(faulted.report.bytes_fetched, clean.report.bytes_fetched);
    assert_eq!(faulted.report.failed_auth, clean.report.failed_auth);
    assert_eq!(faulted.report.failed_no_latest, clean.report.failed_no_latest);
    assert_eq!(faulted.report.gave_up, 0);
    assert!(faulted.report.retries > 0, "server-side faults must force retries");
    assert!(inj.stats().total() > 0, "injector must actually have fired");

    // Every delivered blob still hashes to its digest.
    for (digest, blob) in &faulted.layers {
        assert_eq!(dhub_model::Digest::of(blob.as_ref()), *digest);
    }
}

// ---------------------------------------------------------------------------
// Mirror tier chaos (DESIGN.md §6e): the same study, pulled through a
// dhub-mirror edge cache fronting faulted origin shards, must produce the
// exact dataset a direct clean run does — and the mirror's counters must
// reconcile against its report and the Prometheus exposition.

/// Direct-to-origin clean baseline over real HTTP.
fn direct_clean_study() -> StudyData {
    let hub = hub();
    let srv = RegistryServer::start(hub.registry.clone()).unwrap();
    let data = run_study_http_with(&hub, srv.addr(), THREADS, &patient());
    srv.shutdown();
    data
}

/// Runs the study through a two-shard mirror whose origins inject wire
/// faults at `rate`. Fresh hub per call, so topologies never share state.
fn mirror_study(rate: f64) -> (StudyData, MirrorReport) {
    let hub = hub();
    let inj = |salt: u64| {
        Arc::new(FaultInjector::new(FaultConfig::uniform(FAULT_SEED + salt, rate)))
    };
    let o1 = RegistryServer::start_with_faults(hub.registry.clone(), Some(inj(0))).unwrap();
    let o2 = RegistryServer::start_with_faults(hub.registry.clone(), Some(inj(1))).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Arc::new(Mirror::new(
        &[o1.addr(), o2.addr()],
        MirrorConfig::new(1 << 30, PolicyKind::Lru).with_retry(patient()),
        obs.clone(),
    ));
    let msrv =
        RegistryServer::start_mirror(mirror.clone(), obs, dhub_registry::DEFAULT_MAX_CONNS)
            .unwrap();
    let data = run_study_http_with(&hub, msrv.addr(), THREADS, &patient());
    let report = mirror.report();
    msrv.shutdown();
    o1.shutdown();
    o2.shutdown();
    (data, report)
}

/// Dataset equality between HTTP topologies. Pulls and retry counters are
/// deliberately excluded: truncated/corrupted wire responses consume a
/// registry pull per retry, so pull totals are a property of the fault
/// plan and topology, not of the dataset the study delivers.
fn assert_same_http_dataset(through_mirror: &StudyData, direct: &StudyData) {
    assert_eq!(through_mirror.crawl.raw_results, direct.crawl.raw_results);
    assert_eq!(through_mirror.crawl.distinct_repos, direct.crawl.distinct_repos);
    assert_eq!(through_mirror.crawl.pages_gave_up, 0);

    let (m, d) = (&through_mirror.download, &direct.download);
    assert_eq!(m.images_downloaded, d.images_downloaded);
    assert_eq!(m.unique_layers, d.unique_layers);
    assert_eq!(m.bytes_fetched, d.bytes_fetched);
    assert_eq!(m.layer_fetches_skipped, d.layer_fetches_skipped);
    assert_eq!(m.failed_auth, d.failed_auth);
    assert_eq!(m.failed_no_latest, d.failed_no_latest);
    assert_eq!(m.failed_other, d.failed_other);
    assert_eq!(m.gave_up, 0, "the patient policy must never give up");

    assert_eq!(through_mirror.layers.len(), direct.layers.len());
    for (digest, profile) in &direct.layers {
        assert_eq!(
            through_mirror.layers.get(digest),
            Some(profile),
            "layer profile diverged through the mirror"
        );
    }
    assert_eq!(through_mirror.images, direct.images);
}

#[test]
fn study_through_mirror_is_byte_identical_to_direct() {
    let clean = direct_clean_study();
    for rate in [0.0, 0.05, 0.20] {
        let (data, report) = mirror_study(rate);
        assert_same_http_dataset(&data, &clean);
        // Accounting invariant at every fault rate: each cacheable request
        // resolved as exactly one of hit / leader miss / coalesced wait.
        assert_eq!(
            report.requests,
            report.hits + report.misses + report.coalesced,
            "mirror request accounting must partition at rate {rate}"
        );
        assert!(report.misses > 0, "a cold mirror must miss");
        if rate == 0.0 {
            assert_eq!(report.origin_errors, 0, "no faults, no origin errors");
        }
    }
}

#[test]
fn mirror_fails_over_when_an_origin_shard_is_killed() {
    let clean = direct_clean_study();

    // Shard 0 is killed for the entire run: every request to its address
    // drops at the wire, deterministically — the from-birth limit of
    // "killed mid-study", and the worst case for the ring (every key that
    // hashes there must fail over).
    let hub = hub();
    let dead_inj =
        Arc::new(FaultInjector::new(FaultConfig::only(FAULT_SEED, 1.0, FaultKind::Drop)));
    let dead = RegistryServer::start_with_faults(hub.registry.clone(), Some(dead_inj)).unwrap();
    let live = RegistryServer::start(hub.registry.clone()).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Arc::new(Mirror::new(
        &[dead.addr(), live.addr()],
        MirrorConfig::new(1 << 30, PolicyKind::Lru)
            .with_retry(RetryPolicy::fast(1).with_seed(FAULT_SEED))
            .with_down_after(2),
        obs.clone(),
    ));
    let msrv =
        RegistryServer::start_mirror(mirror.clone(), obs, dhub_registry::DEFAULT_MAX_CONNS)
            .unwrap();
    let data = run_study_http_with(&hub, msrv.addr(), THREADS, &patient());
    msrv.shutdown();
    dead.shutdown();
    live.shutdown();

    // Table 1 (and the whole dataset behind it) is unchanged by the loss.
    assert_same_http_dataset(&data, &clean);
    assert_eq!(
        dhub_study::figures::table1(&data).render(),
        dhub_study::figures::table1(&clean).render(),
        "Table 1 must not change when an origin shard dies"
    );

    let report = mirror.report();
    assert!(report.failovers > 0, "keys owned by the dead shard must fail over");
    assert!(report.origin_errors > 0, "the dead shard's failures must be counted");
    assert_eq!(
        mirror.origin_health(),
        vec![false, true],
        "the dead shard must be marked down, the live one up"
    );
}

/// Value of `name` in a Prometheus text exposition.
fn exposition_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("{name} missing from exposition"))
}

#[test]
fn mirror_counters_reconcile_with_report_and_exposition_at_study_scale() {
    let hub = hub();
    let o1 = RegistryServer::start(hub.registry.clone()).unwrap();
    let o2 = RegistryServer::start(hub.registry.clone()).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Arc::new(Mirror::new(
        &[o1.addr(), o2.addr()],
        MirrorConfig::new(1 << 30, PolicyKind::Gdsf),
        obs.clone(),
    ));
    let msrv = RegistryServer::start_mirror(
        mirror.clone(),
        obs.clone(),
        dhub_registry::DEFAULT_MAX_CONNS,
    )
    .unwrap();

    // Two passes: the first warms the cache, the second must hit it.
    let _ = run_study_http_with(&hub, msrv.addr(), THREADS, &patient());
    let _ = run_study_http_with(&hub, msrv.addr(), THREADS, &patient());

    let report = mirror.report();
    assert_eq!(report.requests, report.hits + report.misses + report.coalesced);
    assert!(report.hits > 0, "the second pass must hit the warm cache");
    assert!(report.misses > 0, "the first pass must miss the cold cache");

    // Report, snapshot, and the server's own /metrics exposition agree on
    // every dhub_mirror_* counter — the DeltaCounter design by value.
    let snap = obs.snapshot();
    let text = dhub_registry::RemoteRegistry::connect_anonymous(msrv.addr())
        .metrics_text()
        .unwrap();
    for (name, want) in [
        ("dhub_mirror_requests_total", report.requests),
        ("dhub_mirror_hits_total", report.hits),
        ("dhub_mirror_misses_total", report.misses),
        ("dhub_mirror_coalesced_total", report.coalesced),
        ("dhub_mirror_hit_bytes_total", report.hit_bytes),
        ("dhub_mirror_miss_bytes_total", report.miss_bytes),
        ("dhub_mirror_evictions_total", report.evictions),
        ("dhub_mirror_failovers_total", report.failovers),
        ("dhub_mirror_origin_fetches_total", report.origin_fetches),
        ("dhub_mirror_origin_errors_total", report.origin_errors),
    ] {
        assert_eq!(snap.counter(name), want, "snapshot drifted from report for {name}");
        assert_eq!(exposition_value(&text, name), want, "exposition drifted for {name}");
    }

    msrv.shutdown();
    o1.shutdown();
    o2.shutdown();
}

// ---------------------------------------------------------------------------
// Persistence tier gates: the crash-safe store under write faults.
//
// The contract (DESIGN.md §6g): whatever combination of wire faults and
// durable-write crashes a run survives, the store it leaves on disk —
// reopened by a fresh "process" — must be indistinguishable from one
// written by a clean single-process run: same stats bits, same
// reconstructed tars, byte-identical study tables, identical query
// answers.
// ---------------------------------------------------------------------------

/// Reads every regular file under `dir` into a sorted (name, bytes) list.
fn dir_contents(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            out.push((
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            ));
        }
    }
    out.sort();
    out
}

fn chaos_tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dhub-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn persistent_store_reopens_identical_at_every_fault_rate() {
    use dhub_dedupstore::{DedupStore, PersistentDedupStore};
    use dhub_persist::{Publisher, WriteFaults};
    use dhub_study::db::StudyDb;

    // Reference: a clean single-process in-memory run, and the study
    // tables it would write.
    let ref_store = DedupStore::new();
    let obs = MetricsRegistry::new();
    let clean =
        dhub_study::pipeline::run_study_store_obs(&hub(), THREADS, &patient(), &ref_store, &obs);
    let ref_stats = ref_store.stats();
    let ref_db = StudyDb::build(&clean, &ref_stats);
    let ref_dir = chaos_tmp("persist-ref");
    ref_db.save(&ref_dir.join("db"), &Publisher::new()).unwrap();

    for rate in [0.0, 0.05, 0.20] {
        let dir = chaos_tmp(&format!("persist-r{}", (rate * 100.0) as u32));
        {
            // "Process one": wire faults on the hub AND crash faults on
            // every durable write, both from the same pinned seed.
            let faults = (rate > 0.0).then(|| WriteFaults {
                injector: Arc::new(FaultInjector::new(FaultConfig::uniform(FAULT_SEED, rate))),
                policy: patient(),
            });
            let publisher = Publisher::new().with_faults(faults);
            let store = PersistentDedupStore::open(&dir, publisher.clone()).unwrap();
            let obs = MetricsRegistry::new();
            let data = dhub_study::pipeline::run_study_persist_obs(
                &faulted_hub(rate),
                THREADS,
                &patient(),
                &store,
                &obs,
            );
            assert_same_dataset(&data, &clean);
            StudyDb::build(&data, &store.mem().stats())
                .save(&dir.join("db"), &publisher)
                .unwrap();
            store.checkpoint().unwrap();
        } // store dropped: the "process" dies here.

        // "Process two": reopen from disk alone.
        let store = PersistentDedupStore::open(&dir, Publisher::new()).unwrap();
        let st = store.mem().stats();
        assert_eq!(st, ref_stats, "reloaded stats diverged at rate {rate}");
        assert_eq!(
            st.dedup_factor().to_bits(),
            ref_stats.dedup_factor().to_bits(),
            "dedup factor must be bit-identical at rate {rate}"
        );
        for d in clean.layers.keys() {
            assert_eq!(
                store.mem().reconstruct_tar(d).unwrap(),
                ref_store.reconstruct_tar(d).unwrap(),
                "reconstruction diverged at rate {rate}"
            );
        }

        // The study tables on disk are byte-identical to the reference's,
        // and answer every query identically.
        assert_eq!(
            dir_contents(&dir.join("db")),
            dir_contents(&ref_dir.join("db")),
            "persisted .tbl files diverged at rate {rate}"
        );
        let db = StudyDb::load(&dir.join("db")).unwrap();
        assert_eq!(db.summary(), ref_db.summary());
        assert_eq!(db.dedup_summary(), ref_db.dedup_summary());
        assert_eq!(db.top_file_types(10), ref_db.top_file_types(10));
        assert_eq!(db.layer_size_percentiles(), ref_db.layer_size_percentiles());
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn store_killed_mid_ingest_resumes_to_identical_state() {
    use dhub_dedupstore::{analyze_and_ingest_persistent, DedupStore, PersistentDedupStore};
    use dhub_persist::Publisher;
    use dhub_study::db::StudyDb;

    // Reference run: what a never-killed process produces.
    let ref_store = DedupStore::new();
    let obs = MetricsRegistry::new();
    let clean =
        dhub_study::pipeline::run_study_store_obs(&hub(), THREADS, &patient(), &ref_store, &obs);
    let ref_stats = ref_store.stats();

    let dir = chaos_tmp("persist-kill");
    {
        // "Process one" ingests half the layers, then dies without a
        // checkpoint — some shard dirs full, manifest absent.
        let store = PersistentDedupStore::open(&dir, Publisher::new()).unwrap();
        let half: Vec<_> = clean.layers.keys().take(clean.layers.len() / 2).collect();
        let mut scratch = dhub_par::Scratch::new();
        let src = hub();
        for d in half {
            let blob = src.registry.get_blob(d).unwrap();
            let (_profile, ingest) =
                analyze_and_ingest_persistent(&store, *d, &blob, &mut scratch).unwrap();
            ingest.unwrap();
        }
        assert!(!store.manifest_is_current(), "no checkpoint was written");
    }

    // "Process two" replays the partial store and finishes the study; the
    // already-ingested half is skipped, not re-done.
    let store = PersistentDedupStore::open(&dir, Publisher::new()).unwrap();
    let replayed = store.mem().stats().layers;
    assert!(replayed > 0, "replay found nothing to resume");
    let obs = MetricsRegistry::new();
    let data =
        dhub_study::pipeline::run_study_persist_obs(&hub(), THREADS, &patient(), &store, &obs);
    assert_same_dataset(&data, &clean);
    let st = store.mem().stats();
    assert_eq!(st, ref_stats, "resumed stats diverged from the never-killed run");
    assert_eq!(st.dedup_factor().to_bits(), ref_stats.dedup_factor().to_bits());
    store.checkpoint().unwrap();
    assert!(store.manifest_is_current());

    // And the tables it writes now are what process one would have written.
    let publisher = Publisher::new();
    StudyDb::build(&data, &st).save(&dir.join("db"), &publisher).unwrap();
    let db = StudyDb::load(&dir.join("db")).unwrap();
    let ref_db = StudyDb::build(&clean, &ref_stats);
    assert_eq!(db.summary(), ref_db.summary());
    assert_eq!(
        db.dedup_factor().to_bits(),
        ref_db.dedup_factor().to_bits(),
        "queried dedup factor must be bit-identical after a mid-run kill"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Queue tier gates (DESIGN.md §6h): the lease-based worker fleet.
//
// The contract: worker count, worker kills, wire faults, durable-write
// crashes, and lease-loss faults (a worker dying right after claiming)
// may change *scheduling*, never the *study* — same dataset, same store
// stats bits, byte-identical .tbl files, and no job ever
// executed-and-committed twice.
// ---------------------------------------------------------------------------

/// One queued-study "process": opens (or resumes) the store and queue at
/// `dir`, runs the fleet, and — when the queue drains — writes the study
/// tables and checkpoint. `rate` drives three independent deterministic
/// injectors from the same pinned seed: wire faults (on `hub`), durable
/// write crashes, and lease-loss faults.
fn queued_study(
    hub: &SyntheticHub,
    dir: &std::path::Path,
    workers: usize,
    rate: f64,
    max_commits: Option<u64>,
) -> (Result<StudyData, dhub_queue::QueueError>, dhub_dedupstore::StoreStats, MetricsRegistry) {
    use dhub_dedupstore::PersistentDedupStore;
    use dhub_persist::{Publisher, WriteFaults};
    use dhub_queue::{DurableQueue, LeaseConfig};
    use dhub_study::distributed::{run_study_queued_obs, QueuedStudyConfig};

    let obs = MetricsRegistry::new();
    let write_faults = (rate > 0.0).then(|| WriteFaults {
        injector: Arc::new(FaultInjector::new(FaultConfig::uniform(FAULT_SEED, rate))),
        policy: patient(),
    });
    let lease_faults =
        (rate > 0.0).then(|| Arc::new(FaultInjector::new(FaultConfig::uniform(FAULT_SEED, rate))));
    let publisher = Publisher::new().with_faults(write_faults);
    let store = PersistentDedupStore::open(dir, publisher.clone()).unwrap();
    let queue =
        DurableQueue::open(dir.join("queue"), publisher.clone()).unwrap().with_metrics(&obs);
    let cfg = QueuedStudyConfig {
        workers,
        policy: patient(),
        // The patient analogue for leases: at 20 % lease loss a job can
        // burn several leases back to back; give poison detection enough
        // budget that no genuine job quarantines at the pinned seed.
        lease: LeaseConfig { max_expiries: 12, ..LeaseConfig::default() },
        max_commits,
        lease_faults,
        pace_network: false,
    };
    let data = run_study_queued_obs(hub, &store, &queue, &cfg, &obs);
    if let Ok(d) = &data {
        dhub_study::db::StudyDb::build(d, &store.mem().stats())
            .save(&dir.join("db"), &publisher)
            .unwrap();
        store.checkpoint().unwrap();
    }
    let stats = store.mem().stats();
    (data, stats, obs)
}

#[test]
fn queued_fleet_matches_single_process_at_every_worker_count_and_fault_rate() {
    use dhub_dedupstore::DedupStore;
    use dhub_persist::Publisher;
    use dhub_study::db::StudyDb;

    // Reference: the clean single-process fused run and its tables.
    let ref_store = DedupStore::new();
    let obs = MetricsRegistry::new();
    let clean =
        dhub_study::pipeline::run_study_store_obs(&hub(), THREADS, &patient(), &ref_store, &obs);
    let ref_stats = ref_store.stats();
    let ref_dir = chaos_tmp("queue-ref");
    StudyDb::build(&clean, &ref_stats).save(&ref_dir.join("db"), &Publisher::new()).unwrap();

    for (workers, rate) in [(1, 0.0), (2, 0.0), (8, 0.0), (4, 0.05), (4, 0.20)] {
        let dir = chaos_tmp(&format!("queue-w{workers}-r{}", (rate * 100.0) as u32));
        let (data, stats, obs) = queued_study(&faulted_hub(rate), &dir, workers, rate, None);
        let data = data.unwrap_or_else(|e| panic!("workers={workers} rate={rate}: {e}"));

        assert_same_dataset(&data, &clean);
        assert_eq!(stats, ref_stats, "store stats diverged at workers={workers} rate={rate}");
        assert_eq!(
            stats.dedup_factor().to_bits(),
            ref_stats.dedup_factor().to_bits(),
            "dedup factor must be bit-identical at workers={workers} rate={rate}"
        );
        assert_eq!(
            dir_contents(&dir.join("db")),
            dir_contents(&ref_dir.join("db")),
            ".tbl files diverged at workers={workers} rate={rate}"
        );
        assert_eq!(
            obs.counter_value("dhub_queue_double_commits_total"),
            0,
            "a job was executed-and-committed twice at workers={workers} rate={rate}"
        );
        if rate >= 0.20 {
            assert!(
                obs.counter_value("dhub_queue_lease_faults_total") > 0,
                "20 % lease faults must actually fire"
            );
            assert!(
                obs.counter_value("dhub_queue_lease_expiries_total") > 0,
                "abandoned claims must expire and requeue"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn queued_fleet_killed_mid_run_resumes_to_identical_state() {
    use dhub_dedupstore::DedupStore;
    use dhub_persist::Publisher;
    use dhub_study::db::StudyDb;

    let ref_store = DedupStore::new();
    let obs = MetricsRegistry::new();
    let clean =
        dhub_study::pipeline::run_study_store_obs(&hub(), THREADS, &patient(), &ref_store, &obs);
    let ref_stats = ref_store.stats();
    let ref_dir = chaos_tmp("queue-kill-ref");
    StudyDb::build(&clean, &ref_stats).save(&ref_dir.join("db"), &Publisher::new()).unwrap();

    // One hub across all three "processes": each job executes exactly once
    // over the whole kill/resume sequence, so even the live pull counters
    // end up exactly where the never-killed run's do.
    let src = hub();
    let dir = chaos_tmp("queue-kill");

    // Process one: killed 10 commits in. Process two: resumes with a
    // different worker count, killed again. Process three: drains.
    let (r1, _, _) = queued_study(&src, &dir, 2, 0.0, Some(10));
    assert!(matches!(r1, Err(dhub_queue::QueueError::Killed)), "kill one did not fire");
    let (r2, _, _) = queued_study(&src, &dir, 4, 0.0, Some(25));
    assert!(matches!(r2, Err(dhub_queue::QueueError::Killed)), "kill two did not fire");
    let (r3, stats, obs) = queued_study(&src, &dir, 4, 0.0, None);
    let data = r3.unwrap();

    assert_same_dataset(&data, &clean);
    assert_eq!(stats, ref_stats, "resumed store stats diverged from the never-killed run");
    assert_eq!(stats.dedup_factor().to_bits(), ref_stats.dedup_factor().to_bits());
    assert_eq!(
        dir_contents(&dir.join("db")),
        dir_contents(&ref_dir.join("db")),
        ".tbl files diverged after two kills and a resume"
    );
    assert_eq!(obs.counter_value("dhub_queue_double_commits_total"), 0);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}
