//! Chaos suite: the full crawl → download → analyze pipeline under
//! deterministic fault injection.
//!
//! The paper's 30-day crawl survived a flaky public registry. These tests
//! pin fault seeds and assert the reproduction does too: with retries, a
//! faulted run's dataset is *byte-identical* to the fault-free one; with
//! retries disabled, every crawled repository still lands in exactly one
//! outcome bucket.

use dhub_downloader::download_all_http_with;
use dhub_faults::{FaultConfig, FaultInjector, RetryPolicy};
use dhub_obs::{MetricsRegistry, MetricsSnapshot};
use dhub_registry::RegistryServer;
use dhub_study::pipeline::{
    run_study_obs, run_study_streaming_obs, run_study_streaming_with, run_study_with, StudyData,
};
use dhub_synth::{generate_hub, SyntheticHub, SynthConfig};
use std::sync::Arc;

const HUB_SEED: u64 = 42;
const FAULT_SEED: u64 = 7;
const THREADS: usize = 4;

fn hub() -> SyntheticHub {
    generate_hub(&SynthConfig::tiny(HUB_SEED).with_repos(60))
}

fn faulted_hub(rate: f64) -> SyntheticHub {
    let hub = hub();
    let cfg = FaultConfig::uniform(FAULT_SEED, rate);
    hub.registry.set_fault_injector(Some(Arc::new(FaultInjector::new(cfg))));
    hub
}

/// A retry budget large enough that no operation gives up at 20 % faults
/// (21 consecutive faults on one key ≈ 0.2^21 — never at a pinned seed we
/// checked).
fn patient() -> RetryPolicy {
    RetryPolicy::fast(20).with_seed(FAULT_SEED)
}

fn assert_same_dataset(faulted: &StudyData, clean: &StudyData) {
    // Crawl recovered everything.
    assert_eq!(faulted.crawl.raw_results, clean.crawl.raw_results);
    assert_eq!(faulted.crawl.distinct_repos, clean.crawl.distinct_repos);
    assert_eq!(faulted.crawl.pages_fetched, clean.crawl.pages_fetched);
    assert_eq!(faulted.crawl.pages_gave_up, 0);

    // Download counts byte-identical.
    let (f, c) = (&faulted.download, &clean.download);
    assert_eq!(f.images_downloaded, c.images_downloaded);
    assert_eq!(f.unique_layers, c.unique_layers);
    assert_eq!(f.bytes_fetched, c.bytes_fetched);
    assert_eq!(f.layer_fetches_skipped, c.layer_fetches_skipped);
    assert_eq!(f.failed_auth, c.failed_auth);
    assert_eq!(f.failed_no_latest, c.failed_no_latest);
    assert_eq!(f.failed_other, c.failed_other);
    assert_eq!(f.gave_up, 0, "the patient policy must never give up");

    // Analysis results identical layer-by-layer and image-by-image.
    assert_eq!(faulted.layers.len(), clean.layers.len());
    for (d, p) in &clean.layers {
        assert_eq!(faulted.layers.get(d), Some(p), "layer profile diverged under faults");
    }
    assert_eq!(faulted.images, clean.images);

    // Popularity signal unharmed: faulted attempts must not inflate pulls.
    assert_eq!(faulted.pulls, clean.pulls);
}

#[test]
fn faulted_pipeline_with_retries_is_byte_identical() {
    let clean = run_study_with(&hub(), THREADS, &patient());
    assert_eq!(clean.download.retries, 0, "no faults, no retries");

    for rate in [0.0, 0.05, 0.20] {
        let faulted = run_study_with(&faulted_hub(rate), THREADS, &patient());
        assert_same_dataset(&faulted, &clean);
        if rate == 0.0 {
            assert_eq!(faulted.download.retries, 0);
        }
        if rate >= 0.20 {
            assert!(
                faulted.download.retries > 0,
                "20 % fault rate must force download retries"
            );
            // Page-level retries are exercised in dhub-crawler's own chaos
            // tests: this hub has only a handful of search pages, so an
            // all-clean draw at 20 % is legitimate.
        }
    }
}

#[test]
fn chaos_run_is_deterministic_across_thread_counts() {
    // The fault stream is a pure function of (seed, op, key, attempt):
    // per-key attempt sequencing makes the whole report — including the
    // retry counters — independent of worker count.
    let a = run_study_with(&faulted_hub(0.20), 2, &patient());
    let b = run_study_with(&faulted_hub(0.20), 8, &patient());
    assert_eq!(a.download, b.download);
    assert_eq!(a.crawl, b.crawl);
}

#[test]
fn streaming_pipeline_survives_the_same_chaos() {
    let clean = run_study_with(&hub(), THREADS, &patient());
    let faulted = run_study_streaming_with(&faulted_hub(0.20), THREADS, &patient());
    assert_eq!(faulted.crawl.raw_results, clean.crawl.raw_results);
    assert_eq!(faulted.download.images_downloaded, clean.download.images_downloaded);
    assert_eq!(faulted.download.unique_layers, clean.download.unique_layers);
    assert_eq!(faulted.download.bytes_fetched, clean.download.bytes_fetched);
    assert_eq!(faulted.download.failed_auth, clean.download.failed_auth);
    assert_eq!(faulted.download.failed_no_latest, clean.download.failed_no_latest);
    assert_eq!(faulted.download.gave_up, 0);
    assert!(faulted.download.retries > 0);
    for (d, p) in &clean.layers {
        assert_eq!(faulted.layers.get(d), Some(p));
    }
}

/// Every counter the reports are derived from, checked against the report
/// field it backs. A mismatch here means a code path updated one side
/// without the other — exactly the drift the DeltaCounter design forbids.
fn assert_counters_match_reports(snap: &MetricsSnapshot, s: &StudyData) {
    let c = &s.crawl;
    assert_eq!(snap.counter("dhub_crawl_pages_fetched_total"), c.pages_fetched as u64);
    assert_eq!(snap.counter("dhub_crawl_page_retries_total"), c.page_retries as u64);
    assert_eq!(snap.counter("dhub_crawl_pages_gave_up_total"), c.pages_gave_up as u64);
    assert_eq!(snap.counter("dhub_crawl_raw_results_total"), c.raw_results as u64);
    assert_eq!(snap.counter("dhub_crawl_dedup_hits_total"), c.dedup_hits as u64);
    assert_eq!(snap.counter("dhub_crawl_backoff_ns_total"), c.backoff_sleep.as_nanos() as u64);

    let d = &s.download;
    assert_eq!(snap.counter("dhub_download_images_ok_total"), d.images_downloaded as u64);
    assert_eq!(snap.counter("dhub_download_unique_layers_total"), d.unique_layers as u64);
    assert_eq!(snap.counter("dhub_download_bytes_total"), d.bytes_fetched);
    assert_eq!(
        snap.counter("dhub_download_layer_fetches_skipped_total"),
        d.layer_fetches_skipped
    );
    assert_eq!(snap.counter("dhub_download_failed_auth_total"), d.failed_auth as u64);
    assert_eq!(snap.counter("dhub_download_failed_no_latest_total"), d.failed_no_latest as u64);
    assert_eq!(snap.counter("dhub_download_failed_other_total"), d.failed_other as u64);
    assert_eq!(snap.counter("dhub_download_retries_total"), d.retries as u64);
    assert_eq!(snap.counter("dhub_download_gave_up_total"), d.gave_up as u64);
    assert_eq!(snap.counter("dhub_download_corrupt_retries_total"), d.corrupt_retries as u64);
    assert_eq!(
        snap.counter("dhub_download_backoff_ns_total"),
        d.backoff_sleep.as_nanos() as u64
    );
    assert_eq!(
        snap.counter("dhub_download_sim_transfer_ns_total"),
        d.simulated_transfer.as_nanos() as u64
    );

    assert_eq!(snap.counter("dhub_analyze_layers_total"), s.layers.len() as u64);
    assert_eq!(snap.counter("dhub_analyze_errors_total"), s.analyze_errors as u64);
    let total_files: u64 = s.layer_slice().iter().map(|l| l.file_count).sum();
    assert_eq!(snap.counter("dhub_analyze_files_total"), total_files);
}

#[test]
fn obs_counters_reconcile_with_reports_at_every_fault_rate() {
    for rate in [0.0, 0.05, 0.20] {
        let obs = MetricsRegistry::new();
        let s = run_study_obs(&faulted_hub(rate), THREADS, &patient(), &obs);
        assert_counters_match_reports(&obs.snapshot(), &s);
    }
}

#[test]
fn streaming_obs_counters_reconcile_too() {
    let obs = MetricsRegistry::new();
    let s = run_study_streaming_obs(&faulted_hub(0.20), THREADS, &patient(), &obs);
    assert_counters_match_reports(&obs.snapshot(), &s);
}

#[test]
fn obs_counters_identical_across_worker_counts() {
    // Counters are exact (no sampling, no loss under contention), the
    // fault stream is keyed per operation, and span ids are pure functions
    // of (parent, name, key) — so everything except wall-clock span
    // durations must be identical at 2 and 8 workers.
    let obs2 = MetricsRegistry::new();
    let a = run_study_obs(&faulted_hub(0.20), 2, &patient(), &obs2);
    let obs8 = MetricsRegistry::new();
    let b = run_study_obs(&faulted_hub(0.20), 8, &patient(), &obs8);

    let (sa, sb) = (obs2.snapshot(), obs8.snapshot());
    assert_eq!(sa.counters, sb.counters, "counter totals diverged across worker counts");
    assert_eq!(sa.span_id_xor, sb.span_id_xor, "span-id digest diverged across worker counts");
    assert_eq!(
        sa.spans.keys().collect::<Vec<_>>(),
        sb.spans.keys().collect::<Vec<_>>(),
        "span name sets diverged"
    );
    for (name, span) in &sa.spans {
        assert_eq!(
            span.calls,
            sb.spans[name].calls,
            "span {name:?} call count diverged across worker counts"
        );
    }
    assert_counters_match_reports(&sa, &a);
    assert_counters_match_reports(&sb, &b);
}

#[test]
fn without_retries_every_repo_lands_in_exactly_one_bucket() {
    let s = run_study_with(&faulted_hub(0.20), THREADS, &RetryPolicy::none());
    let d = &s.download;
    // Attempted = crawl survivors; each one either downloaded or failed
    // into exactly one taxonomy bucket.
    assert_eq!(
        d.images_downloaded + d.failures(),
        s.crawl.distinct_repos,
        "taxonomy buckets must partition the attempted repositories"
    );
    assert_eq!(d.retries, 0, "RetryPolicy::none must never retry");
    assert!(d.gave_up > 0, "20 % faults with no retries must abandon work");
    assert!(d.failed_other > 0, "transient faults surface as failed_other");

    // The clean pipeline downloads strictly more.
    let clean = run_study_with(&hub(), THREADS, &patient());
    assert!(d.images_downloaded < clean.download.images_downloaded);
}

#[test]
fn http_transport_rides_out_server_side_faults() {
    // Faults injected in the HTTP server this time (drops, 429/503 status
    // codes, truncated and bit-flipped bodies on the wire) — the client's
    // retry loop and digest verification must still deliver the identical
    // dataset.
    let hub = hub();
    let officials: Vec<_> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let crawl = dhub_crawler::crawl(&hub.search, &officials);

    let clean_srv = RegistryServer::start(hub.registry.clone()).unwrap();
    let clean = download_all_http_with(clean_srv.addr(), &crawl.repos, THREADS, &patient());
    clean_srv.shutdown();

    let inj = Arc::new(FaultInjector::new(FaultConfig::uniform(FAULT_SEED, 0.20)));
    let srv = RegistryServer::start_with_faults(hub.registry.clone(), Some(inj.clone())).unwrap();
    let faulted = download_all_http_with(srv.addr(), &crawl.repos, THREADS, &patient());
    srv.shutdown();

    assert_eq!(faulted.report.images_downloaded, clean.report.images_downloaded);
    assert_eq!(faulted.report.unique_layers, clean.report.unique_layers);
    assert_eq!(faulted.report.bytes_fetched, clean.report.bytes_fetched);
    assert_eq!(faulted.report.failed_auth, clean.report.failed_auth);
    assert_eq!(faulted.report.failed_no_latest, clean.report.failed_no_latest);
    assert_eq!(faulted.report.gave_up, 0);
    assert!(faulted.report.retries > 0, "server-side faults must force retries");
    assert!(inj.stats().total() > 0, "injector must actually have fired");

    // Every delivered blob still hashes to its digest.
    for (digest, blob) in &faulted.layers {
        assert_eq!(dhub_model::Digest::of(blob.as_ref()), *digest);
    }
}
