//! Calibration tests: every scale-invariant anchor from EXPERIMENTS.md is
//! asserted within a tolerance band at a pinned seed.
//!
//! Size-valued anchors use the default `size_scale` (1/256) and moderate
//! repo counts so the suite stays fast; the bands are deliberately wide —
//! these tests guard the *shape* of each distribution (who dominates, where
//! medians sit, which group dedups worst), not decimal places.

use dhub_study::figures;
use dhub_study::pipeline::{run_study, StudyData};
use dhub_study::FigureReport;
use dhub_synth::{generate_hub, SynthConfig};
use std::sync::OnceLock;

fn data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| {
        let cfg = SynthConfig::default_scale(20170530).with_repos(180);
        let hub = generate_hub(&cfg);
        run_study(&hub, dhub_par::default_threads())
    })
}

/// Asserts `measured/paper` lies within `[lo, hi]` for the named anchor.
fn assert_anchor_band(fig: &FigureReport, name_contains: &str, lo: f64, hi: f64) {
    let a = fig
        .anchors
        .iter()
        .find(|a| a.name.contains(name_contains))
        .unwrap_or_else(|| panic!("{}: no anchor containing {name_contains:?}", fig.id));
    let ratio = a.ratio();
    assert!(
        (lo..=hi).contains(&ratio),
        "{} anchor {:?}: paper {} measured {} ratio {:.3} outside [{lo}, {hi}]",
        fig.id,
        a.name,
        a.paper,
        a.measured,
        ratio
    );
}

#[test]
fn table1_population_anchors() {
    let f = figures::table1(data());
    assert_anchor_band(&f, "search duplication", 0.9, 1.1);
    assert_anchor_band(&f, "downloaded fraction", 0.9, 1.1);
    assert_anchor_band(&f, "auth share of failures", 0.5, 1.8);
}

#[test]
fn fig04_compression_ratio_anchors() {
    let f = figures::fig04(data());
    // Median layer ratio: paper 2.6. At size_scale 1/128 the per-file tar
    // framing (1 KiB of header+padding per file, which size_scale cannot
    // shrink) biases FLS/CLS down; `fig04_ratio_recovers_at_paper_scale`
    // below shows the codec produces paper-like ratios at real file sizes.
    assert_anchor_band(&f, "median compression", 0.3, 2.0);
    assert_anchor_band(&f, "p90 compression", 0.3, 2.5);
}

/// At paper-scale file sizes (size_scale = 1) the tar-framing overhead is
/// negligible and layer compression ratios land in the paper's regime.
#[test]
fn fig04_ratio_recovers_at_paper_scale() {
    use dhub_synth::layergen::build_app_layer;
    use dhub_synth::pool::FilePool;
    let mut cfg = SynthConfig::default_scale(99).with_repos(50);
    cfg.size_scale = 1;
    let pool = FilePool::build(&cfg, 60_000);
    let mut ratios: Vec<f64> = (0..12u64)
        .map(|i| {
            let l = build_app_layer(&pool, 0xF1604 + i);
            if l.fls == 0 {
                return f64::NAN;
            }
            l.fls as f64 / l.blob.len() as f64
        })
        .filter(|r| r.is_finite())
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(!ratios.is_empty());
    let median = ratios[ratios.len() / 2];
    assert!(
        (1.3..6.0).contains(&median),
        "paper-scale median ratio {median} (paper: 2.6); all {ratios:?}"
    );
}

#[test]
fn fig05_file_count_anchors() {
    let f = figures::fig05(data());
    assert_anchor_band(&f, "median files", 0.4, 2.5);
    assert_anchor_band(&f, "single-file layers", 0.6, 1.5);
    assert_anchor_band(&f, "empty layers", 0.5, 2.0);
}

#[test]
fn fig07_depth_anchors() {
    let f = figures::fig07(data());
    assert_anchor_band(&f, "median max depth", 0.5, 2.0);
    assert_anchor_band(&f, "modal depth", 0.6, 1.7);
}

#[test]
fn fig08_popularity_anchors() {
    let f = figures::fig08(data());
    assert_anchor_band(&f, "median pulls", 0.5, 2.0);
    assert_anchor_band(&f, "p90 pulls", 0.5, 2.0);
    assert_anchor_band(&f, "max pulls", 0.99, 1.01);
}

#[test]
fn fig10_layer_count_anchors() {
    let f = figures::fig10(data());
    assert_anchor_band(&f, "median layers", 0.75, 1.4);
    assert_anchor_band(&f, "p90 layers", 0.7, 1.5);
    assert_anchor_band(&f, "modal layer count", 0.7, 1.4);
    assert_anchor_band(&f, "single-layer image", 0.4, 2.5);
}

#[test]
fn fig14_type_mix_anchors() {
    let f = figures::fig14(data());
    assert_anchor_band(&f, "documents count share", 0.8, 1.25);
    assert_anchor_band(&f, "source count share", 0.8, 1.25);
    assert_anchor_band(&f, "EOL count share", 0.8, 1.25);
    assert_anchor_band(&f, "scripts count share", 0.8, 1.25);
    assert_anchor_band(&f, "EOL capacity share", 0.6, 1.6);
    assert_anchor_band(&f, "archival capacity share", 0.6, 1.6);
}

#[test]
fn fig16_eol_anchors() {
    let f = figures::fig16(data());
    assert_anchor_band(&f, "ELF count share", 0.8, 1.3);
    assert_anchor_band(&f, "IR count share", 0.8, 1.3);
    assert_anchor_band(&f, "ELF capacity share", 0.8, 1.2);
}

#[test]
fn fig17_source_anchors() {
    let f = figures::fig17(data());
    assert_anchor_band(&f, "C/C++ count share", 0.9, 1.15);
    assert_anchor_band(&f, "Perl5 count share", 0.7, 1.4);
    assert_anchor_band(&f, "Ruby count share", 0.7, 1.4);
}

#[test]
fn fig18_script_anchors() {
    let f = figures::fig18(data());
    assert_anchor_band(&f, "Python count share", 0.85, 1.2);
    assert_anchor_band(&f, "shell count share", 0.8, 1.3);
}

#[test]
fn fig20_archival_anchors() {
    let f = figures::fig20(data());
    assert_anchor_band(&f, "zip/gzip count share", 0.95, 1.05);
    assert_anchor_band(&f, "avg zip/gzip size", 0.4, 2.5);
}

#[test]
fn fig21_database_anchors() {
    let f = figures::fig21(data());
    assert_anchor_band(&f, "BerkeleyDB count share", 0.7, 1.5);
    assert_anchor_band(&f, "MySQL count share", 0.7, 1.5);
    // SQLite: few files, most capacity — the paper's defining DB trait.
    assert_anchor_band(&f, "SQLite capacity share", 0.5, 1.8);
}

#[test]
fn fig22_imagefile_anchors() {
    let f = figures::fig22(data());
    assert_anchor_band(&f, "PNG count share", 0.85, 1.2);
}

#[test]
fn fig23_layer_sharing_anchors() {
    let f = figures::fig23(data());
    assert_anchor_band(&f, "fraction referenced once", 0.85, 1.12);
    assert_anchor_band(&f, "top layer is the empty layer", 1.0, 1.0);
    assert_anchor_band(&f, "layer-sharing dedup factor", 0.6, 1.8);
}

#[test]
fn fig24_repeat_anchors() {
    let f = figures::fig24(data());
    assert_anchor_band(&f, ">1 copy", 0.85, 1.1);
    assert_anchor_band(&f, "median copies", 0.3, 3.0);
    assert_anchor_band(&f, "p90 copies", 0.3, 3.0);
    assert_anchor_band(&f, "most-repeated file is empty", 1.0, 1.0);
}

#[test]
fn fig25_growth_is_monotone() {
    let f = figures::fig25(data());
    // The growth factor must be materially above 1 (the figure's message).
    let g = f.anchors.iter().find(|a| a.name.contains("growth")).unwrap();
    assert!(g.measured > 1.3, "growth {}", g.measured);
}

#[test]
fn fig26_cross_duplicate_anchors() {
    let f = figures::fig26(data());
    assert_anchor_band(&f, "p10 layer duplicate", 0.75, 1.05);
    assert_anchor_band(&f, "p10 image duplicate", 0.8, 1.05);
}

#[test]
fn fig27_group_dedup_ordering() {
    let f = figures::fig27(data());
    let get = |label: &str| {
        f.anchors.iter().find(|a| a.name.starts_with(label)).map(|a| a.measured).unwrap()
    };
    // The ordering the paper reports: scripts/source highest, DB lowest.
    assert!(get("Scr.") > get("EOL"));
    assert!(get("SC.") > get("EOL"));
    assert!(get("DB.") < get("Doc."));
    assert_anchor_band(&f, "overall capacity redundancy", 0.7, 1.2);
}

#[test]
fn fig28_eol_dedup_ordering() {
    let f = figures::fig28(data());
    let get = |label: &str| {
        f.anchors.iter().find(|a| a.name.starts_with(label)).map(|a| a.measured).unwrap()
    };
    assert!(get("Lib.") < get("ELF"), "libraries must dedup worst");
    assert!(get("COFF") < get("ELF"));
}

#[test]
fn table2_headline_direction() {
    let f = figures::table2(data());
    // At 220 repos we sit on the left part of the Fig. 25 growth curve; the
    // count ratio must already be well above 1 and below the full-scale 31.5.
    let count = f.anchors.iter().find(|a| a.name.contains("count dedup")).unwrap();
    assert!(count.measured > 3.0, "count dedup {}", count.measured);
    let cap = f.anchors.iter().find(|a| a.name.contains("capacity dedup")).unwrap();
    assert!(cap.measured > 1.5, "capacity dedup {}", cap.measured);
    assert!(count.measured > cap.measured, "count dedup exceeds capacity dedup, as in the paper");
}
