//! End-to-end over the wire: the same study, but with every manifest and
//! layer fetched through the Registry V2 HTTP server on localhost —
//! verifying the whole measurement stack against the paper's actual
//! transport protocol.

use dhub_downloader::{download_all, download_all_http};
use dhub_registry::{NetworkModel, RegistryServer};
use dhub_synth::{generate_hub, SynthConfig};

#[test]
fn http_transport_study_matches_in_process() {
    let hub = generate_hub(&SynthConfig::tiny(61).with_repos(50));
    let server = RegistryServer::start(hub.registry.clone()).unwrap();

    // Crawl via the search front-end, as always.
    let officials: Vec<_> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let crawl = dhub_crawler::crawl(&hub.search, &officials);

    // Download both ways.
    let via_http = download_all_http(server.addr(), &crawl.repos, 4);
    let in_proc = download_all(&hub.registry, &crawl.repos, 4, &NetworkModel::datacenter());

    assert_eq!(via_http.report.images_downloaded, in_proc.report.images_downloaded);
    assert_eq!(via_http.report.failed_auth, in_proc.report.failed_auth);
    assert_eq!(via_http.report.failed_no_latest, in_proc.report.failed_no_latest);
    assert_eq!(via_http.report.unique_layers, in_proc.report.unique_layers);
    assert_eq!(via_http.report.bytes_fetched, in_proc.report.bytes_fetched);

    // Analyze the HTTP-fetched layers; dedup headline must be identical.
    let a_http = dhub_analyzer::analyze_all(&via_http.layers, 4);
    let a_proc = dhub_analyzer::analyze_all(&in_proc.layers, 4);
    assert_eq!(a_http.errors.len(), 0);
    assert_eq!(a_http.layers.len(), a_proc.layers.len());

    let sh: Vec<_> = dhub_dedup::profile_slice(&a_http.layers);
    let sp: Vec<_> = dhub_dedup::profile_slice(&a_proc.layers);
    let dh = dhub_dedup::file_dedup(&sh, 2);
    let dp = dhub_dedup::file_dedup(&sp, 2);
    assert_eq!(dh.total_instances, dp.total_instances);
    assert_eq!(dh.unique_files, dp.unique_files);
    assert_eq!(dh.total_bytes, dp.total_bytes);

    server.shutdown();
}

#[test]
fn http_study_counts_pulls() {
    let hub = generate_hub(&SynthConfig::tiny(62).with_repos(30));
    let server = RegistryServer::start(hub.registry.clone()).unwrap();
    let repo = hub.truth.ok_repos[0].clone();
    let before = hub.registry.pull_count(&repo).unwrap();
    let _ = download_all_http(server.addr(), std::slice::from_ref(&repo), 1);
    let after = hub.registry.pull_count(&repo).unwrap();
    assert_eq!(after, before + 1, "HTTP pulls must hit the same counters");
    server.shutdown();
}
