//! End-to-end over the wire: the same study, but with every manifest and
//! layer fetched through the Registry V2 HTTP server on localhost —
//! verifying the whole measurement stack against the paper's actual
//! transport protocol.

use dhub_downloader::{download_all, download_all_http};
use dhub_registry::{NetworkModel, RegistryServer};
use dhub_synth::{generate_hub, SynthConfig};

#[test]
fn http_transport_study_matches_in_process() {
    let hub = generate_hub(&SynthConfig::tiny(61).with_repos(50));
    let server = RegistryServer::start(hub.registry.clone()).unwrap();

    // Crawl via the search front-end, as always.
    let officials: Vec<_> =
        hub.registry.repo_names().into_iter().filter(|r| r.is_official()).collect();
    let crawl = dhub_crawler::crawl(&hub.search, &officials);

    // Download both ways.
    let via_http = download_all_http(server.addr(), &crawl.repos, 4);
    let in_proc = download_all(&hub.registry, &crawl.repos, 4, &NetworkModel::datacenter());

    assert_eq!(via_http.report.images_downloaded, in_proc.report.images_downloaded);
    assert_eq!(via_http.report.failed_auth, in_proc.report.failed_auth);
    assert_eq!(via_http.report.failed_no_latest, in_proc.report.failed_no_latest);
    assert_eq!(via_http.report.unique_layers, in_proc.report.unique_layers);
    assert_eq!(via_http.report.bytes_fetched, in_proc.report.bytes_fetched);

    // Analyze the HTTP-fetched layers; dedup headline must be identical.
    let a_http = dhub_analyzer::analyze_all(&via_http.layers, 4);
    let a_proc = dhub_analyzer::analyze_all(&in_proc.layers, 4);
    assert_eq!(a_http.errors.len(), 0);
    assert_eq!(a_http.layers.len(), a_proc.layers.len());

    let sh: Vec<_> = dhub_dedup::profile_slice(&a_http.layers);
    let sp: Vec<_> = dhub_dedup::profile_slice(&a_proc.layers);
    let dh = dhub_dedup::file_dedup(&sh, 2);
    let dp = dhub_dedup::file_dedup(&sp, 2);
    assert_eq!(dh.total_instances, dp.total_instances);
    assert_eq!(dh.unique_files, dp.unique_files);
    assert_eq!(dh.total_bytes, dp.total_bytes);

    server.shutdown();
}

#[test]
fn http_study_counts_pulls() {
    let hub = generate_hub(&SynthConfig::tiny(62).with_repos(30));
    let server = RegistryServer::start(hub.registry.clone()).unwrap();
    let repo = hub.truth.ok_repos[0].clone();
    let before = hub.registry.pull_count(&repo).unwrap();
    let _ = download_all_http(server.addr(), std::slice::from_ref(&repo), 1);
    let after = hub.registry.pull_count(&repo).unwrap();
    assert_eq!(after, before + 1, "HTTP pulls must hit the same counters");
    server.shutdown();
}

/// Parses a Prometheus text exposition into `metric line → value`,
/// asserting every non-comment line is `name[{labels}] value`.
fn parse_exposition(text: &str) -> std::collections::BTreeMap<String, f64> {
    let mut out = std::collections::BTreeMap::new();
    for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        let value: f64 =
            value.parse().unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
        out.insert(name.to_string(), value);
    }
    out
}

#[test]
fn metrics_endpoint_serves_live_counters_during_streaming_study() {
    use dhub_faults::RetryPolicy;
    use dhub_obs::MetricsRegistry;
    use dhub_registry::RemoteRegistry;
    use dhub_study::pipeline::run_study_streaming_obs;
    use std::sync::Arc;

    let hub = generate_hub(&SynthConfig::tiny(63).with_repos(50));
    let obs = Arc::new(MetricsRegistry::new());
    // The server scrapes the same registry the (in-process) study records
    // into — exactly the `--metrics` CLI topology.
    let server = RegistryServer::start_full(hub.registry.clone(), None, obs.clone(), dhub_registry::DEFAULT_MAX_CONNS).unwrap();
    let addr = server.addr();

    // Two concurrent scrapers poll /metrics while the study streams; each
    // asserts every `_total` series it sees is monotone non-decreasing.
    let study = {
        let obs = obs.clone();
        std::thread::spawn(move || {
            run_study_streaming_obs(&hub, 4, &RetryPolicy::default(), &obs)
        })
    };
    let scrapers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let client = RemoteRegistry::connect(addr);
                let mut last: std::collections::BTreeMap<String, f64> = Default::default();
                let mut scrapes = 0usize;
                for _ in 0..20 {
                    let text = client.metrics_text().expect("scrape failed");
                    let now = parse_exposition(&text);
                    for (k, v) in &now {
                        if k.ends_with("_total") {
                            if let Some(prev) = last.get(k) {
                                assert!(v >= prev, "{k} went backwards: {prev} -> {v}");
                            }
                        }
                    }
                    last = now;
                    scrapes += 1;
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                scrapes
            })
        })
        .collect();
    let data = study.join().unwrap();
    for s in scrapers {
        assert_eq!(s.join().unwrap(), 20);
    }

    // The final scrape agrees with the returned report, field for field.
    let client = RemoteRegistry::connect(addr);
    let fin = parse_exposition(&client.metrics_text().unwrap());
    assert_eq!(
        fin["dhub_download_images_ok_total"] as u64,
        data.download.images_downloaded as u64
    );
    assert_eq!(fin["dhub_download_bytes_total"] as u64, data.download.bytes_fetched);
    assert_eq!(fin["dhub_crawl_raw_results_total"] as u64, data.crawl.raw_results as u64);
    assert_eq!(fin["dhub_analyze_layers_total"] as u64, data.layers.len() as u64);
    // The server counted the scrapes themselves too.
    assert!(fin["dhub_http_requests_total"] >= 41.0, "2x20 scrapes + final");
    server.shutdown();
}

#[test]
fn metrics_scrape_rides_out_wire_faults() {
    use dhub_faults::{FaultConfig, FaultInjector, RetryPolicy};
    use dhub_obs::MetricsRegistry;
    use dhub_registry::RemoteRegistry;
    use std::sync::Arc;

    let hub = generate_hub(&SynthConfig::tiny(64).with_repos(10));
    let obs = Arc::new(MetricsRegistry::new());
    obs.counter("dhub_probe_total").add(7);
    let inj = Arc::new(FaultInjector::new(FaultConfig::uniform(9, 0.3)));
    let server =
        RegistryServer::start_full(hub.registry.clone(), Some(inj.clone()), obs.clone(), dhub_registry::DEFAULT_MAX_CONNS).unwrap();
    let client = RemoteRegistry::connect(server.addr())
        .with_retry_policy(RetryPolicy::fast(20).with_seed(9));
    for _ in 0..10 {
        let text = client.metrics_text().expect("retrying scrape must succeed");
        let parsed = parse_exposition(&text);
        assert_eq!(parsed["dhub_probe_total"], 7.0);
    }
    assert!(inj.stats().total() > 0, "injector must have hit the scrape path");
    server.shutdown();
}
