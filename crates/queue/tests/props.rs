//! Property tests for the lease state machine (DESIGN.md §6h): no job is
//! double-granted while its lease is live, every expiry requeues the job
//! exactly once until quarantine, quarantine fires after exactly
//! `max_expiries` burned leases, and the whole schedule is replayable —
//! lease durations from `(seed, job-id)` alone, event streams from the
//! config plus the operation sequence.

#![cfg(feature = "proptest")]

use dhub_queue::{LeaseConfig, LeaseEvent, LeaseManager, LeaseState};
use proptest::prelude::*;
use std::collections::HashMap;

/// One scripted operation against a [`LeaseManager`]. Job ids come from a
/// small pool so sequences collide on purpose.
#[derive(Clone, Debug)]
enum Op {
    Insert(u8),
    Claim(u64),
    Tick,
    Renew(u8, u64),
    Complete(u8),
}

fn job(i: u8) -> String {
    format!("job-{}", i % 8)
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u8..8).prop_map(Op::Insert),
        (0u64..4).prop_map(Op::Claim),
        Just(Op::Tick),
        ((0u8..8), (0u64..4)).prop_map(|(j, h)| Op::Renew(j, h)),
        (0u8..8).prop_map(Op::Complete),
    ];
    proptest::collection::vec(op, 1..200)
}

fn arb_config() -> impl Strategy<Value = LeaseConfig> {
    ((0u64..1000), (1u64..8), (1u64..8), (1u32..5)).prop_map(
        |(seed, base_ticks, spread_ticks, max_expiries)| LeaseConfig {
            seed,
            base_ticks,
            spread_ticks,
            max_expiries,
        },
    )
}

/// Applies the script and returns every event in order.
fn run(config: LeaseConfig, ops: &[Op]) -> Vec<LeaseEvent> {
    let mut m = LeaseManager::new(config);
    let mut events = Vec::new();
    for op in ops {
        match op {
            Op::Insert(j) => m.insert(&job(*j)),
            Op::Claim(h) => {
                if let Some((_, ev)) = m.claim(*h) {
                    events.push(ev);
                }
            }
            Op::Tick => events.extend(m.tick()),
            Op::Renew(j, h) => m.renew(&job(*j), *h),
            Op::Complete(j) => events.extend(m.complete(&job(*j))),
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// While a lease is live, the job is never granted to anyone else:
    /// a `Granted` for a job may only follow its previous grant after an
    /// `Expired` or `Completed` released it.
    #[test]
    fn no_double_grant_while_lease_live(config in arb_config(), ops in arb_ops()) {
        let mut live: HashMap<String, u64> = HashMap::new();
        for ev in run(config, &ops) {
            match ev {
                LeaseEvent::Granted { job, holder, .. } => {
                    prop_assert!(
                        !live.contains_key(&job),
                        "{job} granted to {holder} while still leased to {}", live[&job]
                    );
                    live.insert(job, holder);
                }
                LeaseEvent::Expired { job, .. } => { live.remove(&job); }
                LeaseEvent::Completed { job } => { live.remove(&job); }
                LeaseEvent::Quarantined { .. } => {}
            }
        }
    }

    /// Every expiry requeues the job exactly once (it is Pending right
    /// after, claimable again), and per-job expiry counts rise by exactly
    /// one per burned lease — never skipping, never repeating.
    #[test]
    fn expiry_requeues_exactly_once(config in arb_config(), ops in arb_ops()) {
        let mut m = LeaseManager::new(config);
        let mut expiries_seen: HashMap<String, u32> = HashMap::new();
        for op in &ops {
            let events = match op {
                Op::Insert(j) => { m.insert(&job(*j)); continue }
                Op::Claim(h) => { m.claim(*h); continue }
                Op::Renew(j, h) => { m.renew(&job(*j), *h); continue }
                Op::Complete(j) => { m.complete(&job(*j)); continue }
                Op::Tick => m.tick(),
            };
            for ev in events {
                match ev {
                    LeaseEvent::Expired { job, expiries } => {
                        let prev = expiries_seen.insert(job.clone(), expiries).unwrap_or(0);
                        prop_assert_eq!(expiries, prev + 1, "expiry count skipped for {}", &job);
                        if expiries < config.max_expiries {
                            prop_assert_eq!(
                                m.state(&job), Some(LeaseState::Pending),
                                "expired job {} not requeued", &job
                            );
                        }
                    }
                    LeaseEvent::Quarantined { job } => {
                        prop_assert_eq!(m.state(&job), Some(LeaseState::Quarantined));
                    }
                    _ => {}
                }
            }
        }
    }

    /// A job that keeps getting claimed and abandoned quarantines after
    /// exactly `max_expiries` expiries, and is never claimable again.
    #[test]
    fn quarantine_after_exactly_max_expiries(config in arb_config()) {
        let mut m = LeaseManager::new(config);
        m.insert("poison");
        let mut expired = 0u32;
        let mut quarantined_at = None;
        // Claim, then let the lease lapse; repeat until quarantine.
        for _ in 0..config.max_expiries + 2 {
            if m.claim(0).is_none() {
                break;
            }
            // Longest possible lease is base + spread ticks.
            for _ in 0..config.base_ticks + config.spread_ticks {
                for ev in m.tick() {
                    match ev {
                        LeaseEvent::Expired { .. } => expired += 1,
                        LeaseEvent::Quarantined { .. } => quarantined_at = Some(expired),
                        _ => {}
                    }
                }
            }
        }
        prop_assert_eq!(quarantined_at, Some(config.max_expiries));
        prop_assert_eq!(expired, config.max_expiries, "expiries continued past quarantine");
        prop_assert!(m.claim(1).is_none(), "quarantined job was granted");
        prop_assert_eq!(m.quarantined(), vec!["poison".to_string()]);
        prop_assert!(m.is_drained());
    }

    /// Lease durations are a pure function of `(seed, job-id)`: equal
    /// configs agree on every id, and every duration lands in
    /// `[base, base + spread)`.
    #[test]
    fn lease_ticks_replayable_from_seed_and_id(
        config in arb_config(),
        ids in proptest::collection::vec("[a-z:/0-9]{1,24}", 1..16),
    ) {
        let twin = config;
        for id in &ids {
            prop_assert_eq!(config.lease_ticks(id), twin.lease_ticks(id));
            let t = config.lease_ticks(id);
            prop_assert!(t >= config.base_ticks);
            prop_assert!(t < config.base_ticks + config.spread_ticks.max(1));
        }
    }

    /// The machine is deterministic: the same config and operation
    /// sequence replays to the identical event stream.
    #[test]
    fn identical_op_sequences_replay_identical_events(
        config in arb_config(),
        ops in arb_ops(),
    ) {
        prop_assert_eq!(run(config, &ops), run(config, &ops));
    }
}
