//! Job specs and their durable JSON envelopes.

use dhub_json::Json;
use dhub_model::Digest;

/// One unit of pipeline work: a stable id (`"page:3"`, `"image:library/
/// nginx"`, `"layer:<hex>"`), a kind tag the executor dispatches on, and
/// an opaque payload (usually JSON text) carrying the parameters.
///
/// The id is the job's identity everywhere: it names the on-disk
/// envelope, keys the fault stream, and seeds the deterministic lease
/// schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    pub id: String,
    pub kind: String,
    pub payload: String,
}

impl JobSpec {
    /// A job with an empty payload.
    pub fn new(id: impl Into<String>, kind: impl Into<String>) -> JobSpec {
        JobSpec { id: id.into(), kind: kind.into(), payload: String::new() }
    }

    /// A job carrying a parameter payload.
    pub fn with_payload(
        id: impl Into<String>,
        kind: impl Into<String>,
        payload: impl Into<String>,
    ) -> JobSpec {
        JobSpec { id: id.into(), kind: kind.into(), payload: payload.into() }
    }

    /// The content-derived file stem the job's envelopes live under: ids
    /// contain `/` and `:`, so durable names use the hex digest of the id.
    pub fn file_stem(id: &str) -> String {
        dhub_persist::hex_of(&Digest::of(id.as_bytes()))
    }

    /// Serializes the durable job envelope (checksummed against the
    /// payload so torn seeds are caught on reload).
    pub fn to_envelope(&self) -> String {
        let mut root = Json::obj();
        root.set("schema", JOB_SCHEMA);
        root.set("id", self.id.as_str());
        root.set("kind", self.kind.as_str());
        root.set("payload", self.payload.as_str());
        root.set("checksum", Digest::of(self.payload.as_bytes()).to_docker_string());
        root.to_string()
    }

    /// Parses and validates a durable job envelope.
    pub fn from_envelope(text: &str) -> Option<JobSpec> {
        let j = dhub_json::parse(text).ok()?;
        if j.get("schema")?.as_str()? != JOB_SCHEMA {
            return None;
        }
        let payload = j.get("payload")?.as_str()?.to_string();
        if Digest::parse(j.get("checksum")?.as_str()?)? != Digest::of(payload.as_bytes()) {
            return None;
        }
        Some(JobSpec {
            id: j.get("id")?.as_str()?.to_string(),
            kind: j.get("kind")?.as_str()?.to_string(),
            payload,
        })
    }
}

const JOB_SCHEMA: &str = "dhub-queue-job-v1";
const RESULT_SCHEMA: &str = "dhub-queue-result-v1";

/// Serializes a result record: content-addressed by checksum over the
/// payload, self-describing via the job id.
pub fn result_envelope(id: &str, payload: &str) -> String {
    let mut root = Json::obj();
    root.set("schema", RESULT_SCHEMA);
    root.set("id", id);
    root.set("payload", payload);
    root.set("checksum", Digest::of(payload.as_bytes()).to_docker_string());
    root.to_string()
}

/// Parses a result record back to `(job id, payload)`.
pub fn parse_result_envelope(text: &str) -> Option<(String, String)> {
    let j = dhub_json::parse(text).ok()?;
    if j.get("schema")?.as_str()? != RESULT_SCHEMA {
        return None;
    }
    let payload = j.get("payload")?.as_str()?.to_string();
    if Digest::parse(j.get("checksum")?.as_str()?)? != Digest::of(payload.as_bytes()) {
        return None;
    }
    Some((j.get("id")?.as_str()?.to_string(), payload))
}

/// Where one job stands, as recovered from disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Seeded, no result record yet.
    Pending,
    /// A result record exists.
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_envelope_roundtrip() {
        let spec = JobSpec::with_payload("image:library/nginx", "image", "{\"tag\":\"latest\"}");
        let parsed = JobSpec::from_envelope(&spec.to_envelope()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn tampered_payload_fails_checksum() {
        let spec = JobSpec::with_payload("page:0", "page", "abc");
        let text = spec.to_envelope().replace("abc", "abd");
        assert!(JobSpec::from_envelope(&text).is_none());
    }

    #[test]
    fn result_envelope_roundtrip() {
        let text = result_envelope("layer:ab12", "profile-bytes");
        assert_eq!(
            parse_result_envelope(&text).unwrap(),
            ("layer:ab12".to_string(), "profile-bytes".to_string())
        );
    }

    #[test]
    fn file_stem_is_stable_and_path_safe() {
        let stem = JobSpec::file_stem("image:library/nginx");
        assert_eq!(stem, JobSpec::file_stem("image:library/nginx"));
        assert!(stem.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
