//! Durable lease-based job coordination for the crawl → download →
//! analyze pipeline.
//!
//! The subsystem splits into three layers, each useful on its own:
//!
//! - [`LeaseManager`] (`lease`): a *pure* logical-clock state machine over
//!   job states pending → leased → done, with deterministic per-job lease
//!   durations derived from `(seed, job-id)`, lease-expiry requeue, and
//!   poison-job quarantine after a bounded number of expiries. No I/O, no
//!   wall clock — every transition is replayable, which is what the
//!   property suite leans on.
//! - [`DurableQueue`] (`durable`): the on-disk truth. Jobs and their
//!   results are content-checksummed JSON envelopes published through the
//!   `dhub-persist` atomic-publish discipline under
//!   `<root>/queue/{jobs,results}/`; claim markers under `claims/` give
//!   cross-process mutual exclusion. A killed worker fleet loses nothing:
//!   reopening the queue rediscovers every seeded job and every committed
//!   result, and sweeps stale claims from dead processes.
//! - [`run_workers`] (`worker`): the in-process fleet. N workers claim
//!   jobs through a shared lease manager, execute them via a caller
//!   -supplied executor, durably seed any jobs the execution *expands*
//!   into (children land on disk before the parent's result, so a crash
//!   can never orphan an expansion), and commit results exactly once.
//!   [`FaultOp::Lease`](dhub_faults::FaultOp) injection models a worker
//!   dying right after claiming: the job's lease expires and someone else
//!   retries it.
//!
//! Determinism argument (why worker count and kills cannot change the
//! study): a job's *result* is a pure function of its spec — executors
//! carry their own seeded fault/retry streams keyed by logical resource,
//! not by worker or time — and results are committed at most once.
//! Whoever wins the claim race computes the same bytes; the orchestrator
//! assembles from the result set (sorted by job id), never from
//! execution order.

pub mod durable;
pub mod job;
pub mod lease;
pub mod worker;

pub use durable::{ClaimOutcome, CommitOutcome, DurableQueue, QueueMetrics};
pub use job::{JobSpec, JobStatus};
pub use lease::{LeaseConfig, LeaseEvent, LeaseManager, LeaseState};
pub use worker::{run_workers, JobOutcome, RunReport, WorkerConfig};

use std::path::PathBuf;

/// Errors from the queue tier.
#[derive(Debug)]
pub enum QueueError {
    /// A durable write failed (or exhausted its crash-retry budget).
    Persist(dhub_persist::PersistError),
    /// Filesystem trouble outside the publish path.
    Io(std::io::Error),
    /// An envelope on disk failed its schema or checksum validation.
    Corrupt(PathBuf),
    /// The run drained but these jobs were quarantined as poison.
    Quarantined(Vec<String>),
    /// The worker fleet was killed before the queue drained.
    Killed,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Persist(e) => write!(f, "queue persist: {e}"),
            QueueError::Io(e) => write!(f, "queue io: {e}"),
            QueueError::Corrupt(p) => write!(f, "corrupt queue envelope: {}", p.display()),
            QueueError::Quarantined(ids) => {
                write!(f, "{} job(s) quarantined as poison: {}", ids.len(), ids.join(", "))
            }
            QueueError::Killed => write!(f, "worker fleet killed before the queue drained"),
        }
    }
}

impl std::error::Error for QueueError {}

impl From<dhub_persist::PersistError> for QueueError {
    fn from(e: dhub_persist::PersistError) -> Self {
        QueueError::Persist(e)
    }
}

impl From<std::io::Error> for QueueError {
    fn from(e: std::io::Error) -> Self {
        QueueError::Io(e)
    }
}
