//! The in-process worker fleet: N workers sharing one lease manager and
//! one durable queue, claiming jobs concurrently and committing results
//! exactly once.
//!
//! Execution contract: the caller's executor maps a [`JobSpec`] to a
//! result payload plus any *expansion* jobs the work discovered (a crawl
//! page expands into more pages, an image into its layers). Expansions
//! are durably seeded **before** the parent's result is committed, so a
//! crash can never record a parent as done while its children are lost.
//!
//! Failure model:
//! - [`FaultOp::Lease`] fires at claim time → the worker "dies" holding
//!   the lease: no execution, no commit. The lease expires, the job is
//!   requeued, and quarantined as poison after `max_expiries` burns.
//! - Executor errors behave the same way (abandon, expire, retry) —
//!   transient infrastructure trouble is retried at queue level with the
//!   attempt budget the lease machine enforces.
//! - A commit budget ([`WorkerConfig::max_commits`]) models `kill -9` of
//!   the whole fleet mid-run for the resume tests: workers stop dead,
//!   leases and claims are simply abandoned.
//!
//! Idle workers drive the logical clock: each fruitless claim attempt
//! ticks the lease manager once and renews the leases of jobs that are
//! actively executing in this process (the in-process heartbeat), so
//! only abandoned jobs ever expire.

use crate::durable::{ClaimOutcome, CommitOutcome, DurableQueue};
use crate::job::{JobSpec, JobStatus};
use crate::lease::{LeaseConfig, LeaseEvent, LeaseManager};
use crate::QueueError;
use dhub_faults::{fault_key, FaultInjector, FaultKind, FaultOp};
use dhub_sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What one executed job produced.
pub struct JobOutcome {
    /// The result payload committed for this job.
    pub payload: String,
    /// Jobs this execution expands into (seeded durably before the
    /// parent's commit; already-seeded ids are no-ops).
    pub new_jobs: Vec<JobSpec>,
}

/// Fleet parameters.
#[derive(Clone)]
pub struct WorkerConfig {
    /// Worker thread count (min 1).
    pub workers: usize,
    /// Lease scheduling parameters.
    pub lease: LeaseConfig,
    /// Stop the whole fleet dead after this many commits (kill harness).
    pub max_commits: Option<u64>,
    /// Lease-fault injection: a fired [`FaultOp::Lease`] kills the
    /// claiming worker for that job attempt.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig { workers: 1, lease: LeaseConfig::default(), max_commits: None, faults: None }
    }
}

/// What a fleet run did.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Results committed by this run (resumed jobs excluded).
    pub committed: u64,
    /// Jobs found already done at start (resume path).
    pub resumed: u64,
    /// Lease expiries observed.
    pub expiries: u64,
    /// Jobs quarantined as poison, sorted.
    pub quarantined: Vec<String>,
    /// True when the commit budget killed the fleet before drain.
    pub killed: bool,
}

struct Shared {
    mgr: Mutex<LeaseManager>,
    specs: Mutex<HashMap<String, JobSpec>>,
    /// Jobs currently executing on a live worker thread — their leases
    /// are renewed on every tick, so they cannot spuriously expire.
    active: Mutex<HashMap<String, u64>>,
    commits: AtomicU64,
    expiries: AtomicU64,
    killed: AtomicBool,
    error: Mutex<Option<QueueError>>,
}

impl Shared {
    fn record_events(&self, queue: &DurableQueue, events: &[LeaseEvent]) {
        for ev in events {
            match ev {
                LeaseEvent::Expired { .. } => {
                    self.expiries.fetch_add(1, Ordering::Relaxed);
                    queue.metrics().lease_expiries.inc();
                }
                LeaseEvent::Quarantined { .. } => queue.metrics().jobs_quarantined.inc(),
                _ => {}
            }
        }
    }
}

/// Runs the fleet until the queue drains (or the kill budget fires).
/// Jobs already seeded on disk are loaded first; `initial` jobs are
/// seeded on top (idempotently). Returns the run report; quarantined
/// jobs are reported, not silently dropped — callers decide whether a
/// poisoned queue is fatal.
pub fn run_workers<F>(
    queue: &DurableQueue,
    config: &WorkerConfig,
    initial: &[JobSpec],
    exec: F,
) -> Result<RunReport, QueueError>
where
    F: Fn(&JobSpec) -> Result<JobOutcome, String> + Sync,
{
    queue.seed(initial)?;
    let mut mgr = LeaseManager::new(config.lease);
    let mut specs = HashMap::new();
    let mut resumed = 0u64;
    for (spec, status) in queue.load()? {
        match status {
            JobStatus::Done => {
                mgr.insert_done(&spec.id);
                resumed += 1;
            }
            JobStatus::Pending => mgr.insert(&spec.id),
        }
        specs.insert(spec.id.clone(), spec);
    }
    let shared = Shared {
        mgr: Mutex::new(mgr),
        specs: Mutex::new(specs),
        active: Mutex::new(HashMap::new()),
        commits: AtomicU64::new(0),
        expiries: AtomicU64::new(0),
        killed: AtomicBool::new(false),
        error: Mutex::new(None),
    };

    dhub_sync::work_crew(config.workers.max(1), |i| {
        worker_loop(queue, config, &shared, i as u64, &exec);
    });

    if let Some(e) = shared.error.lock().take() {
        return Err(e);
    }
    let mgr = shared.mgr.lock();
    Ok(RunReport {
        committed: shared.commits.load(Ordering::Relaxed),
        resumed,
        expiries: shared.expiries.load(Ordering::Relaxed),
        quarantined: mgr.quarantined(),
        killed: shared.killed.load(Ordering::Relaxed),
    })
}

/// How long one idle tick lasts in wall time. Leases span
/// `base + spread` ticks, so an abandoned job requeues after roughly
/// that many idle iterations.
const TICK_SLEEP: Duration = Duration::from_micros(100);

fn worker_loop<F>(
    queue: &DurableQueue,
    config: &WorkerConfig,
    shared: &Shared,
    holder: u64,
    exec: &F,
) where
    F: Fn(&JobSpec) -> Result<JobOutcome, String> + Sync,
{
    loop {
        if shared.killed.load(Ordering::Relaxed) || shared.error.lock().is_some() {
            return;
        }
        if let Some(budget) = config.max_commits {
            if shared.commits.load(Ordering::Relaxed) >= budget {
                shared.killed.store(true, Ordering::Relaxed);
                return;
            }
        }
        // Claim under the manager lock; remember whether this grant
        // follows an expiry (then the on-disk claim marker is debris we
        // may steal).
        let claimed = {
            let mut mgr = shared.mgr.lock();
            if mgr.is_drained() {
                return;
            }
            let claimed = mgr.claim(holder);
            if let Some((id, _)) = &claimed {
                // Enter the heartbeat set before the manager lock drops:
                // the renewal must cover the whole claim → execute →
                // seed-children → commit → complete window, or a slow
                // durable seed would let this live worker's lease lapse
                // and a peer re-execute the job.
                shared.active.lock().insert(id.clone(), holder);
            }
            claimed
        };
        let Some((id, _grant)) = claimed else {
            // Nothing claimable: drive the clock, renew live leases.
            let events = {
                let mut mgr = shared.mgr.lock();
                for (job, h) in shared.active.lock().iter() {
                    mgr.renew(job, *h);
                }
                mgr.tick()
            };
            shared.record_events(queue, &events);
            std::thread::sleep(TICK_SLEEP);
            continue;
        };
        queue.metrics().leases_granted.inc();

        // The worker "dies" holding the lease: no execution, no commit,
        // no heartbeat — the abandoned lease expires and requeues.
        if let Some(inj) = &config.faults {
            if inj.decide(FaultOp::Lease, fault_key(id.as_bytes()), &[FaultKind::Drop]).is_some() {
                queue.metrics().lease_faults.inc();
                shared.active.lock().remove(&id);
                continue;
            }
        }

        match queue.claim(&id, true) {
            Ok(ClaimOutcome::Claimed) => {}
            Ok(ClaimOutcome::Done) => {
                // Result already durable (e.g. a previous killed run):
                // just mark it done.
                shared.mgr.lock().complete(&id);
                shared.active.lock().remove(&id);
                continue;
            }
            Err(e) => {
                shared.error.lock().get_or_insert(e);
                return;
            }
        }

        let spec = shared.specs.lock().get(&id).cloned().expect("claimed job has a spec");
        let executed = exec(&spec);

        match executed {
            Ok(outcome) => {
                // Children first, then the parent's result — see module docs.
                if let Err(e) = queue.seed(&outcome.new_jobs) {
                    shared.error.lock().get_or_insert(e);
                    return;
                }
                {
                    let mut specs = shared.specs.lock();
                    let mut mgr = shared.mgr.lock();
                    for job in &outcome.new_jobs {
                        mgr.insert(&job.id);
                        specs.entry(job.id.clone()).or_insert_with(|| job.clone());
                    }
                }
                match queue.commit(&id, &outcome.payload) {
                    Ok(CommitOutcome::Committed) | Ok(CommitOutcome::AlreadyDone) => {}
                    Err(e) => {
                        shared.error.lock().get_or_insert(e);
                        return;
                    }
                }
                shared.mgr.lock().complete(&id);
                shared.commits.fetch_add(1, Ordering::Relaxed);
                shared.active.lock().remove(&id);
            }
            Err(_msg) => {
                // Abandon: drop out of the heartbeat set so the lease
                // expires and the job is retried (or quarantined once
                // its expiry budget burns out).
                shared.active.lock().remove(&id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_faults::FaultConfig;
    use dhub_persist::Publisher;
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dhub-queue-worker-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn echo_exec(spec: &JobSpec) -> Result<JobOutcome, String> {
        Ok(JobOutcome { payload: format!("done:{}", spec.id), new_jobs: Vec::new() })
    }

    #[test]
    fn fleet_drains_and_results_land() {
        let root = tmp_root("drain");
        let q = DurableQueue::open(&root, Publisher::new()).unwrap();
        let jobs: Vec<JobSpec> =
            (0..20).map(|i| JobSpec::new(format!("job:{i:02}"), "t")).collect();
        let cfg = WorkerConfig { workers: 4, ..WorkerConfig::default() };
        let report = run_workers(&q, &cfg, &jobs, echo_exec).unwrap();
        assert_eq!(report.committed, 20);
        assert!(!report.killed);
        assert!(report.quarantined.is_empty());
        for job in &jobs {
            assert_eq!(q.result(&job.id).unwrap().unwrap(), format!("done:{}", job.id));
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn expansion_jobs_run_in_same_drain() {
        let root = tmp_root("expand");
        let q = DurableQueue::open(&root, Publisher::new()).unwrap();
        let exec = |spec: &JobSpec| -> Result<JobOutcome, String> {
            let new_jobs = if spec.id == "root" {
                (0..5).map(|i| JobSpec::new(format!("child:{i}"), "t")).collect()
            } else {
                Vec::new()
            };
            Ok(JobOutcome { payload: format!("done:{}", spec.id), new_jobs })
        };
        let cfg = WorkerConfig { workers: 3, ..WorkerConfig::default() };
        let report = run_workers(&q, &cfg, &[JobSpec::new("root", "t")], exec).unwrap();
        assert_eq!(report.committed, 6, "root plus five children");
        assert!(q.result("child:4").unwrap().is_some());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn killed_fleet_resumes_without_double_commits() {
        let root = tmp_root("kill");
        let jobs: Vec<JobSpec> =
            (0..12).map(|i| JobSpec::new(format!("job:{i:02}"), "t")).collect();
        let reg = dhub_obs::MetricsRegistry::new();
        {
            let q = DurableQueue::open(&root, Publisher::new()).unwrap().with_metrics(&reg);
            let cfg = WorkerConfig { workers: 4, max_commits: Some(5), ..WorkerConfig::default() };
            let report = run_workers(&q, &cfg, &jobs, echo_exec).unwrap();
            assert!(report.killed);
            assert!(report.committed >= 5 && report.committed < 12);
        }
        let q = DurableQueue::open(&root, Publisher::new()).unwrap().with_metrics(&reg);
        let cfg = WorkerConfig { workers: 2, ..WorkerConfig::default() };
        let report = run_workers(&q, &cfg, &jobs, echo_exec).unwrap();
        assert!(!report.killed);
        assert!(report.resumed >= 5);
        assert_eq!(report.committed + report.resumed, 12);
        assert_eq!(reg.counter_value("dhub_queue_double_commits_total"), 0);
        for job in &jobs {
            assert_eq!(q.result(&job.id).unwrap().unwrap(), format!("done:{}", job.id));
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn lease_faults_retry_to_completion() {
        let root = tmp_root("faults");
        let reg = dhub_obs::MetricsRegistry::new();
        let q = DurableQueue::open(&root, Publisher::new()).unwrap().with_metrics(&reg);
        let jobs: Vec<JobSpec> =
            (0..16).map(|i| JobSpec::new(format!("job:{i:02}"), "t")).collect();
        let inj = Arc::new(FaultInjector::new(FaultConfig::uniform(13, 0.3)));
        let cfg = WorkerConfig {
            workers: 2,
            lease: LeaseConfig { max_expiries: 10, ..LeaseConfig::default() },
            faults: Some(inj.clone()),
            ..WorkerConfig::default()
        };
        let report = run_workers(&q, &cfg, &jobs, echo_exec).unwrap();
        assert_eq!(report.committed, 16);
        assert!(report.quarantined.is_empty());
        assert!(inj.stats().op(FaultOp::Lease) > 0, "30% lease faults must fire");
        assert!(report.expiries > 0, "abandoned leases must expire");
        assert_eq!(reg.counter_value("dhub_queue_double_commits_total"), 0);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn poison_job_is_quarantined() {
        let root = tmp_root("poison");
        let q = DurableQueue::open(&root, Publisher::new()).unwrap();
        let exec = |spec: &JobSpec| -> Result<JobOutcome, String> {
            if spec.id == "poison" {
                Err("always fails".to_string())
            } else {
                echo_exec(spec)
            }
        };
        let cfg = WorkerConfig {
            workers: 2,
            lease: LeaseConfig { base_ticks: 4, spread_ticks: 4, max_expiries: 3, seed: 0 },
            ..WorkerConfig::default()
        };
        let report =
            run_workers(&q, &cfg, &[JobSpec::new("ok", "t"), JobSpec::new("poison", "t")], exec)
                .unwrap();
        assert_eq!(report.committed, 1);
        assert_eq!(report.quarantined, vec!["poison".to_string()]);
        assert!(q.result("ok").unwrap().is_some());
        assert!(q.result("poison").unwrap().is_none());
        let _ = std::fs::remove_dir_all(root);
    }
}
