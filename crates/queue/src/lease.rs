//! The lease state machine: a pure, logical-clock scheduler over job
//! states pending → leased → done, with expiry requeue and poison
//! quarantine.
//!
//! No I/O and no wall clock live here. Time advances only through
//! [`LeaseManager::tick`], lease durations are a pure function of
//! `(seed, job-id)` (see [`LeaseConfig::lease_ticks`]), and jobs are
//! claimed in sorted id order — so the full event stream is replayable
//! from the config plus the operation sequence, which is exactly what
//! the property suite asserts.

use dhub_faults::fault_key;
use std::collections::BTreeMap;

/// Lease scheduling parameters.
#[derive(Clone, Copy, Debug)]
pub struct LeaseConfig {
    /// Seed the per-job lease durations derive from.
    pub seed: u64,
    /// Minimum lease duration in ticks.
    pub base_ticks: u64,
    /// Per-job deterministic extra duration in `0..spread_ticks`.
    pub spread_ticks: u64,
    /// Expiries after which a job is quarantined as poison.
    pub max_expiries: u32,
}

impl Default for LeaseConfig {
    fn default() -> LeaseConfig {
        LeaseConfig { seed: 0, base_ticks: 32, spread_ticks: 32, max_expiries: 4 }
    }
}

impl LeaseConfig {
    /// The lease duration for one job: `base + h(seed, id) % spread`,
    /// replayable from `(seed, job-id)` alone.
    pub fn lease_ticks(&self, job_id: &str) -> u64 {
        let spread = self.spread_ticks.max(1);
        self.base_ticks + fault_key(job_id.as_bytes()).wrapping_add(self.seed) % spread
    }
}

/// Where one job stands in the lease machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseState {
    /// Waiting to be claimed.
    Pending,
    /// Claimed by `holder`; the lease lapses once the clock passes
    /// `expires_at`.
    Leased { holder: u64, expires_at: u64 },
    /// A result was committed.
    Done,
    /// Expired too many times — poison, never claimable again.
    Quarantined,
}

/// One observable transition, in the order it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeaseEvent {
    Granted { job: String, holder: u64, expires_at: u64 },
    Expired { job: String, expiries: u32 },
    Quarantined { job: String },
    Completed { job: String },
}

#[derive(Clone, Debug)]
struct JobSlot {
    state: LeaseState,
    expiries: u32,
}

/// The in-memory lease coordinator a worker fleet shares.
#[derive(Clone, Debug)]
pub struct LeaseManager {
    config: LeaseConfig,
    now: u64,
    jobs: BTreeMap<String, JobSlot>,
}

impl LeaseManager {
    /// An empty manager over `config` at logical time zero.
    pub fn new(config: LeaseConfig) -> LeaseManager {
        LeaseManager { config, now: 0, jobs: BTreeMap::new() }
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The scheduling parameters.
    pub fn config(&self) -> &LeaseConfig {
        &self.config
    }

    /// Registers a job as pending. Idempotent: re-inserting an existing
    /// job (any state) is a no-op.
    pub fn insert(&mut self, job_id: &str) {
        self.jobs
            .entry(job_id.to_string())
            .or_insert(JobSlot { state: LeaseState::Pending, expiries: 0 });
    }

    /// Registers a job already completed in an earlier run (resume path).
    pub fn insert_done(&mut self, job_id: &str) {
        let slot = self
            .jobs
            .entry(job_id.to_string())
            .or_insert(JobSlot { state: LeaseState::Done, expiries: 0 });
        slot.state = LeaseState::Done;
    }

    /// One job's state.
    pub fn state(&self, job_id: &str) -> Option<LeaseState> {
        self.jobs.get(job_id).map(|s| s.state)
    }

    /// Grants the first pending job (sorted id order) to `holder`.
    pub fn claim(&mut self, holder: u64) -> Option<(String, LeaseEvent)> {
        let id = self
            .jobs
            .iter()
            .find(|(_, slot)| slot.state == LeaseState::Pending)
            .map(|(id, _)| id.clone())?;
        let expires_at = self.now + self.config.lease_ticks(&id);
        self.jobs.get_mut(&id).expect("job exists").state =
            LeaseState::Leased { holder, expires_at };
        let ev = LeaseEvent::Granted { job: id.clone(), holder, expires_at };
        Some((id, ev))
    }

    /// Extends a live lease held by `holder` to a fresh full duration
    /// from now (the in-process heartbeat: the runtime renews leases of
    /// workers it knows are alive, so only abandoned jobs ever expire).
    pub fn renew(&mut self, job_id: &str, holder: u64) {
        if let Some(slot) = self.jobs.get_mut(job_id) {
            if let LeaseState::Leased { holder: h, .. } = slot.state {
                if h == holder {
                    let expires_at = self.now + self.config.lease_ticks(job_id);
                    slot.state = LeaseState::Leased { holder, expires_at };
                }
            }
        }
    }

    /// Marks a job done (a result exists). Terminal; idempotent.
    pub fn complete(&mut self, job_id: &str) -> Option<LeaseEvent> {
        let slot = self.jobs.get_mut(job_id)?;
        if slot.state == LeaseState::Done {
            return None;
        }
        slot.state = LeaseState::Done;
        Some(LeaseEvent::Completed { job: job_id.to_string() })
    }

    /// Advances the logical clock one tick, expiring lapsed leases: each
    /// expiry requeues the job exactly once (leased → pending), or
    /// quarantines it once it has burned `max_expiries` leases.
    pub fn tick(&mut self) -> Vec<LeaseEvent> {
        self.now += 1;
        let mut events = Vec::new();
        for (id, slot) in self.jobs.iter_mut() {
            let LeaseState::Leased { expires_at, .. } = slot.state else { continue };
            if expires_at > self.now {
                continue;
            }
            slot.expiries += 1;
            events.push(LeaseEvent::Expired { job: id.clone(), expiries: slot.expiries });
            if slot.expiries >= self.config.max_expiries {
                slot.state = LeaseState::Quarantined;
                events.push(LeaseEvent::Quarantined { job: id.clone() });
            } else {
                slot.state = LeaseState::Pending;
            }
        }
        events
    }

    /// Counts of jobs per state: `(pending, leased, done, quarantined)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for slot in self.jobs.values() {
            match slot.state {
                LeaseState::Pending => c.0 += 1,
                LeaseState::Leased { .. } => c.1 += 1,
                LeaseState::Done => c.2 += 1,
                LeaseState::Quarantined => c.3 += 1,
            }
        }
        c
    }

    /// Ids of quarantined jobs, sorted.
    pub fn quarantined(&self) -> Vec<String> {
        self.jobs
            .iter()
            .filter(|(_, s)| s.state == LeaseState::Quarantined)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// True when nothing is pending or leased — every job is done or
    /// quarantined.
    pub fn is_drained(&self) -> bool {
        let (pending, leased, _, _) = self.counts();
        pending == 0 && leased == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(max_expiries: u32) -> LeaseManager {
        LeaseManager::new(LeaseConfig {
            seed: 7,
            base_ticks: 4,
            spread_ticks: 4,
            max_expiries,
        })
    }

    #[test]
    fn claim_grants_in_sorted_order() {
        let mut m = mgr(3);
        m.insert("b");
        m.insert("a");
        m.insert("c");
        let (first, _) = m.claim(0).unwrap();
        let (second, _) = m.claim(1).unwrap();
        assert_eq!((first.as_str(), second.as_str()), ("a", "b"));
        assert!(matches!(m.state("a"), Some(LeaseState::Leased { holder: 0, .. })));
    }

    #[test]
    fn expiry_requeues_then_quarantines() {
        let mut m = mgr(2);
        m.insert("job");
        let (_, _) = m.claim(0).unwrap();
        // Burn lease 1.
        let mut expired = false;
        for _ in 0..16 {
            for ev in m.tick() {
                if matches!(ev, LeaseEvent::Expired { .. }) {
                    expired = true;
                }
            }
            if expired {
                break;
            }
        }
        assert!(expired);
        assert_eq!(m.state("job"), Some(LeaseState::Pending));
        // Burn lease 2 → quarantine.
        m.claim(1).unwrap();
        let mut quarantined = false;
        for _ in 0..16 {
            if m.tick().iter().any(|e| matches!(e, LeaseEvent::Quarantined { .. })) {
                quarantined = true;
                break;
            }
        }
        assert!(quarantined);
        assert_eq!(m.state("job"), Some(LeaseState::Quarantined));
        assert!(m.claim(2).is_none(), "quarantined jobs are never claimable");
        assert!(m.is_drained());
    }

    #[test]
    fn renew_keeps_live_lease_from_expiring() {
        let mut m = mgr(2);
        m.insert("job");
        m.claim(0).unwrap();
        for _ in 0..64 {
            m.renew("job", 0);
            assert!(m.tick().is_empty(), "renewed lease must not expire");
        }
        assert!(matches!(m.state("job"), Some(LeaseState::Leased { .. })));
    }

    #[test]
    fn lease_ticks_replayable_from_seed_and_id() {
        let a = LeaseConfig { seed: 9, base_ticks: 8, spread_ticks: 16, max_expiries: 3 };
        let b = a;
        for id in ["page:0", "image:library/nginx", "layer:ab12"] {
            assert_eq!(a.lease_ticks(id), b.lease_ticks(id));
            assert!(a.lease_ticks(id) >= 8 && a.lease_ticks(id) < 24);
        }
    }

    #[test]
    fn complete_is_terminal_and_idempotent() {
        let mut m = mgr(3);
        m.insert("job");
        m.claim(0).unwrap();
        assert!(m.complete("job").is_some());
        assert!(m.complete("job").is_none());
        for _ in 0..32 {
            assert!(m.tick().is_empty(), "done jobs never expire");
        }
        assert!(m.is_drained());
    }
}
