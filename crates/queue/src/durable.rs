//! The on-disk queue: durable job seeds, content-addressed result
//! records, and cross-process claim markers.
//!
//! Layout under `<root>` (conventionally `<store-dir>/queue`):
//!
//! ```text
//! jobs/<hex-of-id>.json      seeded job envelopes (atomic publish)
//! results/<hex-of-id>.json   committed result records (atomic publish)
//! claims/<hex-of-id>.claim   advisory claim markers (create_new, no fsync)
//! ```
//!
//! Jobs and results go through the full `dhub-persist` publish
//! discipline, so a crash leaves either nothing or a complete,
//! checksummed envelope. Claims are deliberately *not* durable — they
//! are advisory locks whose only job is to keep two live processes off
//! the same unit of work; debris from a killed process is swept at the
//! next [`DurableQueue::open`] (a claim with no matching result belongs
//! to nobody).

use crate::job::{parse_result_envelope, result_envelope, JobSpec, JobStatus};
use crate::QueueError;
use dhub_obs::{Counter, MetricsRegistry};
use dhub_persist::Publisher;
use std::path::{Path, PathBuf};

/// Live `dhub_queue_*` counters (detached by default).
#[derive(Clone)]
pub struct QueueMetrics {
    pub jobs_seeded: Counter,
    pub jobs_completed: Counter,
    pub leases_granted: Counter,
    pub lease_expiries: Counter,
    pub jobs_quarantined: Counter,
    pub double_commits: Counter,
    pub lease_faults: Counter,
}

impl Default for QueueMetrics {
    fn default() -> Self {
        QueueMetrics {
            jobs_seeded: Counter::detached(),
            jobs_completed: Counter::detached(),
            leases_granted: Counter::detached(),
            lease_expiries: Counter::detached(),
            jobs_quarantined: Counter::detached(),
            double_commits: Counter::detached(),
            lease_faults: Counter::detached(),
        }
    }
}

impl QueueMetrics {
    /// Binds every counter to `reg`.
    pub fn on(reg: &MetricsRegistry) -> Self {
        QueueMetrics {
            jobs_seeded: reg.counter("dhub_queue_jobs_seeded_total"),
            jobs_completed: reg.counter("dhub_queue_jobs_completed_total"),
            leases_granted: reg.counter("dhub_queue_leases_granted_total"),
            lease_expiries: reg.counter("dhub_queue_lease_expiries_total"),
            jobs_quarantined: reg.counter("dhub_queue_jobs_quarantined_total"),
            double_commits: reg.counter("dhub_queue_double_commits_total"),
            lease_faults: reg.counter("dhub_queue_lease_faults_total"),
        }
    }
}

/// What a commit attempt found on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The result record was published now.
    Committed,
    /// A result for this job already existed; nothing was written.
    AlreadyDone,
}

/// What claiming a job's marker found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The marker was created (or stolen from crash debris) — execute.
    Claimed,
    /// A result already exists — the job is done, skip execution.
    Done,
}

/// The durable job queue rooted at one directory.
pub struct DurableQueue {
    jobs_dir: PathBuf,
    results_dir: PathBuf,
    claims_dir: PathBuf,
    publisher: Publisher,
    metrics: QueueMetrics,
    /// Serializes [`DurableQueue::seed`]: two workers expanding into the
    /// same job id (a layer shared by two images) would otherwise race
    /// the exists-check and collide on the publish temp path.
    seed_lock: dhub_sync::Mutex<()>,
}

impl DurableQueue {
    /// Opens (creating if needed) a queue rooted at `root`, publishing
    /// through `publisher`. Sweeps stale claim markers left by dead
    /// processes: any claim whose job has no result belongs to nobody.
    pub fn open(root: impl AsRef<Path>, publisher: Publisher) -> Result<DurableQueue, QueueError> {
        let root = root.as_ref().to_path_buf();
        let q = DurableQueue {
            jobs_dir: root.join("jobs"),
            results_dir: root.join("results"),
            claims_dir: root.join("claims"),
            publisher,
            metrics: QueueMetrics::default(),
            seed_lock: dhub_sync::Mutex::new(()),
        };
        std::fs::create_dir_all(&q.jobs_dir)?;
        std::fs::create_dir_all(&q.results_dir)?;
        std::fs::create_dir_all(&q.claims_dir)?;
        for entry in std::fs::read_dir(&q.claims_dir)? {
            let path = entry?.path();
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
            if !q.results_dir.join(format!("{stem}.json")).exists() {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(q)
    }

    /// Binds the `dhub_queue_*` counters to `reg`.
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> DurableQueue {
        self.metrics = QueueMetrics::on(reg);
        self
    }

    /// The live counters.
    pub fn metrics(&self) -> &QueueMetrics {
        &self.metrics
    }

    fn job_path(&self, id: &str) -> PathBuf {
        self.jobs_dir.join(format!("{}.json", JobSpec::file_stem(id)))
    }

    fn result_path(&self, id: &str) -> PathBuf {
        self.results_dir.join(format!("{}.json", JobSpec::file_stem(id)))
    }

    fn claim_path(&self, id: &str) -> PathBuf {
        self.claims_dir.join(format!("{}.claim", JobSpec::file_stem(id)))
    }

    /// Durably seeds jobs not already on disk (idempotent — reseeding an
    /// existing id is a no-op, so expansion replays after a crash are
    /// free). One batched publish, one `jobs/` fsync. Returns how many
    /// were actually new.
    pub fn seed(&self, jobs: &[JobSpec]) -> Result<usize, QueueError> {
        let _guard = self.seed_lock.lock();
        let mut fresh: Vec<(PathBuf, String)> = Vec::new();
        for job in jobs {
            let path = self.job_path(&job.id);
            if !path.exists() {
                fresh.push((path, job.to_envelope()));
            }
        }
        let items: Vec<(PathBuf, &[u8])> =
            fresh.iter().map(|(p, text)| (p.clone(), text.as_bytes())).collect();
        self.publisher.publish_batch(&items)?;
        self.metrics.jobs_seeded.add(items.len() as u64);
        Ok(items.len())
    }

    /// Every seeded job with its recovered status, sorted by job id.
    /// Torn or tampered envelopes fail loudly.
    pub fn load(&self) -> Result<Vec<(JobSpec, JobStatus)>, QueueError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.jobs_dir)? {
            let path = entry?.path();
            if !path.extension().map(|e| e == "json").unwrap_or(false) {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            let spec =
                JobSpec::from_envelope(&text).ok_or_else(|| QueueError::Corrupt(path.clone()))?;
            let status = if self.result_path(&spec.id).exists() {
                JobStatus::Done
            } else {
                JobStatus::Pending
            };
            out.push((spec, status));
        }
        out.sort_by(|a, b| a.0.id.cmp(&b.0.id));
        Ok(out)
    }

    /// A committed result payload, if any.
    pub fn result(&self, id: &str) -> Result<Option<String>, QueueError> {
        let path = self.result_path(id);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (rid, payload) =
            parse_result_envelope(&text).ok_or_else(|| QueueError::Corrupt(path.clone()))?;
        if rid != id {
            return Err(QueueError::Corrupt(path));
        }
        Ok(Some(payload))
    }

    /// Places the advisory claim marker for a job. `stealable` is set on
    /// re-claims after a lease expiry: the previous holder is known dead
    /// (in-process) or swept (cross-process), so existing debris is
    /// replaced rather than respected.
    pub fn claim(&self, id: &str, stealable: bool) -> Result<ClaimOutcome, QueueError> {
        if self.result_path(id).exists() {
            return Ok(ClaimOutcome::Done);
        }
        let path = self.claim_path(id);
        match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(_) => Ok(ClaimOutcome::Claimed),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists && stealable => {
                // Crash debris from an expired lease: replace it.
                let _ = std::fs::remove_file(&path);
                std::fs::OpenOptions::new().write(true).create_new(true).open(&path)?;
                Ok(ClaimOutcome::Claimed)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Publishes the result record, exactly once: if a result is already
    /// on disk nothing is written and the double-commit counter fires —
    /// the invariant the chaos gates assert stays at zero.
    pub fn commit(&self, id: &str, payload: &str) -> Result<CommitOutcome, QueueError> {
        let path = self.result_path(id);
        if path.exists() {
            self.metrics.double_commits.inc();
            return Ok(CommitOutcome::AlreadyDone);
        }
        self.publisher.publish(&path, result_envelope(id, payload).as_bytes())?;
        self.metrics.jobs_completed.inc();
        Ok(CommitOutcome::Committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dhub-queue-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn seed_load_commit_roundtrip() {
        let root = tmp_root("roundtrip");
        let q = DurableQueue::open(&root, Publisher::new()).unwrap();
        let jobs =
            vec![JobSpec::new("page:0", "page"), JobSpec::with_payload("page:1", "page", "x")];
        assert_eq!(q.seed(&jobs).unwrap(), 2);
        assert_eq!(q.seed(&jobs).unwrap(), 0, "reseeding is a no-op");
        assert_eq!(q.commit("page:0", "forty-two").unwrap(), CommitOutcome::Committed);
        assert_eq!(q.commit("page:0", "forty-two").unwrap(), CommitOutcome::AlreadyDone);
        assert_eq!(q.result("page:0").unwrap().unwrap(), "forty-two");
        assert_eq!(q.result("page:1").unwrap(), None);

        // Reopen: both jobs rediscovered, one done.
        let q2 = DurableQueue::open(&root, Publisher::new()).unwrap();
        let loaded = q2.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0.id, "page:0");
        assert_eq!(loaded[0].1, JobStatus::Done);
        assert_eq!(loaded[1].1, JobStatus::Pending);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn claims_are_exclusive_until_stolen() {
        let root = tmp_root("claims");
        let q = DurableQueue::open(&root, Publisher::new()).unwrap();
        q.seed(&[JobSpec::new("j", "t")]).unwrap();
        assert_eq!(q.claim("j", false).unwrap(), ClaimOutcome::Claimed);
        assert!(q.claim("j", false).is_err(), "second live claim must fail");
        assert_eq!(q.claim("j", true).unwrap(), ClaimOutcome::Claimed, "expired lease steals");
        q.commit("j", "done").unwrap();
        assert_eq!(q.claim("j", false).unwrap(), ClaimOutcome::Done);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn stale_claims_swept_on_open() {
        let root = tmp_root("sweep");
        {
            let q = DurableQueue::open(&root, Publisher::new()).unwrap();
            q.seed(&[JobSpec::new("a", "t"), JobSpec::new("b", "t")]).unwrap();
            q.claim("a", false).unwrap();
            q.claim("b", false).unwrap();
            q.commit("b", "done").unwrap();
            // "a" dies holding its claim; "b" committed first.
        }
        let q = DurableQueue::open(&root, Publisher::new()).unwrap();
        assert_eq!(q.claim("a", false).unwrap(), ClaimOutcome::Claimed, "stale claim swept");
        assert_eq!(q.claim("b", false).unwrap(), ClaimOutcome::Done);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn double_commit_counter_fires() {
        let root = tmp_root("double");
        let reg = MetricsRegistry::new();
        let q = DurableQueue::open(&root, Publisher::new()).unwrap().with_metrics(&reg);
        q.seed(&[JobSpec::new("j", "t")]).unwrap();
        q.commit("j", "x").unwrap();
        q.commit("j", "x").unwrap();
        assert_eq!(reg.counter_value("dhub_queue_double_commits_total"), 1);
        assert_eq!(reg.counter_value("dhub_queue_jobs_completed_total"), 1);
        let _ = std::fs::remove_dir_all(root);
    }
}
