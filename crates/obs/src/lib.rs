//! Observability for the crawl → download → analyze pipeline (`dhub-obs`).
//!
//! The paper's 30-day crawl (§III) was operable only because the authors
//! could watch throughput, failure taxonomy, and per-stage progress *while
//! it ran*. This crate gives the reproduction the same faculty without any
//! external dependency (the workspace resolves fully offline):
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s. Counters are sharded over cache-padded atomics
//!   ([`dhub_sync::CachePadded`], one 64-byte line per shard, shard chosen
//!   by a stable per-thread slot) so hot-path increments from a worker crew
//!   never contend on a single cache line.
//! * [`Span`]s — lightweight tracing spans with parent/child nesting via a
//!   thread-local stack, per-name wall-clock aggregation, and a span-id
//!   scheme that is a *pure function* of `(parent id, name, key)`: ids do
//!   not depend on wall clock, thread ids, or interleaving, so a trace
//!   taken under `--fault-seed` is replayable attempt-for-attempt.
//! * Exporters — Prometheus-style text exposition (served at `/metrics` by
//!   the `dhub-registry` HTTP server), a [`MetricsSnapshot`] JSON document
//!   for tests and `--metrics-snapshot`, and a [`ProgressReporter`] that
//!   prints a periodic one-line digest for long study runs.
//!
//! Pipeline stages record into a registry handed to them; the per-crate
//! report structs (`DownloadReport`, `CrawlReport`, …) are **derived from**
//! the counters, so a `/metrics` scrape mid-run and the end-of-run table
//! reconcile exactly (asserted in `tests/chaos.rs`).
//!
//! Naming scheme: `dhub_<stage>_<what>_total` for counters,
//! `dhub_<stage>_<what>` for gauges, `dhub_span_<name>_{calls_total,ns_total}`
//! for span aggregates. Flat names only — no labels — so the exposition
//! stays trivially parseable by the in-repo tooling.

mod export;
mod metrics;
mod span;

pub use export::{render_prometheus, HistogramSnapshot, MetricsSnapshot, ProgressReporter, SpanSnapshot};
pub use metrics::{Counter, DeltaCounter, Gauge, Histogram, MetricsRegistry};
pub use span::{span_key, Span};

/// Opens a span on `$reg` ([`MetricsRegistry`]): `span!(reg, "download")`
/// or, keyed by the logical resource, `span!(reg, "fetch_blob", digest)`.
/// The returned guard records wall clock into the per-name aggregate on
/// drop; its id is deterministic under a pinned fault seed.
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:expr) => {
        $reg.span($name, 0u64)
    };
    ($reg:expr, $name:expr, $key:expr) => {
        $reg.span($name, $crate::span_key(format!("{}", $key).as_bytes()))
    };
}
