//! Exporters: Prometheus text exposition, JSON snapshots, progress lines.

use crate::metrics::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
use dhub_json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Point-in-time copy of a histogram: total count, value sum, and the
/// non-empty log2 buckets as `(bit_length, count)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> HistogramSnapshot {
        let raw = h.buckets();
        let buckets = raw
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        HistogramSnapshot { count: h.count(), sum: h.sum(), buckets }
    }
}

/// Point-in-time copy of a span aggregate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub calls: u64,
    pub total_ns: u64,
}

/// A consistent-enough copy of a whole registry, suitable for test
/// assertions, `--metrics-snapshot` files, and diffing two points in time.
/// (Counters are read shard-by-shard while writers may still be running,
/// so a *live* snapshot is a slightly smeared cut; a snapshot taken after
/// the workers join is exact.)
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// XOR of all span ids — serialized as a hex string (u64 does not fit
    /// losslessly in the f64-backed JSON number type).
    pub span_id_xor: u64,
}

impl MetricsRegistry {
    /// Captures the current state of every metric and span aggregate.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let histograms =
            self.histograms_map().iter().map(|(k, h)| (k.clone(), HistogramSnapshot::of(h))).collect();
        let spans = self
            .spans
            .read()
            .iter()
            .map(|(k, a)| {
                (
                    k.clone(),
                    SpanSnapshot {
                        calls: a.calls.load(Ordering::Relaxed),
                        total_ns: a.total_ns.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters: self.counters_map(),
            gauges: self.gauges_map(),
            histograms,
            spans,
            span_id_xor: self.span_digest(),
        }
    }
}

impl MetricsSnapshot {
    /// Counter value by name, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, 0.0 if absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Serializes to the `dhub-obs-snapshot-v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.set(k, *v);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges.set(k, *v);
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.histograms {
            let mut o = Json::obj();
            o.set("count", h.count).set("sum", h.sum);
            o.set(
                "buckets",
                Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(i, c)| Json::Arr(vec![Json::from(i), Json::from(c)]))
                        .collect(),
                ),
            );
            histograms.set(k, o);
        }
        let mut spans = Json::obj();
        for (k, s) in &self.spans {
            let mut o = Json::obj();
            o.set("calls", s.calls).set("total_ns", s.total_ns);
            spans.set(k, o);
        }
        let mut doc = Json::obj();
        doc.set("schema", "dhub-obs-snapshot-v1")
            .set("span_id_xor", format!("{:#018x}", self.span_id_xor))
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", histograms)
            .set("spans", spans);
        doc
    }

    /// Parses a document produced by [`to_json`](Self::to_json).
    pub fn from_json(doc: &Json) -> Option<MetricsSnapshot> {
        if doc.get("schema")?.as_str()? != "dhub-obs-snapshot-v1" {
            return None;
        }
        let pairs = |j: &Json| -> Option<Vec<(String, Json)>> {
            match j {
                Json::Obj(p) => Some(p.clone()),
                _ => None,
            }
        };
        let mut counters = BTreeMap::new();
        for (k, v) in pairs(doc.get("counters")?)? {
            counters.insert(k, v.as_u64()?);
        }
        let mut gauges = BTreeMap::new();
        for (k, v) in pairs(doc.get("gauges")?)? {
            gauges.insert(k, v.as_f64()?);
        }
        let mut histograms = BTreeMap::new();
        for (k, v) in pairs(doc.get("histograms")?)? {
            let mut buckets = Vec::new();
            for pair in v.get("buckets")?.as_arr()? {
                let pair = pair.as_arr()?;
                let i = pair.first()?.as_u64()? as u32;
                if i as usize >= HISTOGRAM_BUCKETS {
                    return None;
                }
                buckets.push((i, pair.get(1)?.as_u64()?));
            }
            histograms.insert(
                k,
                HistogramSnapshot {
                    count: v.get("count")?.as_u64()?,
                    sum: v.get("sum")?.as_u64()?,
                    buckets,
                },
            );
        }
        let mut spans = BTreeMap::new();
        for (k, v) in pairs(doc.get("spans")?)? {
            spans.insert(
                k,
                SpanSnapshot {
                    calls: v.get("calls")?.as_u64()?,
                    total_ns: v.get("total_ns")?.as_u64()?,
                },
            );
        }
        let hex = doc.get("span_id_xor")?.as_str()?;
        let span_id_xor = u64::from_str_radix(hex.trim_start_matches("0x"), 16).ok()?;
        Some(MetricsSnapshot { counters, gauges, histograms, spans, span_id_xor })
    }
}

/// Renders the registry in Prometheus text exposition format. Flat metric
/// names throughout; the only labels are the conventional `le` bounds on
/// histogram buckets. Deterministically ordered (the registry maps are
/// `BTreeMap`s), so two renders of a quiesced registry are byte-identical.
pub fn render_prometheus(reg: &MetricsRegistry) -> String {
    let snap = reg.snapshot();
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for &(i, c) in &h.buckets {
            cumulative += c;
            // Bucket i holds values with bit length i, upper bound 2^i - 1.
            let le = if i == 0 { 0 } else { (1u128 << i) - 1 };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    for (name, s) in &snap.spans {
        let _ = writeln!(out, "# TYPE dhub_span_{name}_calls_total counter");
        let _ = writeln!(out, "dhub_span_{name}_calls_total {}", s.calls);
        let _ = writeln!(out, "# TYPE dhub_span_{name}_ns_total counter");
        let _ = writeln!(out, "dhub_span_{name}_ns_total {}", s.total_ns);
    }
    let _ = writeln!(out, "# TYPE dhub_span_id_digest gauge");
    let _ = writeln!(out, "dhub_span_id_digest {}", snap.span_id_xor);
    out
}

/// Background thread printing a one-line digest of selected counters to
/// stderr every `every` — the operator's heartbeat during a long study.
/// Lines are printed only when something changed; stopped by
/// [`stop`](Self::stop) or drop.
pub struct ProgressReporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressReporter {
    /// Starts the reporter watching `keys` (counter names; missing ones
    /// read as 0 until created).
    pub fn start(reg: Arc<MetricsRegistry>, every: Duration, keys: Vec<String>) -> ProgressReporter {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut last: Option<Vec<u64>> = None;
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(every);
                let now: Vec<u64> = keys.iter().map(|k| reg.counter_value(k)).collect();
                if last.as_ref() != Some(&now) {
                    let mut line = String::from("obs:");
                    for (k, v) in keys.iter().zip(&now) {
                        let short = k.strip_prefix("dhub_").unwrap_or(k);
                        let short = short.strip_suffix("_total").unwrap_or(short);
                        let _ = write!(line, " {short}={v}");
                    }
                    eprintln!("{line}");
                    last = Some(now);
                }
            }
        });
        ProgressReporter { stop, handle: Some(handle) }
    }

    /// Stops the reporter and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("dhub_download_images_ok_total").add(40);
        reg.counter("dhub_download_retries_total").add(3);
        reg.gauge("dhub_layer_dedup_ratio").set(0.375);
        reg.histogram("dhub_blob_bytes").observe(1000);
        reg.histogram("dhub_blob_bytes").observe(3);
        {
            let _s = reg.span("download", 0);
        }
        reg
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = seeded();
        let snap = reg.snapshot();
        let text = snap.to_json().to_string();
        let back = MetricsSnapshot::from_json(&dhub_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("dhub_download_images_ok_total"), 40);
        assert_eq!(back.counter("missing"), 0);
        assert_eq!(back.gauge("dhub_layer_dedup_ratio"), 0.375);
        assert_eq!(back.spans["download"].calls, 1);
    }

    #[test]
    fn snapshot_hex_digest_survives_high_bits() {
        let reg = MetricsRegistry::new();
        // Force a digest with the top bit set (not representable as exact f64 int).
        reg.span_id_xor.store(0xdead_beef_dead_beef, Ordering::Relaxed);
        let text = reg.snapshot().to_json().to_string();
        let back = MetricsSnapshot::from_json(&dhub_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.span_id_xor, 0xdead_beef_dead_beef);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = seeded();
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE dhub_download_images_ok_total counter\n"));
        assert!(text.contains("\ndhub_download_images_ok_total 40\n") || text.starts_with("dhub_download_images_ok_total 40\n") || text.contains("dhub_download_images_ok_total 40\n"));
        assert!(text.contains("dhub_layer_dedup_ratio 0.375\n"));
        assert!(text.contains("dhub_blob_bytes_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("dhub_blob_bytes_sum 1003\n"));
        assert!(text.contains("dhub_blob_bytes_count 2\n"));
        assert!(text.contains("dhub_span_download_calls_total 1\n"));
        assert!(text.contains("dhub_span_id_digest "));
        // Every non-comment line is `name[{le="…"}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
        }
        // Quiesced registry → byte-identical renders.
        assert_eq!(text, render_prometheus(&reg));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        h.observe(1); // bucket 1, le=1
        h.observe(2); // bucket 2, le=3
        h.observe(3); // bucket 2, le=3
        let text = render_prometheus(&reg);
        assert!(text.contains("h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("h_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn progress_reporter_runs_and_stops() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("dhub_test_total").add(5);
        let rep = ProgressReporter::start(
            reg.clone(),
            Duration::from_millis(5),
            vec!["dhub_test_total".to_string()],
        );
        std::thread::sleep(Duration::from_millis(20));
        rep.stop();
    }
}
