//! The metric primitives and their registry.

use crate::span::SpanAgg;
use dhub_sync::{CachePadded, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Stable small integer per thread, used to pick a counter shard. Slots
/// are handed out on first use and never recycled; the shard index is the
/// slot masked to the shard count, so two threads share a shard only when
/// more threads than shards exist.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// Shard count for new counters: enough for the machine's parallelism,
/// power of two, capped so idle counters stay small.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .next_power_of_two()
        .min(64)
}

struct CounterShards {
    shards: Box<[CachePadded<AtomicU64>]>,
    mask: usize,
}

/// A monotone counter sharded over cache-padded atomics: increments touch
/// one line per thread, reads sum the shards. Reads are monotone across
/// non-overlapping read pairs (each shard is individually monotone), which
/// is what a `/metrics` scraper needs.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterShards>,
}

impl Counter {
    /// A counter not registered anywhere (still fully functional; used by
    /// bookkeeping structs that may outlive any registry).
    pub fn detached() -> Counter {
        let n = default_shards();
        let shards: Box<[CachePadded<AtomicU64>]> =
            (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        Counter { inner: Arc::new(CounterShards { shards, mask: n - 1 }) }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let i = thread_slot() & self.inner.mask;
        self.inner.shards[i].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum of shards).
    pub fn get(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// A [`Counter`] handle paired with its value at attach time: `add` feeds
/// the live metric, `delta` reads only this run's contribution. This is
/// how report structs are derived from a long-lived registry — the counter
/// stays monotone for scrapers while the report sees an exact per-run
/// figure.
#[derive(Clone)]
pub struct DeltaCounter {
    counter: Counter,
    start: u64,
}

impl DeltaCounter {
    /// A delta over a fresh detached counter (delta == counter value).
    pub fn detached() -> DeltaCounter {
        DeltaCounter { counter: Counter::detached(), start: 0 }
    }

    /// Attaches to `reg`'s counter `name`, remembering its current value.
    pub fn on(reg: &MetricsRegistry, name: &str) -> DeltaCounter {
        let counter = reg.counter(name);
        DeltaCounter { start: counter.get(), counter }
    }

    /// Adds 1 to the underlying counter.
    pub fn inc(&self) {
        self.counter.inc();
    }

    /// Adds `n` to the underlying counter.
    pub fn add(&self, n: u64) {
        self.counter.add(n);
    }

    /// This run's contribution: current value minus the attach-time value.
    pub fn delta(&self) -> u64 {
        self.counter.get() - self.start
    }
}

/// A last-write-wins gauge holding an `f64` (stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge { bits: Arc::new(AtomicU64::new(0f64.to_bits())) }
    }

    /// A gauge not registered anywhere — for components that want
    /// observability to be optional without branching at every set.
    pub fn detached() -> Gauge {
        Gauge::new()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets: bucket `i` holds values whose bit length is `i`
/// (i.e. `v` in `[2^(i-1), 2^i)`); bucket 0 holds zero.
pub(crate) const HISTOGRAM_BUCKETS: usize = 65;

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A log2-bucketed histogram of `u64` observations (latencies in ns, blob
/// sizes in bytes). Exact enough for order-of-magnitude dashboards at the
/// cost of two atomic adds per observation.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Bucket index of a value: its bit length (0 for 0).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.inner.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, indexed by bit length.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in self.inner.buckets.iter().enumerate() {
            out[i] = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// A named collection of metrics plus span aggregates. Handles returned by
/// the accessors are `Arc`-backed: callers resolve a name once, then record
/// lock-free. `BTreeMap` keeps every export deterministically ordered.
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    pub(crate) spans: RwLock<BTreeMap<String, Arc<SpanAgg>>>,
    /// XOR of every span id ever entered: an order-independent digest of
    /// the trace, equal across runs (and thread counts) exactly when the
    /// set of spans is — the replayability check.
    pub(crate) span_id_xor: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            spans: RwLock::new(BTreeMap::new()),
            span_id_xor: AtomicU64::new(0),
        }
    }

    /// The process-global registry — what `dhub serve` exposes at
    /// `/metrics` when no explicit registry is wired in. Library code and
    /// tests should prefer a fresh registry per run: counters here are
    /// cumulative for the process lifetime.
    pub fn global() -> Arc<MetricsRegistry> {
        static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())).clone()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters.write().entry(name.to_string()).or_insert_with(Counter::detached).clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges.write().entry(name.to_string()).or_insert_with(Gauge::new).clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms.write().entry(name.to_string()).or_insert_with(Histogram::new).clone()
    }

    /// Current value of a counter (0 if it was never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.read().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Current value of a gauge (0.0 if it was never created).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.gauges.read().get(name).map(|g| g.get()).unwrap_or(0.0)
    }

    pub(crate) fn counters_map(&self) -> BTreeMap<String, u64> {
        self.counters.read().iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    pub(crate) fn gauges_map(&self) -> BTreeMap<String, f64> {
        self.gauges.read().iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    pub(crate) fn histograms_map(&self) -> BTreeMap<String, Histogram> {
        self.histograms.read().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_exactly_under_contention() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t_total");
        dhub_sync::work_crew(8, |_| {
            for _ in 0..10_000 {
                c.inc();
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(reg.counter_value("t_total"), 80_000);
    }

    #[test]
    fn counter_handles_alias_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("x").add(3);
        reg.counter("x").add(4);
        assert_eq!(reg.counter_value("x"), 7);
        assert_eq!(reg.counter_value("never_touched"), 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("ratio");
        g.set(0.25);
        g.set(0.5);
        assert_eq!(reg.gauge_value("ratio"), 0.5);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);

        let reg = MetricsRegistry::new();
        let h = reg.histogram("sizes");
        for v in [0u64, 1, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1032);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[2], 1);
        assert_eq!(b[3], 1);
        assert_eq!(b[11], 1);
    }

    #[test]
    fn counter_reads_are_monotone() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("mono");
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let writer = {
                let c = c.clone();
                let done = &done;
                s.spawn(move || {
                    for _ in 0..200_000 {
                        c.inc();
                    }
                    done.store(true, Ordering::Relaxed);
                })
            };
            let mut last = 0u64;
            while !done.load(Ordering::Relaxed) {
                let now = c.get();
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
            }
            writer.join().unwrap();
        });
        assert_eq!(c.get(), 200_000);
    }
}
