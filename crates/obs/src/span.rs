//! Tracing spans with deterministic ids.
//!
//! A span id is a pure function of `(parent id, name, key)` — no clocks,
//! thread ids, or allocation addresses — so the *set* of span ids produced
//! by a run depends only on the logical operations performed. Under a
//! pinned `--fault-seed` the fault stream and retry schedule are themselves
//! pure functions of (seed, op, key, attempt), so the whole trace replays:
//! the XOR digest of all ids ([`MetricsRegistry::span_id_xor`] via
//! snapshots) is identical across runs and across worker counts.
//!
//! Nesting uses a thread-local stack: a span opened while another span is
//! live on the same thread becomes its child (its id mixes the parent's
//! id). Cross-thread parentage is intentionally not modelled — pipeline
//! stages hand work between threads, and a deterministic id scheme cannot
//! depend on which worker picked an item up.

use crate::metrics::MetricsRegistry;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// FNV-1a hash of arbitrary bytes — the canonical way to turn a logical
/// key (repo name, blob digest) into a span key. The `span!` macro applies
/// this to the `Display` form of its key argument.
pub fn span_key(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: scrambles a combined word into a well-mixed id.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic span id: mixes parent id, name hash, and key. Two spans
/// for the same logical operation (same ancestry, name, and key) share an
/// id by design — the id names the operation, not the occurrence.
fn span_id(parent: u64, name: &str, key: u64) -> u64 {
    mix(parent ^ mix(span_key(name.as_bytes())) ^ mix(key))
}

/// Per-name wall-clock aggregate (exported as
/// `dhub_span_<name>_calls_total` / `dhub_span_<name>_ns_total`).
pub(crate) struct SpanAgg {
    pub(crate) calls: AtomicU64,
    pub(crate) total_ns: AtomicU64,
}

impl SpanAgg {
    fn new() -> SpanAgg {
        SpanAgg { calls: AtomicU64::new(0), total_ns: AtomicU64::new(0) }
    }
}

/// A live span: records wall clock into its per-name aggregate on drop and
/// keeps the thread-local parent stack balanced. Not `Send` — a span must
/// close on the thread that opened it.
pub struct Span {
    id: u64,
    agg: Arc<SpanAgg>,
    start: Instant,
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// This span's deterministic id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.agg.calls.fetch_add(1, Ordering::Relaxed);
        self.agg.total_ns.fetch_add(ns, Ordering::Relaxed);
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Usually a plain pop, but guards held as statement temporaries
            // can outlive block locals and drop out of LIFO order — remove
            // the innermost occurrence of this id wherever it sits.
            if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                s.remove(pos);
            }
        });
    }
}

impl MetricsRegistry {
    /// Opens a span named `name` keyed by `key` (0 for unkeyed stage
    /// spans). Prefer the [`span!`](crate::span) macro, which hashes
    /// arbitrary `Display` keys. The span is a child of whatever span is
    /// live on this thread.
    pub fn span(&self, name: &str, key: u64) -> Span {
        // Clone out of the read guard before any write: under the 2021
        // edition an `if let` scrutinee temporary lives through the else
        // branch, so read-then-write in one expression self-deadlocks.
        let existing = self.spans.read().get(name).cloned();
        let agg = match existing {
            Some(a) => a,
            None => self
                .spans
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(SpanAgg::new()))
                .clone(),
        };
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        let id = span_id(parent, name, key);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        self.span_id_xor.fetch_xor(id, Ordering::Relaxed);
        Span { id, agg, start: Instant::now(), _not_send: PhantomData }
    }

    /// XOR of every span id entered so far: an order-independent digest of
    /// the trace, used by the chaos suite as a replayability witness.
    pub fn span_digest(&self) -> u64 {
        self.span_id_xor.load(Ordering::Relaxed)
    }

    /// `(calls, total_ns)` aggregate for a span name (zeros if never opened).
    pub fn span_totals(&self, name: &str) -> (u64, u64) {
        match self.spans.read().get(name) {
            Some(a) => (a.calls.load(Ordering::Relaxed), a.total_ns.load(Ordering::Relaxed)),
            None => (0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_pure_functions_of_ancestry_name_key() {
        let reg = MetricsRegistry::new();
        let a = {
            let s = reg.span("download", 0);
            s.id()
        };
        let b = {
            let s = reg.span("download", 0);
            s.id()
        };
        assert_eq!(a, b, "same (parent, name, key) must give the same id");

        let keyed = reg.span("fetch_blob", span_key(b"sha256:ab")).id();
        let other = reg.span("fetch_blob", span_key(b"sha256:cd")).id();
        assert_ne!(keyed, other);
    }

    #[test]
    fn nesting_changes_child_ids() {
        let reg = MetricsRegistry::new();
        let top = {
            let s = reg.span("fetch_blob", 7);
            s.id()
        };
        let nested = {
            let _parent = reg.span("download", 0);
            let child = reg.span("fetch_blob", 7);
            child.id()
        };
        assert_ne!(top, nested, "parent id must flow into child ids");
    }

    #[test]
    fn aggregates_and_stack_stay_balanced() {
        let reg = MetricsRegistry::new();
        {
            let _a = reg.span("stage", 0);
            let _b = reg.span("inner", 1);
        }
        {
            let _a = reg.span("stage", 0);
        }
        let (calls, ns) = reg.span_totals("stage");
        assert_eq!(calls, 2);
        assert!(ns > 0);
        assert_eq!(reg.span_totals("inner").0, 1);
        assert_eq!(reg.span_totals("never").0, 0);
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn digest_is_order_independent() {
        // Same multiset of spans opened in different orders → same digest.
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        for k in [1u64, 2, 3] {
            r1.span("op", k);
        }
        for k in [3u64, 1, 2] {
            r2.span("op", k);
        }
        assert_eq!(r1.span_digest(), r2.span_digest());
        assert_ne!(r1.span_digest(), 0);
    }

    #[test]
    fn span_macro_hashes_display_keys() {
        let reg = MetricsRegistry::new();
        let by_macro = {
            let s = crate::span!(reg, "fetch_blob", "sha256:ab");
            s.id()
        };
        let by_hand = reg.span("fetch_blob", span_key(b"sha256:ab")).id();
        assert_eq!(by_macro, by_hand);
    }
}
