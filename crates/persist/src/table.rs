//! Typed columnar tables: the study's queryable on-disk database.
//!
//! A [`Table`] is a schema (ordered, typed columns) plus column vectors.
//! Rows are appended in memory, snapshotted to a single crc-checked
//! binary file through the crash-safe publish path, and scanned with
//! predicate pushdown: each predicate is evaluated against its column
//! vector alone, narrowing a selection before any row is materialized —
//! the classic column-store trick, sized for study tables of 10^3..10^6
//! rows rather than a warehouse.
//!
//! On-disk layout (`DHTB` v1, all integers little-endian):
//!
//! ```text
//! "DHTB" | u32 version | u32 ncols
//! ncols × ( u32 name_len | name utf8 | u8 col_type )
//! u64 nrows
//! ncols × ( u64 block_len | block bytes | u32 crc32(block) )
//! u32 crc32(everything above)
//! ```
//!
//! U64/F64 blocks are packed 8-byte values (f64 via `to_bits`, so reload
//! is bit-exact); Str blocks are `u32 len | bytes` per row. A reader
//! validates structure, both crc tiers, and utf8; any failure surfaces as
//! [`PersistError::Torn`] — torn bytes never come back as data.

use crate::fsync::Publisher;
use crate::PersistError;
use dhub_digest::crc32;
use std::path::Path;

/// Column type tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColType {
    U64,
    F64,
    Str,
}

impl ColType {
    fn tag(self) -> u8 {
        match self {
            ColType::U64 => 0,
            ColType::F64 => 1,
            ColType::Str => 2,
        }
    }

    fn from_tag(t: u8) -> Option<ColType> {
        match t {
            0 => Some(ColType::U64),
            1 => Some(ColType::F64),
            2 => Some(ColType::Str),
            _ => None,
        }
    }
}

/// A single cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// An ordered, typed column list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    cols: Vec<(String, ColType)>,
}

impl Schema {
    pub fn new(cols: &[(&str, ColType)]) -> Schema {
        Schema { cols: cols.iter().map(|(n, t)| (n.to_string(), *t)).collect() }
    }

    pub fn cols(&self) -> &[(String, ColType)] {
        &self.cols
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(n, _)| n == name)
    }
}

/// Column storage, one vector per column.
#[derive(Clone, Debug, PartialEq)]
enum Column {
    U64(Vec<u64>),
    F64(Vec<f64>),
    Str(Vec<String>),
}

impl Column {
    fn empty(t: ColType) -> Column {
        match t {
            ColType::U64 => Column::U64(Vec::new()),
            ColType::F64 => Column::F64(Vec::new()),
            ColType::Str => Column::Str(Vec::new()),
        }
    }
}

/// A pushed-down filter over one column. Ranges are inclusive on both
/// ends so percentile-bucket queries compose without off-by-one edges.
#[derive(Clone, Debug)]
pub enum Predicate {
    U64Eq(String, u64),
    U64Range(String, u64, u64),
    F64Ge(String, f64),
    StrEq(String, String),
    StrPrefix(String, String),
}

impl Predicate {
    fn column(&self) -> &str {
        match self {
            Predicate::U64Eq(c, _)
            | Predicate::U64Range(c, _, _)
            | Predicate::F64Ge(c, _)
            | Predicate::StrEq(c, _)
            | Predicate::StrPrefix(c, _) => c,
        }
    }
}

/// An in-memory columnar table with a durable snapshot format.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    schema: Schema,
    cols: Vec<Column>,
    nrows: usize,
}

impl Table {
    pub fn new(schema: Schema) -> Table {
        let cols = schema.cols.iter().map(|(_, t)| Column::empty(*t)).collect();
        Table { schema, cols, nrows: 0 }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn len(&self) -> usize {
        self.nrows
    }

    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Appends one row; every cell must match its column's type.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), PersistError> {
        if row.len() != self.cols.len() {
            return Err(PersistError::Schema(format!(
                "row has {} cells, schema has {} columns",
                row.len(),
                self.cols.len()
            )));
        }
        for (i, v) in row.iter().enumerate() {
            let ok = matches!(
                (&self.cols[i], v),
                (Column::U64(_), Value::U64(_))
                    | (Column::F64(_), Value::F64(_))
                    | (Column::Str(_), Value::Str(_))
            );
            if !ok {
                return Err(PersistError::Schema(format!(
                    "cell {i} ({}) has the wrong type",
                    self.schema.cols[i].0
                )));
            }
        }
        for (col, v) in self.cols.iter_mut().zip(row) {
            match (col, v) {
                (Column::U64(vs), Value::U64(v)) => vs.push(v),
                (Column::F64(vs), Value::F64(v)) => vs.push(v),
                (Column::Str(vs), Value::Str(v)) => vs.push(v),
                _ => unreachable!("types checked above"),
            }
        }
        self.nrows += 1;
        Ok(())
    }

    /// Borrow a u64 column by name.
    pub fn col_u64(&self, name: &str) -> Option<&[u64]> {
        match &self.cols[self.schema.index_of(name)?] {
            Column::U64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow an f64 column by name.
    pub fn col_f64(&self, name: &str) -> Option<&[f64]> {
        match &self.cols[self.schema.index_of(name)?] {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow a string column by name.
    pub fn col_str(&self, name: &str) -> Option<&[String]> {
        match &self.cols[self.schema.index_of(name)?] {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Materializes row `i` (for small result sets after a scan).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols
            .iter()
            .map(|c| match c {
                Column::U64(v) => Value::U64(v[i]),
                Column::F64(v) => Value::F64(v[i]),
                Column::Str(v) => Value::Str(v[i].clone()),
            })
            .collect()
    }

    /// Scans with predicate pushdown: each predicate runs over its own
    /// column vector, ANDed into a selection mask; matching row indexes
    /// are materialized only at the end. Unknown columns or type
    /// mismatches are schema errors, not empty results.
    pub fn scan(&self, preds: &[Predicate]) -> Result<Vec<usize>, PersistError> {
        let mut mask = vec![true; self.nrows];
        for p in preds {
            let idx = self.schema.index_of(p.column()).ok_or_else(|| {
                PersistError::Schema(format!("unknown column {:?}", p.column()))
            })?;
            match (p, &self.cols[idx]) {
                (Predicate::U64Eq(_, want), Column::U64(vs)) => {
                    for (m, v) in mask.iter_mut().zip(vs) {
                        *m &= v == want;
                    }
                }
                (Predicate::U64Range(_, lo, hi), Column::U64(vs)) => {
                    for (m, v) in mask.iter_mut().zip(vs) {
                        *m &= v >= lo && v <= hi;
                    }
                }
                (Predicate::F64Ge(_, lo), Column::F64(vs)) => {
                    for (m, v) in mask.iter_mut().zip(vs) {
                        *m &= v >= lo;
                    }
                }
                (Predicate::StrEq(_, want), Column::Str(vs)) => {
                    for (m, v) in mask.iter_mut().zip(vs) {
                        *m &= v == want;
                    }
                }
                (Predicate::StrPrefix(_, pre), Column::Str(vs)) => {
                    for (m, v) in mask.iter_mut().zip(vs) {
                        *m &= v.starts_with(pre.as_str());
                    }
                }
                _ => {
                    return Err(PersistError::Schema(format!(
                        "predicate on {:?} does not match column type",
                        p.column()
                    )))
                }
            }
        }
        Ok(mask.iter().enumerate().filter(|(_, m)| **m).map(|(i, _)| i).collect())
    }

    /// Serializes to the `DHTB` v1 snapshot bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DHTB");
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&(self.cols.len() as u32).to_le_bytes());
        for (name, t) in &self.schema.cols {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(t.tag());
        }
        out.extend_from_slice(&(self.nrows as u64).to_le_bytes());
        for col in &self.cols {
            let mut block = Vec::new();
            match col {
                Column::U64(vs) => {
                    for v in vs {
                        block.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Column::F64(vs) => {
                    for v in vs {
                        block.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
                Column::Str(vs) => {
                    for v in vs {
                        block.extend_from_slice(&(v.len() as u32).to_le_bytes());
                        block.extend_from_slice(v.as_bytes());
                    }
                }
            }
            out.extend_from_slice(&(block.len() as u64).to_le_bytes());
            out.extend_from_slice(&block);
            out.extend_from_slice(&crc32(&block).to_le_bytes());
        }
        let trailer = crc32(&out);
        out.extend_from_slice(&trailer.to_le_bytes());
        out
    }

    /// Publishes the snapshot at `path` (atomically, faultably).
    pub fn save(&self, path: &Path, publisher: &Publisher) -> Result<(), PersistError> {
        publisher.publish(path, &self.to_bytes())
    }

    /// Parses snapshot bytes; `None` on any structural or checksum
    /// violation (the caller maps that to [`PersistError::Torn`]).
    pub fn from_bytes(data: &[u8]) -> Option<Table> {
        let mut r = Reader { data, at: 0 };
        // Trailer crc covers everything before it — check first so a torn
        // tail fails fast.
        if data.len() < 4 {
            return None;
        }
        let (body, trailer) = data.split_at(data.len() - 4);
        if crc32(body) != u32::from_le_bytes(trailer.try_into().ok()?) {
            return None;
        }
        if r.take(4)? != b"DHTB" || r.u32()? != 1 {
            return None;
        }
        let ncols = r.u32()? as usize;
        if ncols > 1 << 16 {
            return None;
        }
        let mut cols_meta = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name_len = r.u32()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_string();
            let t = ColType::from_tag(r.u8()?)?;
            cols_meta.push((name, t));
        }
        let nrows = r.u64()? as usize;
        let mut cols = Vec::with_capacity(ncols);
        for (_, t) in &cols_meta {
            let block_len = r.u64()? as usize;
            let block = r.take(block_len)?;
            if crc32(block) != r.u32()? {
                return None;
            }
            let mut b = Reader { data: block, at: 0 };
            let col = match t {
                ColType::U64 => {
                    let mut vs = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        vs.push(b.u64()?);
                    }
                    Column::U64(vs)
                }
                ColType::F64 => {
                    let mut vs = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        vs.push(f64::from_bits(b.u64()?));
                    }
                    Column::F64(vs)
                }
                ColType::Str => {
                    let mut vs = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        let len = b.u32()? as usize;
                        vs.push(std::str::from_utf8(b.take(len)?).ok()?.to_string());
                    }
                    Column::Str(vs)
                }
            };
            if b.at != block.len() {
                return None;
            }
            cols.push(col);
        }
        if r.at != body.len() {
            return None;
        }
        Some(Table { schema: Schema { cols: cols_meta }, cols, nrows })
    }

    /// Loads a snapshot; [`PersistError::Torn`] on any validation failure,
    /// `Io(NotFound)` when absent (a missing table is an error for
    /// queries, unlike a missing manifest).
    pub fn load(path: &Path) -> Result<Table, PersistError> {
        let data = std::fs::read(path)?;
        Table::from_bytes(&data).ok_or_else(|| PersistError::Torn(path.to_path_buf()))
    }
}

/// Bounds-checked little-endian cursor for `from_bytes`.
struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files_schema() -> Schema {
        Schema::new(&[("path", ColType::Str), ("size", ColType::U64), ("score", ColType::F64)])
    }

    fn sample() -> Table {
        let mut t = Table::new(files_schema());
        for (path, size, score) in [
            ("/bin/sh", 100u64, 0.5f64),
            ("/etc/passwd", 40, 0.25),
            ("/bin/ls", 120, 0.75),
            ("/usr/lib/libc.so", 900, 1.0),
        ] {
            t.push_row(vec![path.into(), size.into(), score.into()]).unwrap();
        }
        t
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let t = sample();
        let got = Table::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(got, t);
        assert_eq!(got.to_bytes(), t.to_bytes());
        // Empty tables roundtrip too.
        let e = Table::new(files_schema());
        assert_eq!(Table::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn scan_pushes_predicates_down() {
        let t = sample();
        let rows = t
            .scan(&[
                Predicate::StrPrefix("path".into(), "/bin/".into()),
                Predicate::U64Range("size".into(), 100, 120),
            ])
            .unwrap();
        assert_eq!(rows, vec![0, 2]);
        let rows = t.scan(&[Predicate::F64Ge("score".into(), 0.75)]).unwrap();
        assert_eq!(rows, vec![2, 3]);
        assert_eq!(t.scan(&[]).unwrap().len(), 4, "no predicates selects all");
        assert!(matches!(
            t.scan(&[Predicate::U64Eq("nope".into(), 1)]),
            Err(PersistError::Schema(_))
        ));
        assert!(matches!(
            t.scan(&[Predicate::StrEq("size".into(), "x".into())]),
            Err(PersistError::Schema(_))
        ));
    }

    #[test]
    fn schema_violations_are_rejected() {
        let mut t = Table::new(files_schema());
        assert!(matches!(
            t.push_row(vec![Value::U64(1)]),
            Err(PersistError::Schema(_))
        ));
        assert!(matches!(
            t.push_row(vec![Value::U64(1), Value::U64(2), Value::F64(0.0)]),
            Err(PersistError::Schema(_))
        ));
        assert_eq!(t.len(), 0, "failed pushes must not partially append");
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let bytes = sample().to_bytes();
        // Flip one bit at a spread of positions; the reader must reject
        // every mutant (crc tiers + structural checks).
        let step = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(Table::from_bytes(&bad).is_none(), "bit flip at byte {pos} not caught");
        }
        // Truncations at any length are rejected too.
        for len in 0..bytes.len() {
            assert!(Table::from_bytes(&bytes[..len]).is_none(), "truncation to {len} not caught");
        }
    }

    #[test]
    fn save_load_through_publisher() {
        let dir = std::env::temp_dir().join(format!("dhub-persist-tbl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("files.tbl");
        let t = sample();
        t.save(&path, &Publisher::new()).unwrap();
        assert_eq!(Table::load(&path).unwrap(), t);
        std::fs::write(&path, b"DHTBgarbage").unwrap();
        assert!(matches!(Table::load(&path), Err(PersistError::Torn(_))));
        let _ = std::fs::remove_dir_all(dir);
    }
}
