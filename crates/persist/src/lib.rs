//! Durable storage tier (`dhub-persist`): a crash-safe content-addressed
//! blob store plus a small columnar table layer, so dedup-store contents
//! and study results survive the process instead of living one pipeline
//! run (ROADMAP item 1; cf. npm-follower's split between scrape products
//! and derived analysis tables).
//!
//! * [`fsync`] — the write-to-temp + fsync + atomic-rename + parent-dir
//!   fsync discipline, extracted from `dhub-registry`'s disk store so the
//!   registry and the persist tier share one durability code path. The
//!   [`Publisher`] wraps it with deterministic crash injection
//!   (`FaultOp::Persist`) and retry/backoff.
//! * [`blobstore`] — content-addressed objects under sharded fanout
//!   directories with digest-verified reads and GC of unreferenced
//!   objects and in-flight temp debris.
//! * [`manifest`] — a refcount manifest snapshot (JSON) that a layered
//!   store checkpoints; authoritative state stays in the per-layer recipe
//!   files, so a stale or missing manifest is rebuilt, never trusted.
//! * [`table`] — typed columnar tables (u64 / f64 / string columns):
//!   append in memory, snapshot to a crc-checked binary file, scan with
//!   predicate pushdown over the column data.
//!
//! Every durable write goes through the same publish path, so one fault
//! plan (`--fault-rate`) exercises torn and bit-flipped in-flight files
//! across the whole tier, and `dhub_persist_*` counters expose its work.

pub mod blobstore;
pub mod fsync;
pub mod manifest;
pub mod table;

pub use blobstore::{BlobStore, GcStats};
pub use fsync::{atomic_publish, fsync_dir, tmp_path, Publisher, WriteFaults};
pub use manifest::RefManifest;
pub use table::{ColType, Predicate, Schema, Table, Value};

use dhub_model::Digest;
use std::path::PathBuf;

/// Errors from the durable tier.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    /// Stored object bytes do not match their digest (on-disk corruption).
    Corrupt(Digest),
    /// A table or manifest file failed its structural/checksum validation
    /// (torn write that escaped the atomic-publish discipline, or outside
    /// tampering).
    Torn(PathBuf),
    /// An injected crash exhausted the write retry budget.
    CrashedWrite(PathBuf),
    /// Table misuse: schema/row mismatch or unknown column.
    Schema(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist io error: {e}"),
            PersistError::Corrupt(d) => write!(f, "corrupt object {}", d.to_docker_string()),
            PersistError::Torn(p) => write!(f, "torn/invalid persisted file {}", p.display()),
            PersistError::CrashedWrite(p) => {
                write!(f, "write crashed (injected) and retries exhausted: {}", p.display())
            }
            PersistError::Schema(s) => write!(f, "table schema error: {s}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Lowercase hex of a digest, without the `sha256:` prefix — the on-disk
/// object/recipe file name.
pub fn hex_of(d: &Digest) -> String {
    let s = d.to_docker_string();
    s.strip_prefix("sha256:").unwrap_or(&s).to_string()
}

/// Parses an on-disk hex file name back to a digest.
pub fn digest_from_hex(hex: &str) -> Option<Digest> {
    Digest::parse(&format!("sha256:{hex}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let d = Digest::of(b"some bytes");
        let hex = hex_of(&d);
        assert_eq!(hex.len(), 64);
        assert!(!hex.contains(':'));
        assert_eq!(digest_from_hex(&hex), Some(d));
        assert_eq!(digest_from_hex("zz"), None);
    }
}
