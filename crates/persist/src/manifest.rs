//! The refcount manifest: a checkpointed snapshot of a layered store's
//! derived state (object refcounts + aggregate stats + layer set).
//!
//! Authoritative state is the per-layer recipe files plus the object
//! store; the manifest only caches what is derivable from them. A
//! consistency fingerprint over the layer set ties a manifest to the
//! recipes it summarized — if a crash lands between a recipe publish and
//! the next checkpoint, the fingerprint mismatches and the opener rebuilds
//! from the recipes instead of trusting a stale snapshot.

use crate::fsync::Publisher;
use crate::{digest_from_hex, hex_of, PersistError};
use dhub_json::Json;
use dhub_model::Digest;
use std::path::Path;

/// Aggregate counters a layered store checkpoints (mirrors the dedup
/// store's `StoreStats`, kept as plain u64s here so `dhub-persist` stays
/// below `dhub-dedupstore` in the crate DAG).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManifestStats {
    pub layers: u64,
    pub unique_objects: u64,
    pub physical_bytes: u64,
    pub logical_bytes: u64,
    pub conventional_bytes: u64,
}

/// A refcount manifest snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefManifest {
    /// Aggregate stats at checkpoint time.
    pub stats: ManifestStats,
    /// `(object digest, references)` sorted by digest hex.
    pub refcounts: Vec<(Digest, u64)>,
    /// Digests of the layers summarized, sorted by hex.
    pub layers: Vec<Digest>,
}

/// Fingerprint of a layer set: SHA-256 over the sorted digest hexes. Both
/// the manifest writer and the opener compute it the same way, so equality
/// means "this manifest summarizes exactly those recipes".
pub fn layer_fingerprint(layers: &[Digest]) -> Digest {
    let mut hexes: Vec<String> = layers.iter().map(hex_of).collect();
    hexes.sort();
    Digest::of(hexes.join("\n").as_bytes())
}

impl RefManifest {
    /// Normalizes (sorts) the refcount and layer vectors in place so two
    /// manifests over the same state serialize byte-identically.
    pub fn normalize(&mut self) {
        self.refcounts.sort_by_key(|(d, _)| hex_of(d));
        self.layers.sort_by_key(hex_of);
    }

    /// The fingerprint of this manifest's layer set.
    pub fn fingerprint(&self) -> Digest {
        layer_fingerprint(&self.layers)
    }

    /// The manifest body (everything but the trailing checksum field).
    fn body(&self) -> Json {
        let mut root = Json::obj();
        root.set("schema", "dhub-persist-manifest-v1");
        root.set("fingerprint", self.fingerprint().to_docker_string());
        let mut stats = Json::obj();
        stats
            .set("layers", self.stats.layers)
            .set("uniqueObjects", self.stats.unique_objects)
            .set("physicalBytes", self.stats.physical_bytes)
            .set("logicalBytes", self.stats.logical_bytes)
            .set("conventionalBytes", self.stats.conventional_bytes);
        root.set("stats", stats);
        root.set(
            "layers",
            Json::Arr(self.layers.iter().map(|d| Json::Str(hex_of(d))).collect()),
        );
        let refs: Vec<Json> = self
            .refcounts
            .iter()
            .map(|(d, n)| {
                let mut o = Json::obj();
                o.set("object", hex_of(d)).set("refs", *n);
                o
            })
            .collect();
        root.set("refcounts", Json::Arr(refs));
        root
    }

    /// Serializes to JSON. Counts fit losslessly in JSON numbers below
    /// 2^53 — far above anything this corpus produces. A trailing
    /// `checksum` field digests the rest of the document, so any bit of a
    /// manifest that changes behind the store's back is detected on load.
    pub fn to_json(&self) -> String {
        let mut root = self.body();
        let sum = Digest::of(root.to_string().as_bytes());
        root.set("checksum", sum.to_docker_string());
        root.to_string()
    }

    /// Parses a manifest back, verifying the embedded fingerprint against
    /// the layer list and the body checksum against a deterministic
    /// re-serialization (a manifest whose own halves disagree is torn).
    pub fn from_json(text: &str) -> Option<RefManifest> {
        let j = dhub_json::parse(text).ok()?;
        if j.get("schema")?.as_str()? != "dhub-persist-manifest-v1" {
            return None;
        }
        let s = j.get("stats")?;
        let stats = ManifestStats {
            layers: s.get("layers")?.as_u64()?,
            unique_objects: s.get("uniqueObjects")?.as_u64()?,
            physical_bytes: s.get("physicalBytes")?.as_u64()?,
            logical_bytes: s.get("logicalBytes")?.as_u64()?,
            conventional_bytes: s.get("conventionalBytes")?.as_u64()?,
        };
        let layers = j
            .get("layers")?
            .as_arr()?
            .iter()
            .map(|v| v.as_str().and_then(digest_from_hex))
            .collect::<Option<Vec<_>>>()?;
        let refcounts = j
            .get("refcounts")?
            .as_arr()?
            .iter()
            .map(|v| {
                Some((digest_from_hex(v.get("object")?.as_str()?)?, v.get("refs")?.as_u64()?))
            })
            .collect::<Option<Vec<_>>>()?;
        let m = RefManifest { stats, refcounts, layers };
        let claimed = Digest::parse(j.get("fingerprint")?.as_str()?)?;
        if claimed != m.fingerprint() {
            return None;
        }
        let claimed_sum = Digest::parse(j.get("checksum")?.as_str()?)?;
        if claimed_sum != Digest::of(m.body().to_string().as_bytes()) {
            return None;
        }
        Some(m)
    }

    /// Publishes the manifest at `path` (atomically, faultably).
    pub fn save(&self, path: &Path, publisher: &Publisher) -> Result<(), PersistError> {
        publisher.publish(path, self.to_json().as_bytes())
    }

    /// Loads a manifest; `Ok(None)` when the file is absent, and
    /// [`PersistError::Torn`] when present but unparseable/inconsistent.
    pub fn load(path: &Path) -> Result<Option<RefManifest>, PersistError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match RefManifest::from_json(&text) {
            Some(m) => Ok(Some(m)),
            None => Err(PersistError::Torn(path.to_path_buf())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RefManifest {
        let mut m = RefManifest {
            stats: ManifestStats {
                layers: 2,
                unique_objects: 3,
                physical_bytes: 100,
                logical_bytes: 160,
                conventional_bytes: 90,
            },
            refcounts: vec![(Digest::of(b"obj-b"), 2), (Digest::of(b"obj-a"), 1)],
            layers: vec![Digest::of(b"layer-2"), Digest::of(b"layer-1")],
        };
        m.normalize();
        m
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        assert_eq!(RefManifest::from_json(&m.to_json()), Some(m));
    }

    #[test]
    fn normalization_is_canonical() {
        let a = sample();
        let mut b = sample();
        b.refcounts.reverse();
        b.layers.reverse();
        b.normalize();
        assert_eq!(a.to_json(), b.to_json(), "same state must serialize identically");
    }

    #[test]
    fn fingerprint_tracks_layer_set() {
        let m = sample();
        let mut other = m.clone();
        other.layers.push(Digest::of(b"layer-3"));
        assert_ne!(m.fingerprint(), other.fingerprint());
        // Order does not matter.
        assert_eq!(
            layer_fingerprint(&[Digest::of(b"x"), Digest::of(b"y")]),
            layer_fingerprint(&[Digest::of(b"y"), Digest::of(b"x")])
        );
    }

    #[test]
    fn tampered_manifest_is_torn() {
        let m = sample();
        let text = m.to_json().replace("\"layers\":2", "\"layers\":7");
        assert_eq!(RefManifest::from_json(&text), None);

        let dir = std::env::temp_dir().join(format!("dhub-persist-man-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        std::fs::write(&path, "{\"schema\":\"junk\"}").unwrap();
        assert!(matches!(RefManifest::load(&path), Err(PersistError::Torn(_))));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dhub-persist-man2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        assert_eq!(RefManifest::load(&path).unwrap(), None);
        let m = sample();
        m.save(&path, &Publisher::new()).unwrap();
        assert_eq!(RefManifest::load(&path).unwrap(), Some(m));
        let _ = std::fs::remove_dir_all(dir);
    }
}
