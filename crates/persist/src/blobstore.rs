//! Crash-safe content-addressed object storage.
//!
//! Objects live under sharded fanout directories (`objects/ab/<hex>`, the
//! Docker registry layout), are published atomically through the
//! [`Publisher`] discipline, and every read re-hashes the bytes against
//! the requested digest — a torn or bit-flipped file can surface only as
//! [`PersistError::Corrupt`], never as wrong bytes.

use crate::fsync::{fsync_dir, Publisher};
use crate::{digest_from_hex, hex_of, PersistError};
use dhub_digest::FxHashSet;
use dhub_model::Digest;
use dhub_obs::{Counter, MetricsRegistry};
use dhub_sync::Mutex;
use std::path::{Path, PathBuf};

/// What one garbage-collection sweep removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Unreferenced published objects deleted.
    pub objects: u64,
    /// Bytes those objects occupied.
    pub bytes: u64,
    /// In-flight `*.tmp` debris files deleted (crashed writes).
    pub tmp_files: u64,
}

/// Live `dhub_persist_*` object-path counters (detached by default).
#[derive(Clone)]
struct BlobMetrics {
    objects_written: Counter,
    object_bytes: Counter,
    reads: Counter,
    read_bytes: Counter,
    corrupt_reads: Counter,
    gc_objects: Counter,
    gc_bytes: Counter,
}

impl Default for BlobMetrics {
    fn default() -> Self {
        BlobMetrics {
            objects_written: Counter::detached(),
            object_bytes: Counter::detached(),
            reads: Counter::detached(),
            read_bytes: Counter::detached(),
            corrupt_reads: Counter::detached(),
            gc_objects: Counter::detached(),
            gc_bytes: Counter::detached(),
        }
    }
}

impl BlobMetrics {
    fn on(reg: &MetricsRegistry) -> Self {
        BlobMetrics {
            objects_written: reg.counter("dhub_persist_objects_written_total"),
            object_bytes: reg.counter("dhub_persist_object_bytes_total"),
            reads: reg.counter("dhub_persist_reads_total"),
            read_bytes: reg.counter("dhub_persist_read_bytes_total"),
            corrupt_reads: reg.counter("dhub_persist_corrupt_reads_total"),
            gc_objects: reg.counter("dhub_persist_gc_objects_total"),
            gc_bytes: reg.counter("dhub_persist_gc_bytes_total"),
        }
    }
}

/// A content-addressed object store rooted at a directory.
///
/// Thread-safe: concurrent `put`s of distinct digests write distinct
/// files; same-digest writers are serialized by a store-wide lock (the
/// rename is atomic regardless — the lock only avoids redundant temp
/// writes, matching the registry disk store).
pub struct BlobStore {
    root: PathBuf,
    publisher: Publisher,
    write_lock: Mutex<()>,
    metrics: BlobMetrics,
}

impl BlobStore {
    /// Opens (creating if needed) a store rooted at `root`, publishing
    /// through `publisher`.
    pub fn open(root: impl AsRef<Path>, publisher: Publisher) -> Result<BlobStore, PersistError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(BlobStore {
            root,
            publisher,
            write_lock: Mutex::new(()),
            metrics: BlobMetrics::default(),
        })
    }

    /// Binds the `dhub_persist_*` object counters to `reg`.
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> BlobStore {
        self.metrics = BlobMetrics::on(reg);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The publisher all writes go through.
    pub fn publisher(&self) -> &Publisher {
        &self.publisher
    }

    fn path_for(&self, digest: &Digest) -> PathBuf {
        let hex = hex_of(digest);
        self.root.join(&hex[..2]).join(hex)
    }

    /// Stores `data`, returning its digest. Idempotent; crash-safe (a
    /// killed write leaves only invisible `*.tmp` debris).
    pub fn put(&self, data: &[u8]) -> Result<Digest, PersistError> {
        let digest = Digest::of(data);
        self.put_at(&digest, data)?;
        Ok(digest)
    }

    /// Stores `data` under an already-computed `digest` (the fused ingest
    /// path has hashed every payload once; re-hashing here would double
    /// the per-byte cost). Debug builds verify the pair.
    pub fn put_at(&self, digest: &Digest, data: &[u8]) -> Result<(), PersistError> {
        debug_assert_eq!(*digest, Digest::of(data), "put_at digest/payload mismatch");
        let path = self.path_for(digest);
        if path.exists() {
            return Ok(());
        }
        let _guard = self.write_lock.lock();
        if path.exists() {
            return Ok(());
        }
        let parent = path.parent().expect("object path has parent");
        if !parent.exists() {
            std::fs::create_dir_all(parent)?;
            // The fanout directory itself is a fresh entry in the root.
            fsync_dir(&self.root)?;
        }
        self.publisher.publish(&path, data)?;
        self.metrics.objects_written.inc();
        self.metrics.object_bytes.add(data.len() as u64);
        Ok(())
    }

    /// Stores a batch of pre-hashed objects with one parent-directory
    /// fsync per fanout shard (via [`Publisher::publish_batch`]) instead
    /// of one per object — the fsync-bound durable ingest path spends
    /// most of its time in exactly those directory fsyncs. Duplicate
    /// digests within the batch and objects already on disk are skipped.
    pub fn put_batch(&self, items: &[(Digest, &[u8])]) -> Result<(), PersistError> {
        let _guard = self.write_lock.lock();
        let mut seen = FxHashSet::default();
        let mut to_publish: Vec<(PathBuf, &[u8])> = Vec::new();
        let mut fresh_shard = false;
        for (digest, data) in items {
            debug_assert_eq!(*digest, Digest::of(data), "put_batch digest/payload mismatch");
            if !seen.insert(*digest) {
                continue;
            }
            let path = self.path_for(digest);
            if path.exists() {
                continue;
            }
            let parent = path.parent().expect("object path has parent");
            if !parent.exists() {
                std::fs::create_dir_all(parent)?;
                fresh_shard = true;
            }
            to_publish.push((path, data));
        }
        if fresh_shard {
            // The fanout directories themselves are fresh entries in the root.
            fsync_dir(&self.root)?;
        }
        if to_publish.is_empty() {
            return Ok(());
        }
        self.publisher.publish_batch(&to_publish)?;
        self.metrics.objects_written.add(to_publish.len() as u64);
        self.metrics.object_bytes.add(to_publish.iter().map(|(_, d)| d.len() as u64).sum());
        Ok(())
    }

    /// Fetches and digest-verifies an object. `Ok(None)` when absent;
    /// [`PersistError::Corrupt`] when the stored bytes do not hash to
    /// `digest` — torn bytes are never returned.
    pub fn get(&self, digest: &Digest) -> Result<Option<Vec<u8>>, PersistError> {
        let data = match std::fs::read(self.path_for(digest)) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if Digest::of(&data) != *digest {
            self.metrics.corrupt_reads.inc();
            return Err(PersistError::Corrupt(*digest));
        }
        self.metrics.reads.inc();
        self.metrics.read_bytes.add(data.len() as u64);
        Ok(Some(data))
    }

    /// True if the object exists (without reading or verifying it).
    pub fn contains(&self, digest: &Digest) -> bool {
        self.path_for(digest).exists()
    }

    /// Deletes an object if present; returns whether it existed.
    pub fn delete(&self, digest: &Digest) -> Result<bool, PersistError> {
        match std::fs::remove_file(self.path_for(digest)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Walks the fanout tree, yielding `(digest, path, is_tmp, len)` for
    /// every file. Deterministic order (sorted shards, sorted names).
    fn walk(&self) -> Result<Vec<(Option<Digest>, PathBuf, bool, u64)>, PersistError> {
        let mut out = Vec::new();
        let mut shards: Vec<PathBuf> = Vec::new();
        for shard in std::fs::read_dir(&self.root)? {
            let shard = shard?;
            if shard.file_type()?.is_dir() {
                shards.push(shard.path());
            }
        }
        shards.sort();
        for shard in shards {
            let mut files: Vec<PathBuf> = Vec::new();
            for f in std::fs::read_dir(&shard)? {
                files.push(f?.path());
            }
            files.sort();
            for path in files {
                let is_tmp = path.extension().map(|e| e == "tmp").unwrap_or(false);
                let len = path.metadata()?.len();
                let digest = if is_tmp {
                    None
                } else {
                    path.file_name().and_then(|n| n.to_str()).and_then(digest_from_hex)
                };
                out.push((digest, path, is_tmp, len));
            }
        }
        Ok(out)
    }

    /// Digests of every published (non-temp) object, sorted.
    pub fn list(&self) -> Result<Vec<Digest>, PersistError> {
        Ok(self.walk()?.into_iter().filter_map(|(d, _, _, _)| d).collect())
    }

    /// Total bytes across published objects (temp debris excluded).
    pub fn disk_bytes(&self) -> Result<u64, PersistError> {
        Ok(self.walk()?.iter().filter(|(_, _, tmp, _)| !tmp).map(|(_, _, _, l)| l).sum())
    }

    /// Garbage collection: deletes every published object whose digest is
    /// not in `live`, and all `*.tmp` debris from crashed writes.
    /// Referenced objects are never touched.
    pub fn gc(&self, live: &FxHashSet<Digest>) -> Result<GcStats, PersistError> {
        let _guard = self.write_lock.lock();
        let mut stats = GcStats::default();
        for (digest, path, is_tmp, len) in self.walk()? {
            if is_tmp {
                std::fs::remove_file(&path)?;
                stats.tmp_files += 1;
                continue;
            }
            // Unparseable names are foreign files — leave them alone.
            let Some(d) = digest else { continue };
            if !live.contains(&d) {
                std::fs::remove_file(&path)?;
                stats.objects += 1;
                stats.bytes += len;
            }
        }
        self.metrics.gc_objects.add(stats.objects);
        self.metrics.gc_bytes.add(stats.bytes);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsync::tmp_path;

    fn store(tag: &str) -> (PathBuf, BlobStore) {
        let dir = std::env::temp_dir().join(format!(
            "dhub-persist-blob-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = BlobStore::open(&dir, Publisher::new()).unwrap();
        (dir, s)
    }

    #[test]
    fn put_get_roundtrip() {
        let (dir, s) = store("roundtrip");
        let d = s.put(b"object bytes").unwrap();
        assert_eq!(s.get(&d).unwrap().unwrap(), b"object bytes");
        assert!(s.contains(&d));
        assert_eq!(s.list().unwrap(), vec![d]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn idempotent_put_and_disk_bytes() {
        let (dir, s) = store("idem");
        s.put(&[7u8; 1000]).unwrap();
        s.put(&[7u8; 1000]).unwrap();
        assert_eq!(s.disk_bytes().unwrap(), 1000);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corruption_is_detected_not_returned() {
        let (dir, s) = store("corrupt");
        let d = s.put(b"pristine bytes").unwrap();
        std::fs::write(s.path_for(&d), b"tampered bytes").unwrap();
        assert!(matches!(s.get(&d).unwrap_err(), PersistError::Corrupt(_)));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_spares_live_collects_dead_and_debris() {
        let (dir, s) = store("gc");
        let live_d = s.put(b"live object").unwrap();
        let dead_d = s.put(b"dead object").unwrap();
        // Simulated crashed write: torn temp next to a would-be object.
        let debris = tmp_path(&s.path_for(&Digest::of(b"never landed")));
        std::fs::create_dir_all(debris.parent().unwrap()).unwrap();
        std::fs::write(&debris, b"to").unwrap();

        let mut live = FxHashSet::default();
        live.insert(live_d);
        let gc = s.gc(&live).unwrap();
        assert_eq!(gc.objects, 1);
        assert_eq!(gc.bytes, b"dead object".len() as u64);
        assert_eq!(gc.tmp_files, 1);
        assert_eq!(s.get(&live_d).unwrap().unwrap(), b"live object");
        assert!(s.get(&dead_d).unwrap().is_none());
        assert!(!debris.exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tmp_is_invisible_to_reads() {
        let (dir, s) = store("torn");
        let d = Digest::of(b"full payload");
        let path = s.path_for(&d);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(tmp_path(&path), b"full pa").unwrap();
        assert_eq!(s.get(&d).unwrap(), None, "torn temp must read as absent");
        // A later successful put publishes over the debris.
        s.put(b"full payload").unwrap();
        assert_eq!(s.get(&d).unwrap().unwrap(), b"full payload");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn metrics_record_object_traffic() {
        let dir = std::env::temp_dir().join(format!("dhub-persist-blob-met-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = MetricsRegistry::new();
        let s = BlobStore::open(&dir, Publisher::new()).unwrap().with_metrics(&reg);
        let d = s.put(&[1u8; 100]).unwrap();
        s.get(&d).unwrap();
        assert_eq!(reg.counter_value("dhub_persist_objects_written_total"), 1);
        assert_eq!(reg.counter_value("dhub_persist_object_bytes_total"), 100);
        assert_eq!(reg.counter_value("dhub_persist_reads_total"), 1);
        assert_eq!(reg.counter_value("dhub_persist_read_bytes_total"), 100);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_puts_deduplicate() {
        let (dir, s) = store("concurrent");
        let s = std::sync::Arc::new(s);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        s.put(&i.to_le_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.disk_bytes().unwrap(), 200);
        assert_eq!(s.list().unwrap().len(), 50);
        let _ = std::fs::remove_dir_all(dir);
    }
}
