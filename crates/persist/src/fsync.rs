//! The durability discipline: write-to-temp + fsync + atomic rename +
//! parent-directory fsync, plus the faultable [`Publisher`] every durable
//! write in the tier goes through.
//!
//! Extracted from `dhub-registry`'s disk store (which now calls back into
//! these helpers) so there is exactly one place in the workspace that
//! knows how to publish bytes crash-safely:
//!
//! 1. write the full payload to `<name>.tmp` in the target directory,
//! 2. `fsync` the temp file (bytes durable, name not yet visible),
//! 3. `rename` onto the final name (atomic publish),
//! 4. `fsync` the parent directory (the new directory entry itself lives
//!    in the parent's data; without this a crash after `rename` can lose
//!    the file entirely — data on disk, no name pointing at it).
//!
//! A crash at any point leaves either no file, a torn/corrupt `*.tmp`
//! that readers never look at, or the complete published file. Readers
//! that verify digests/checksums catch everything else.

use crate::PersistError;
use dhub_faults::{fault_key, FaultInjector, FaultKind, FaultOp, RetryPolicy};
use dhub_obs::{Counter, MetricsRegistry};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// fsyncs a directory so freshly renamed entries survive power loss.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// The temp name a publish of `path` writes through.
pub fn tmp_path(path: &Path) -> PathBuf {
    path.with_extension("tmp")
}

/// Publishes `data` at `path` with the full crash-safety discipline
/// (temp write, fsync, atomic rename, parent fsync). The parent directory
/// must exist.
pub fn atomic_publish(path: &Path, data: &[u8]) -> std::io::Result<()> {
    let parent = path.parent().expect("publish path has a parent directory");
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_dir(parent)
}

/// Deterministic crash injection for durable writes: an injector consulted
/// per publish attempt (op [`FaultOp::Persist`], keyed by file name) and
/// the retry policy that paces re-attempts.
#[derive(Clone)]
pub struct WriteFaults {
    pub injector: Arc<FaultInjector>,
    pub policy: RetryPolicy,
}

/// Live `dhub_persist_*` publish counters (detached by default).
#[derive(Clone)]
struct PublishMetrics {
    publishes: Counter,
    crashes: Counter,
    retries: Counter,
}

impl Default for PublishMetrics {
    fn default() -> Self {
        PublishMetrics {
            publishes: Counter::detached(),
            crashes: Counter::detached(),
            retries: Counter::detached(),
        }
    }
}

/// The faultable publish path: [`atomic_publish`] plus optional
/// deterministic crash injection and metrics. All durable writes in the
/// tier (objects, recipes, manifests, tables) go through one of these.
#[derive(Clone, Default)]
pub struct Publisher {
    faults: Option<WriteFaults>,
    metrics: PublishMetrics,
}

impl Publisher {
    /// A publisher with no fault injection and detached metrics.
    pub fn new() -> Publisher {
        Publisher::default()
    }

    /// Attaches crash injection: each publish attempt consults the
    /// injector; a fired fault leaves a torn or bit-flipped `*.tmp` (or
    /// nothing at all) and the publish is retried under `policy`.
    pub fn with_faults(mut self, faults: Option<WriteFaults>) -> Publisher {
        self.faults = faults;
        self
    }

    /// Binds the `dhub_persist_{publishes,write_crashes,write_retries}_total`
    /// counters to `reg`.
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> Publisher {
        self.metrics = PublishMetrics {
            publishes: reg.counter("dhub_persist_publishes_total"),
            crashes: reg.counter("dhub_persist_write_crashes_total"),
            retries: reg.counter("dhub_persist_write_retries_total"),
        };
        self
    }

    /// Whether a fault injector is attached.
    pub fn is_faulted(&self) -> bool {
        self.faults.is_some()
    }

    /// Simulates one crashed write attempt: the temp file is left in
    /// whatever state the "crash" caught it in — absent (`Drop`), torn
    /// (`Truncate`: a prefix of the payload), or bit-flipped (`Corrupt`) —
    /// and the final name is never touched.
    fn crash(path: &Path, data: &[u8], kind: FaultKind, key: u64) -> std::io::Result<()> {
        let tmp = tmp_path(path);
        match kind {
            FaultKind::Truncate => {
                let torn = &data[..data.len() / 2];
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(torn)?;
                f.sync_all()?;
            }
            FaultKind::Corrupt if !data.is_empty() => {
                let mut bytes = data.to_vec();
                let bit = (key % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&bytes)?;
                f.sync_all()?;
            }
            // Drop (or Corrupt on an empty payload): crashed before any
            // bytes hit the disk.
            _ => {}
        }
        Ok(())
    }

    /// Publishes `data` at `path`, retrying injected crashes under the
    /// attached policy. The fault stream is keyed by the file name, so the
    /// decision sequence for one path is independent of thread
    /// interleaving across paths.
    pub fn publish(&self, path: &Path, data: &[u8]) -> Result<(), PersistError> {
        let Some(faults) = &self.faults else {
            atomic_publish(path, data)?;
            self.metrics.publishes.inc();
            return Ok(());
        };
        let key = fault_key(path.file_name().map(|n| n.as_encoded_bytes()).unwrap_or_default());
        let allowed = [FaultKind::Drop, FaultKind::Truncate, FaultKind::Corrupt];
        let mut attempt = 0u32;
        loop {
            match faults.injector.decide(FaultOp::Persist, key, &allowed) {
                Some(kind) => {
                    Publisher::crash(path, data, kind, key)?;
                    self.metrics.crashes.inc();
                    if attempt >= faults.policy.max_retries {
                        return Err(PersistError::CrashedWrite(path.to_path_buf()));
                    }
                    faults.policy.sleep(key, attempt);
                    self.metrics.retries.inc();
                    attempt += 1;
                }
                None => {
                    atomic_publish(path, data)?;
                    self.metrics.publishes.inc();
                    return Ok(());
                }
            }
        }
    }

    /// Publishes a batch of files with one parent-directory fsync per
    /// distinct parent instead of one per file: every temp is written and
    /// fsynced, every rename lands, then each parent is fsynced once. The
    /// crash contract is the same as issuing the publishes one by one —
    /// a crash mid-batch leaves any prefix of published files plus
    /// invisible `*.tmp` debris — because a file's durability still
    /// requires its own fsync plus the (now shared) parent fsync, both of
    /// which complete before `publish_batch` returns.
    ///
    /// Under fault injection this falls back to per-file [`Publisher::publish`]
    /// so the per-file-name crash/retry streams are byte-for-byte the ones
    /// the chaos suite replays.
    pub fn publish_batch(&self, items: &[(PathBuf, &[u8])]) -> Result<(), PersistError> {
        if self.faults.is_some() {
            for (path, data) in items {
                self.publish(path, data)?;
            }
            return Ok(());
        }
        for (path, data) in items {
            let tmp = tmp_path(path);
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        let mut parents = std::collections::BTreeSet::new();
        for (path, _) in items {
            std::fs::rename(tmp_path(path), path)?;
            parents.insert(path.parent().expect("publish path has a parent directory"));
        }
        for parent in parents {
            fsync_dir(parent)?;
        }
        self.metrics.publishes.add(items.len() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_faults::FaultConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dhub-persist-fsync-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn publish_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("file.bin");
        atomic_publish(&path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        assert!(!tmp_path(&path).exists(), "temp must be renamed away");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn faulted_publisher_retries_to_success() {
        let dir = tmp_dir("retry");
        let path = dir.join("obj");
        let injector = Arc::new(FaultInjector::new(FaultConfig::uniform(7, 0.5)));
        let p = Publisher::new()
            .with_faults(Some(WriteFaults { injector: injector.clone(), policy: RetryPolicy::fast(16) }));
        for i in 0..50u32 {
            let path = dir.join(format!("obj{i}"));
            p.publish(&path, &i.to_le_bytes()).unwrap();
            assert_eq!(std::fs::read(&path).unwrap(), i.to_le_bytes());
        }
        assert!(injector.stats().total() > 0, "50 % rate must fire");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn exhausted_retries_leave_no_published_file() {
        let dir = tmp_dir("exhaust");
        let path = dir.join("doomed");
        let injector = Arc::new(FaultInjector::new(FaultConfig::uniform(3, 1.0)));
        let p = Publisher::new()
            .with_faults(Some(WriteFaults { injector, policy: RetryPolicy::fast(2) }));
        let err = p.publish(&path, b"never lands").unwrap_err();
        assert!(matches!(err, PersistError::CrashedWrite(_)));
        assert!(!path.exists(), "final name must never appear");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn crash_leaves_only_tmp_debris() {
        let dir = tmp_dir("debris");
        let path = dir.join("obj");
        Publisher::crash(&path, &[0xAA; 64], FaultKind::Truncate, 1).unwrap();
        assert!(!path.exists());
        assert_eq!(std::fs::read(tmp_path(&path)).unwrap().len(), 32, "torn = half the payload");
        Publisher::crash(&path, &[0xAA; 64], FaultKind::Corrupt, 9).unwrap();
        let corrupted = std::fs::read(tmp_path(&path)).unwrap();
        assert_eq!(corrupted.len(), 64);
        assert_ne!(corrupted, vec![0xAA; 64], "one bit must differ");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn publisher_metrics_record() {
        let dir = tmp_dir("metrics");
        let reg = MetricsRegistry::new();
        let p = Publisher::new().with_metrics(&reg);
        p.publish(&dir.join("a"), b"x").unwrap();
        p.publish(&dir.join("b"), b"y").unwrap();
        assert_eq!(reg.counter_value("dhub_persist_publishes_total"), 2);
        let _ = std::fs::remove_dir_all(dir);
    }
}
