//! Property tests for the durability discipline: whatever a crash leaves
//! behind — a truncated or bit-flipped in-flight temp file, a tampered
//! published object — a reopened store never serves torn bytes, and GC
//! never collects an object something still references.

#![cfg(feature = "proptest")]

use dhub_digest::FxHashSet;
use dhub_model::Digest;
use dhub_persist::{hex_of, tmp_path, BlobStore, PersistError, Publisher};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch dir per proptest case (no external tempdir crate).
fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dhub-persist-props-{}-{n}", std::process::id()))
}

/// The published path of `digest` inside a store rooted at `root`
/// (mirrors the store's two-hex fanout layout).
fn object_path(root: &Path, digest: &Digest) -> PathBuf {
    let hex = hex_of(digest);
    root.join(&hex[..2]).join(hex)
}

fn arb_objects() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..512), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A crash mid-write leaves a torn `*.tmp` file. Reopening the store
    /// must (a) read every published object back verified, (b) report the
    /// in-flight object absent rather than serving the torn bytes, and
    /// (c) have GC sweep the debris without touching anything referenced.
    #[test]
    fn torn_inflight_writes_never_surface(
        objects in arb_objects(),
        victim in proptest::collection::vec(any::<u8>(), 2..512),
        cut_frac in 0.0f64..1.0,
        flip_bit in any::<u64>(),
        flip_not_truncate in any::<bool>(),
    ) {
        let root = scratch();
        let store = BlobStore::open(&root, Publisher::new()).unwrap();
        let mut live = FxHashSet::default();
        for obj in &objects {
            live.insert(store.put(obj).unwrap());
        }

        // Simulate the crash: the victim's temp file exists, torn — either
        // truncated at a random point or with one random bit flipped —
        // and the rename never happened.
        let victim_digest = Digest::of(&victim);
        prop_assume!(!live.contains(&victim_digest));
        let path = object_path(&root, &victim_digest);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let torn = if flip_not_truncate {
            let mut t = victim.clone();
            let bit = (flip_bit as usize) % (t.len() * 8);
            t[bit / 8] ^= 1 << (bit % 8);
            t
        } else {
            let cut = ((victim.len() as f64 * cut_frac) as usize).min(victim.len() - 1);
            victim[..cut].to_vec()
        };
        std::fs::write(tmp_path(&path), &torn).unwrap();
        drop(store);

        let store = BlobStore::open(&root, Publisher::new()).unwrap();
        // (b) the in-flight object never published: absent, not torn.
        prop_assert_eq!(store.get(&victim_digest).unwrap(), None);
        // (a) every published object reads back exactly.
        for obj in &objects {
            let d = Digest::of(obj);
            let got = store.get(&d).unwrap();
            prop_assert_eq!(got.as_deref(), Some(obj.as_slice()));
        }
        // (c) GC sweeps the temp debris, never a referenced object.
        let swept = store.gc(&live).unwrap();
        prop_assert_eq!(swept.objects, 0, "GC collected a referenced object");
        prop_assert!(swept.tmp_files >= 1, "GC missed the torn temp file");
        for obj in &objects {
            let d = Digest::of(obj);
            let got = store.get(&d).unwrap();
            prop_assert_eq!(got.as_deref(), Some(obj.as_slice()));
        }
        std::fs::remove_dir_all(&root).ok();
    }

    /// Bit-flipping a *published* object is detected on read: the store
    /// returns `Corrupt`, never the damaged bytes.
    #[test]
    fn flipped_published_object_reads_corrupt(
        objects in arb_objects(),
        pick in any::<u64>(),
        flip_bit in any::<u64>(),
    ) {
        let root = scratch();
        let store = BlobStore::open(&root, Publisher::new()).unwrap();
        let digests: Vec<Digest> = objects.iter().map(|o| store.put(o).unwrap()).collect();
        let i = (pick as usize) % objects.len();
        let path = object_path(&root, &digests[i]);
        let mut bytes = std::fs::read(&path).unwrap();
        let bit = (flip_bit as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();

        let store = BlobStore::open(&root, Publisher::new()).unwrap();
        match store.get(&digests[i]) {
            Err(PersistError::Corrupt(d)) => prop_assert_eq!(d, digests[i]),
            other => {
                // Duplicate payloads elsewhere in `objects` can't mask the
                // damage: digests are content-addressed, same digest ==
                // same file, and we damaged that file.
                prop_assert!(false, "tampered read returned {other:?}");
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }

    /// GC over an arbitrary live subset collects exactly the complement:
    /// referenced objects all survive readable, unreferenced ones are gone.
    #[test]
    fn gc_collects_exactly_the_unreferenced(
        objects in arb_objects(),
        keep_mask in proptest::collection::vec(any::<bool>(), 8..9),
    ) {
        let root = scratch();
        let store = BlobStore::open(&root, Publisher::new()).unwrap();
        let digests: Vec<Digest> = objects.iter().map(|o| store.put(o).unwrap()).collect();
        let live: FxHashSet<Digest> = digests
            .iter()
            .zip(&keep_mask)
            .filter(|(_, keep)| **keep)
            .map(|(d, _)| *d)
            .collect();
        let dead: FxHashSet<Digest> =
            digests.iter().filter(|d| !live.contains(d)).copied().collect();

        let swept = store.gc(&live).unwrap();
        prop_assert_eq!(swept.objects as usize, dead.len());
        for (obj, d) in objects.iter().zip(&digests) {
            if live.contains(d) {
                let got = store.get(d).unwrap();
                prop_assert_eq!(got.as_deref(), Some(obj.as_slice()));
            } else {
                prop_assert_eq!(store.get(d).unwrap(), None);
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
