//! Analyzer output profiles (§III-C of the paper).
//!
//! For each layer the analyzer records layer metadata, compression ratio,
//! per-directory and per-file metadata; image profiles aggregate over the
//! layer profiles referenced by the manifest.

use crate::digest::Digest;
use crate::repo::RepoName;
use crate::taxonomy::FileKind;

/// Per-file metadata inside a layer (§III-C item 4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileRecord {
    /// Path within the layer.
    pub path: String,
    /// Content digest (dedup key).
    pub digest: Digest,
    /// Classified type (by magic number).
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
}

/// Per-layer profile (§III-C items 1–4).
#[derive(Clone, Debug, PartialEq)]
pub struct LayerProfile {
    /// Digest of the compressed layer blob (the registry key).
    pub digest: Digest,
    /// Files-in-layer size: sum of contained file sizes (FLS).
    pub fls: u64,
    /// Compressed layer size (CLS).
    pub cls: u64,
    /// Number of directories.
    pub dir_count: u64,
    /// Number of regular files.
    pub file_count: u64,
    /// Maximum directory depth (root entries have depth 1).
    pub max_depth: u64,
    /// Per-file metadata.
    pub files: Vec<FileRecord>,
}

impl LayerProfile {
    /// FLS-to-CLS compression ratio (§III-C item 2). Layers whose file
    /// content is empty compress to a small non-zero tarball, so the ratio
    /// is defined as 0 when FLS is 0.
    pub fn compression_ratio(&self) -> f64 {
        if self.fls == 0 || self.cls == 0 {
            0.0
        } else {
            self.fls as f64 / self.cls as f64
        }
    }

    /// True when the layer holds no regular files (7 % of layers in the
    /// paper).
    pub fn is_empty(&self) -> bool {
        self.file_count == 0
    }
}

/// Per-image profile (§III-C).
#[derive(Clone, Debug, PartialEq)]
pub struct ImageProfile {
    /// Repository the image came from.
    pub repo: RepoName,
    /// Manifest digest.
    pub manifest_digest: Digest,
    /// Digests of the layers, base first (pointers to layer profiles).
    pub layers: Vec<Digest>,
    /// Sum of containing file sizes (FIS).
    pub fis: u64,
    /// Compressed image size: sum of compressed layer sizes (CIS).
    pub cis: u64,
    /// Total directories across layers.
    pub dir_count: u64,
    /// Total files across layers.
    pub file_count: u64,
}

impl ImageProfile {
    /// FIS-to-CIS compression ratio.
    pub fn compression_ratio(&self) -> f64 {
        if self.fis == 0 || self.cis == 0 {
            0.0
        } else {
            self.fis as f64 / self.cis as f64
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

/// Computes the directory depth of a path (number of components), the
/// metric of Fig. 7 — `usr/lib/x.so` has depth 3.
pub fn path_depth(path: &str) -> u64 {
    path.split('/').filter(|c| !c.is_empty()).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(fls: u64, cls: u64, files: u64) -> LayerProfile {
        LayerProfile {
            digest: Digest::of(&fls.to_le_bytes()),
            fls,
            cls,
            dir_count: 1,
            file_count: files,
            max_depth: 1,
            files: vec![],
        }
    }

    #[test]
    fn compression_ratio() {
        assert_eq!(layer(260, 100, 3).compression_ratio(), 2.6);
        assert_eq!(layer(0, 40, 0).compression_ratio(), 0.0);
    }

    #[test]
    fn empty_layer_detection() {
        assert!(layer(0, 32, 0).is_empty());
        assert!(!layer(10, 8, 1).is_empty());
    }

    #[test]
    fn image_ratio_and_layer_count() {
        let img = ImageProfile {
            repo: RepoName::official("nginx"),
            manifest_digest: Digest::of(b"m"),
            layers: vec![Digest::of(b"a"), Digest::of(b"b")],
            fis: 500,
            cis: 100,
            dir_count: 10,
            file_count: 50,
        };
        assert_eq!(img.compression_ratio(), 5.0);
        assert_eq!(img.layer_count(), 2);
    }

    #[test]
    fn path_depths() {
        assert_eq!(path_depth("etc"), 1);
        assert_eq!(path_depth("usr/lib/x.so"), 3);
        assert_eq!(path_depth("usr/lib/"), 2);
        assert_eq!(path_depth(""), 0);
    }
}
