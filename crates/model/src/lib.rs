//! Shared data model for the Docker Hub study.
//!
//! Everything the pipeline stages exchange lives here so that the crawler,
//! downloader, analyzer, and dedup crates agree on types:
//!
//! * [`Digest`] — sha256 content addresses in Docker's `sha256:<hex>` form,
//! * [`RepoName`] — official vs. `<user>/<name>` repository naming,
//! * [`Manifest`] — the JSON image manifest (schema v2 shape),
//! * [`taxonomy`] — the paper's three-level file-type classification
//!   (8 groups, ~45 leaf types; Fig. 13),
//! * [`profile`] — the analyzer's layer/image profiles (§III-C).

pub mod digest;
pub mod manifest;
pub mod profile;
pub mod repo;
pub mod taxonomy;

pub use digest::Digest;
pub use manifest::{LayerRef, Manifest};
pub use profile::{FileRecord, ImageProfile, LayerProfile};
pub use repo::RepoName;
pub use taxonomy::{FileKind, TypeGroup};
