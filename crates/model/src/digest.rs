//! Content digests in Docker's `sha256:<hex>` notation.

use dhub_digest::sha256::{sha256, to_hex};

/// A sha256 content address. Stored as raw bytes (32) rather than hex (64)
/// — the dedup index holds one per unique file, so size matters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Digests a byte slice.
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256(data))
    }

    /// Renders as `sha256:<hex>` (the registry wire format).
    pub fn to_docker_string(self) -> String {
        format!("sha256:{}", to_hex(&self.0))
    }

    /// Parses `sha256:<64 hex>`.
    pub fn parse(s: &str) -> Option<Digest> {
        let hex = s.strip_prefix("sha256:")?;
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).ok()?;
        }
        Some(Digest(out))
    }

    /// First 8 bytes as a u64 — a cheap pre-hashed key for sharded maps.
    pub fn prefix64(self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().unwrap())
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sha256:{}…", to_hex(&self.0[..4]))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_docker_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_digest() {
        let d = Digest::of(b"");
        assert_eq!(
            d.to_docker_string(),
            "sha256:e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn parse_roundtrip() {
        let d = Digest::of(b"layer data");
        let s = d.to_docker_string();
        assert_eq!(Digest::parse(&s), Some(d));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Digest::parse("md5:abcd").is_none());
        assert!(Digest::parse("sha256:zz").is_none());
        assert!(Digest::parse("sha256:").is_none());
        let short = "sha256:e3b0c44298fc";
        assert!(Digest::parse(short).is_none());
        let bad_char = format!("sha256:{}", "g".repeat(64));
        assert!(Digest::parse(&bad_char).is_none());
    }

    #[test]
    fn equality_and_ordering() {
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        assert_ne!(a, b);
        assert_eq!(a, Digest::of(b"a"));
        assert_eq!(a.cmp(&b), a.0.cmp(&b.0));
    }

    #[test]
    fn prefix64_distinguishes() {
        assert_ne!(Digest::of(b"x").prefix64(), Digest::of(b"y").prefix64());
    }
}
