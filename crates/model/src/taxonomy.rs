//! The paper's three-level file-type taxonomy (Fig. 13).
//!
//! Level 1 splits *commonly used* from *non-commonly used* types; level 2
//! groups common types into eight groups (EOL, source code, scripts,
//! documents, archival, image data, databases, others); level 3 is the
//! specific type. [`FileKind`] enumerates the level-3 leaves the paper
//! names, each mapping to its [`TypeGroup`].

/// Level-2 type groups (Fig. 14).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeGroup {
    /// Executables, object code, and libraries.
    Eol,
    /// Source code.
    SourceCode,
    /// Scripts.
    Scripts,
    /// Documents (text, markup, PDF, ...).
    Documents,
    /// Archives (zip/gzip, bzip2, xz, tar).
    Archival,
    /// Image data files (PNG, JPEG, ...).
    ImageData,
    /// Database files.
    Database,
    /// Everything else (including the non-commonly-used level-1 branch).
    Other,
}

impl TypeGroup {
    /// All groups in the order the paper's figures present them.
    pub const ALL: [TypeGroup; 8] = [
        TypeGroup::Eol,
        TypeGroup::SourceCode,
        TypeGroup::Scripts,
        TypeGroup::Documents,
        TypeGroup::Archival,
        TypeGroup::ImageData,
        TypeGroup::Database,
        TypeGroup::Other,
    ];

    /// Short label used in figure rows ("EOL", "SC.", "Scr.", ...).
    pub fn label(self) -> &'static str {
        match self {
            TypeGroup::Eol => "EOL",
            TypeGroup::SourceCode => "SC.",
            TypeGroup::Scripts => "Scr.",
            TypeGroup::Documents => "Doc.",
            TypeGroup::Archival => "Arch.",
            TypeGroup::ImageData => "Img.",
            TypeGroup::Database => "DB.",
            TypeGroup::Other => "Oths.",
        }
    }
}

/// Level-3 leaf types. The set covers every type the paper's §IV-C calls
/// out by name, plus `OtherBinary`/`OtherText` catch-alls.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileKind {
    // --- EOL (Fig. 16) ---
    /// ELF relocatables, shared objects, executables.
    Elf,
    /// COFF object files.
    Coff,
    /// Mach-O binaries.
    MachO,
    /// Windows PE executables ("Microsoft executables").
    PeExecutable,
    /// Python byte-compiled files (.pyc) — the bulk of "Com." in Fig. 16.
    PythonBytecode,
    /// Compiled Java classes.
    JavaClass,
    /// Compiled terminfo entries.
    TerminfoCompiled,
    /// Debian binary packages (.deb).
    DebPackage,
    /// RPM binary packages.
    RpmPackage,
    /// Static/archive libraries (.a) and misc. libraries.
    Library,
    /// Other EOL files.
    OtherEol,

    // --- Source code (Fig. 17) ---
    CSource,
    Perl5Module,
    RubyModule,
    PascalSource,
    FortranSource,
    ApplesoftBasic,
    LispScheme,

    // --- Scripts (Fig. 18) ---
    PythonScript,
    AwkScript,
    RubyScript,
    PerlScript,
    PhpScript,
    Makefile,
    M4Macro,
    NodeScript,
    TclScript,
    ShellScript,
    OtherScript,

    // --- Documents (Fig. 19) ---
    AsciiText,
    Utf8Text,
    Iso8859Text,
    XmlHtml,
    PdfPs,
    LatexDoc,
    OtherDocument,

    // --- Archival (Fig. 20) ---
    ZipGzip,
    Bzip2,
    XzArchive,
    TarArchive,
    OtherArchive,

    // --- Image data (Fig. 22) ---
    Png,
    Jpeg,
    Svg,
    Gif,
    OtherImage,

    // --- Databases (Fig. 21) ---
    BerkeleyDb,
    MysqlDb,
    SqliteDb,
    OtherDb,

    // --- Other (level-1 non-common + media etc.) ---
    /// Video files (AVI, MPEG) — mentioned in §IV-C.
    Video,
    /// Unclassifiable binary data.
    OtherBinary,
    /// Empty files (the most-duplicated "file" in the dataset, §V-B).
    Empty,
}

impl FileKind {
    /// Level-2 group of this leaf type.
    pub fn group(self) -> TypeGroup {
        use FileKind::*;
        match self {
            Elf | Coff | MachO | PeExecutable | PythonBytecode | JavaClass | TerminfoCompiled
            | DebPackage | RpmPackage | Library | OtherEol => TypeGroup::Eol,
            CSource | Perl5Module | RubyModule | PascalSource | FortranSource | ApplesoftBasic
            | LispScheme => TypeGroup::SourceCode,
            PythonScript | AwkScript | RubyScript | PerlScript | PhpScript | Makefile | M4Macro
            | NodeScript | TclScript | ShellScript | OtherScript => TypeGroup::Scripts,
            AsciiText | Utf8Text | Iso8859Text | XmlHtml | PdfPs | LatexDoc | OtherDocument => {
                TypeGroup::Documents
            }
            ZipGzip | Bzip2 | XzArchive | TarArchive | OtherArchive => TypeGroup::Archival,
            Png | Jpeg | Svg | Gif | OtherImage => TypeGroup::ImageData,
            BerkeleyDb | MysqlDb | SqliteDb | OtherDb => TypeGroup::Database,
            Video | OtherBinary | Empty => TypeGroup::Other,
        }
    }

    /// Human-readable name used in figure rows.
    pub fn label(self) -> &'static str {
        use FileKind::*;
        match self {
            Elf => "ELF",
            Coff => "COFF",
            MachO => "Mach-O",
            PeExecutable => "PE",
            PythonBytecode => "Python pyc",
            JavaClass => "Java class",
            TerminfoCompiled => "terminfo",
            DebPackage => "deb",
            RpmPackage => "rpm",
            Library => "Lib.",
            OtherEol => "other EOL",
            CSource => "C/C++",
            Perl5Module => "Perl5 module",
            RubyModule => "Ruby module",
            PascalSource => "Pascal",
            FortranSource => "Fortran",
            ApplesoftBasic => "Applesoft basic",
            LispScheme => "Lisp/Scheme",
            PythonScript => "Python",
            AwkScript => "AWK",
            RubyScript => "Ruby",
            PerlScript => "Perl",
            PhpScript => "PHP",
            Makefile => "Make",
            M4Macro => "M4",
            NodeScript => "node",
            TclScript => "Tcl",
            ShellScript => "Bash/shell",
            OtherScript => "other script",
            AsciiText => "ASCII text",
            Utf8Text => "UTF-8/16 text",
            Iso8859Text => "ISO-8859 text",
            XmlHtml => "XML/HTML/XHTML",
            PdfPs => "PDF/PS",
            LatexDoc => "LaTeX",
            OtherDocument => "other doc",
            ZipGzip => "Zip/Gzip",
            Bzip2 => "Bzip2",
            XzArchive => "XZ",
            TarArchive => "Tar",
            OtherArchive => "other archive",
            Png => "PNG",
            Jpeg => "JPEG",
            Svg => "SVG",
            Gif => "GIF",
            OtherImage => "other image",
            BerkeleyDb => "Berkeley DB",
            MysqlDb => "MySQL",
            SqliteDb => "SQLite",
            OtherDb => "other DB",
            Video => "video",
            OtherBinary => "other binary",
            Empty => "empty",
        }
    }

    /// All leaf kinds (for exhaustive iteration in reports/tests).
    pub const ALL: [FileKind; 50] = {
        use FileKind::*;
        [
            Elf, Coff, MachO, PeExecutable, PythonBytecode, JavaClass, TerminfoCompiled,
            DebPackage, RpmPackage, Library, OtherEol, CSource, Perl5Module, RubyModule,
            PascalSource, FortranSource, ApplesoftBasic, LispScheme, PythonScript, AwkScript,
            RubyScript, PerlScript, PhpScript, Makefile, M4Macro, NodeScript, TclScript,
            ShellScript, OtherScript, AsciiText, Utf8Text, Iso8859Text, XmlHtml, PdfPs, LatexDoc,
            OtherDocument, ZipGzip, Bzip2, XzArchive, TarArchive, OtherArchive, Png, Jpeg, Svg,
            Gif, OtherImage, BerkeleyDb, MysqlDb, SqliteDb, OtherDb,
        ]
    };

    /// Index into a dense per-kind table (stable across a run).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Number of enum variants (for dense tables).
    pub const COUNT: usize = FileKind::Empty as usize + 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_cover_papers_examples() {
        assert_eq!(FileKind::Elf.group(), TypeGroup::Eol);
        assert_eq!(FileKind::PythonBytecode.group(), TypeGroup::Eol);
        assert_eq!(FileKind::CSource.group(), TypeGroup::SourceCode);
        assert_eq!(FileKind::PythonScript.group(), TypeGroup::Scripts);
        assert_eq!(FileKind::AsciiText.group(), TypeGroup::Documents);
        assert_eq!(FileKind::ZipGzip.group(), TypeGroup::Archival);
        assert_eq!(FileKind::Png.group(), TypeGroup::ImageData);
        assert_eq!(FileKind::SqliteDb.group(), TypeGroup::Database);
        assert_eq!(FileKind::Empty.group(), TypeGroup::Other);
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in FileKind::ALL {
            assert!(seen.insert(k.label()), "duplicate label {}", k.label());
        }
    }

    #[test]
    fn indices_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in FileKind::ALL {
            assert!(k.index() < FileKind::COUNT);
            assert!(seen.insert(k.index()));
        }
        // Variants not in ALL (Video, OtherBinary, Empty) also fit.
        assert!(FileKind::Empty.index() < FileKind::COUNT);
        assert!(FileKind::Video.index() < FileKind::COUNT);
    }

    #[test]
    fn group_labels_match_paper() {
        assert_eq!(TypeGroup::Eol.label(), "EOL");
        assert_eq!(TypeGroup::SourceCode.label(), "SC.");
        assert_eq!(TypeGroup::Database.label(), "DB.");
        assert_eq!(TypeGroup::ALL.len(), 8);
    }
}
