//! Image manifests (Docker Registry V2 schema 2 shape).
//!
//! A manifest lists the layer digests an image is assembled from plus
//! platform parameters (§II-B). On the wire it is JSON; the digest of the
//! serialized bytes is the image's content address.

use crate::digest::Digest;
use dhub_json::Json;

/// A reference to one layer blob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerRef {
    /// Digest of the *compressed* layer tarball.
    pub digest: Digest,
    /// Compressed size in bytes (CLS).
    pub size: u64,
}

/// An image manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Always 2 in this study.
    pub schema_version: u64,
    /// Target OS (the paper's dataset is effectively all linux).
    pub os: String,
    /// Target architecture.
    pub architecture: String,
    /// Ordered layer list, base first.
    pub layers: Vec<LayerRef>,
}

impl Manifest {
    /// Creates a linux/amd64 manifest over `layers`.
    pub fn new(layers: Vec<LayerRef>) -> Manifest {
        Manifest { schema_version: 2, os: "linux".into(), architecture: "amd64".into(), layers }
    }

    /// Sum of compressed layer sizes (the paper's CIS metric).
    pub fn compressed_size(&self) -> u64 {
        self.layers.iter().map(|l| l.size).sum()
    }

    /// Serializes to canonical JSON bytes (deterministic key order).
    pub fn to_json(&self) -> String {
        let mut m = Json::obj();
        m.set("schemaVersion", self.schema_version)
            .set("mediaType", "application/vnd.docker.distribution.manifest.v2+json")
            .set("os", self.os.as_str())
            .set("architecture", self.architecture.as_str());
        let layers: Vec<Json> = self
            .layers
            .iter()
            .map(|l| {
                let mut o = Json::obj();
                o.set("mediaType", "application/vnd.docker.image.rootfs.diff.tar.gzip")
                    .set("size", l.size)
                    .set("digest", l.digest.to_docker_string());
                o
            })
            .collect();
        m.set("layers", Json::Arr(layers));
        m.to_string()
    }

    /// Parses a manifest from JSON text.
    pub fn from_json(text: &str) -> Option<Manifest> {
        let j = dhub_json::parse(text).ok()?;
        let schema_version = j.get("schemaVersion")?.as_u64()?;
        let os = j.get("os")?.as_str()?.to_string();
        let architecture = j.get("architecture")?.as_str()?.to_string();
        let layers = j
            .get("layers")?
            .as_arr()?
            .iter()
            .map(|l| {
                Some(LayerRef {
                    digest: Digest::parse(l.get("digest")?.as_str()?)?,
                    size: l.get("size")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Manifest { schema_version, os, architecture, layers })
    }

    /// Content address of the serialized manifest.
    pub fn digest(&self) -> Digest {
        Digest::of(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest::new(vec![
            LayerRef { digest: Digest::of(b"layer-0"), size: 1234 },
            LayerRef { digest: Digest::of(b"layer-1"), size: 99 },
        ])
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let text = m.to_json();
        assert_eq!(Manifest::from_json(&text), Some(m));
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(sample().digest(), sample().digest());
        let other = Manifest::new(vec![LayerRef { digest: Digest::of(b"x"), size: 1 }]);
        assert_ne!(sample().digest(), other.digest());
    }

    #[test]
    fn compressed_size_sums_layers() {
        assert_eq!(sample().compressed_size(), 1333);
        assert_eq!(Manifest::new(vec![]).compressed_size(), 0);
    }

    #[test]
    fn wire_format_fields() {
        let text = sample().to_json();
        assert!(text.contains("\"schemaVersion\":2"));
        assert!(text.contains("manifest.v2+json"));
        assert!(text.contains("diff.tar.gzip"));
        assert!(text.contains("sha256:"));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Manifest::from_json("{}").is_none());
        assert!(Manifest::from_json("not json").is_none());
        assert!(Manifest::from_json(r#"{"schemaVersion":2,"os":"linux","architecture":"amd64","layers":[{"digest":"bad","size":1}]}"#).is_none());
    }
}
