//! Repository naming.
//!
//! Docker Hub namespaces user repositories as `<username>/<repository>`;
//! official repositories (served by Docker Inc. and partners) are bare
//! `<repository>` names (§II-C). The crawler's "search for '/'" trick in
//! §III-A relies on exactly this distinction.

/// A repository name, official or user-namespaced.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RepoName {
    /// `None` for official repositories.
    pub namespace: Option<String>,
    /// Repository name proper.
    pub name: String,
}

impl RepoName {
    /// An official repository (e.g. `nginx`).
    pub fn official(name: &str) -> RepoName {
        RepoName { namespace: None, name: name.to_string() }
    }

    /// A user repository (e.g. `conjurinc/developer-quiz`).
    pub fn user(namespace: &str, name: &str) -> RepoName {
        RepoName { namespace: Some(namespace.to_string()), name: name.to_string() }
    }

    /// Parses `a/b` as a user repo, bare `a` as official.
    pub fn parse(s: &str) -> Option<RepoName> {
        if s.is_empty() {
            return None;
        }
        match s.split_once('/') {
            None => Some(RepoName::official(s)),
            Some((ns, name)) if !ns.is_empty() && !name.is_empty() && !name.contains('/') => {
                Some(RepoName::user(ns, name))
            }
            _ => None,
        }
    }

    /// True for official (partner-served) repositories.
    pub fn is_official(&self) -> bool {
        self.namespace.is_none()
    }

    /// The canonical string form.
    pub fn full(&self) -> String {
        match &self.namespace {
            Some(ns) => format!("{ns}/{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl std::fmt::Display for RepoName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.namespace {
            Some(ns) => write!(f, "{ns}/{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_official() {
        let r = RepoName::parse("nginx").unwrap();
        assert!(r.is_official());
        assert_eq!(r.full(), "nginx");
    }

    #[test]
    fn parse_user_repo() {
        let r = RepoName::parse("conjurinc/developer-quiz").unwrap();
        assert!(!r.is_official());
        assert_eq!(r.namespace.as_deref(), Some("conjurinc"));
        assert_eq!(r.to_string(), "conjurinc/developer-quiz");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(RepoName::parse("").is_none());
        assert!(RepoName::parse("/x").is_none());
        assert!(RepoName::parse("x/").is_none());
        assert!(RepoName::parse("a/b/c").is_none());
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = [RepoName::parse("b/x").unwrap(), RepoName::parse("a").unwrap()];
        v.sort();
        assert!(v[0].is_official());
    }
}
