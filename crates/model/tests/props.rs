//! Property tests for the shared data model.

#![cfg(feature = "proptest")]

use dhub_model::{Digest, LayerRef, Manifest, RepoName};
use proptest::prelude::*;

fn arb_manifest() -> impl Strategy<Value = Manifest> {
    proptest::collection::vec((any::<[u8; 8]>(), 0u64..1 << 40), 0..32).prop_map(|layers| {
        Manifest::new(
            layers
                .into_iter()
                .map(|(seed, size)| LayerRef { digest: Digest::of(&seed), size })
                .collect(),
        )
    })
}

proptest! {
    /// Manifests survive JSON round-trips exactly.
    #[test]
    fn manifest_json_roundtrip(m in arb_manifest()) {
        let text = m.to_json();
        prop_assert_eq!(Manifest::from_json(&text), Some(m));
    }

    /// Serialization is deterministic, so the manifest digest is stable.
    #[test]
    fn manifest_digest_stable(m in arb_manifest()) {
        prop_assert_eq!(m.digest(), m.digest());
        let reparsed = Manifest::from_json(&m.to_json()).unwrap();
        prop_assert_eq!(reparsed.digest(), m.digest());
    }

    /// Digest docker-string round-trips for arbitrary content.
    #[test]
    fn digest_string_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let d = Digest::of(&data);
        prop_assert_eq!(Digest::parse(&d.to_docker_string()), Some(d));
    }

    /// RepoName::parse(full()) is the identity on valid names.
    #[test]
    fn repo_name_roundtrip(ns in "[a-z][a-z0-9]{0,14}", name in "[a-z][a-z0-9_.-]{0,20}") {
        let user = RepoName::user(&ns, &name);
        prop_assert_eq!(RepoName::parse(&user.full()), Some(user));
        let official = RepoName::official(&name);
        prop_assert_eq!(RepoName::parse(&official.full()), Some(official));
    }
}
