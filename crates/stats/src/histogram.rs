//! Histograms for the paper's frequency plots (Figs. 3b, 4b, 7b, 8b, 10b).

/// Fixed-width linear histogram over `[lo, hi)` plus overflow/underflow bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(hi > lo && nbins > 0);
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let w = (self.hi - self.lo) / n as f64;
            let idx = (((x - self.lo) / w) as usize).min(n - 1);
            self.bins[idx] += 1;
        }
    }

    /// Records many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.record(x);
        }
    }

    /// Bin counts (without under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_low_edge, bin_high_edge, count)` triples.
    pub fn rows(&self) -> Vec<(f64, f64, u64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w, c))
            .collect()
    }

    /// Total recorded samples (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below `lo` / at-or-above `hi`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Index and left edge of the most frequent in-range bin.
    pub fn mode_bin(&self) -> Option<(usize, f64)> {
        let (i, &max) = self.bins.iter().enumerate().max_by_key(|(_, &c)| c)?;
        if max == 0 {
            return None;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        Some((i, self.lo + i as f64 * w))
    }
}

/// Power-of-two (log2) histogram for heavy-tailed positive quantities —
/// layer sizes span six orders of magnitude, so the paper's size plots are
/// effectively log-binned.
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    /// bins[k] counts samples in `[2^k, 2^(k+1))`; bins[0] also catches 0.
    bins: Vec<u64>,
    count: u64,
}

impl LogHistogram {
    /// Creates an empty log histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one non-negative integer sample.
    pub fn record(&mut self, x: u64) {
        let bin = if x <= 1 { 0 } else { 63 - x.leading_zeros() as usize };
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.count += 1;
    }

    /// `(range_low, range_high_exclusive, count)` rows for non-empty bins.
    /// The top bin (k = 63) reports `u64::MAX` as its (inclusive) high edge.
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| {
                if k == 0 {
                    (0, 2, c)
                } else {
                    let hi = if k >= 63 { u64::MAX } else { 1u64 << (k + 1) };
                    (1 << k, hi, c)
                }
            })
            .collect()
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.0, 0.5, 1.0, 9.99, 5.0]);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([-1.0, 2.0, 0.5]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
        let binned: u64 = h.bins().iter().sum();
        assert_eq!(binned + h.underflow() + h.overflow(), h.count());
    }

    #[test]
    fn rows_edges() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.record(1.0);
        let rows = h.rows();
        assert_eq!(rows, vec![(0.0, 2.0, 1), (2.0, 4.0, 0)]);
    }

    #[test]
    fn mode_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.extend([0.5, 1.5, 1.6, 2.5]);
        assert_eq!(h.mode_bin(), Some((1, 1.0)));
        let empty = Histogram::new(0.0, 1.0, 2);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    fn log_histogram_bins() {
        let mut h = LogHistogram::new();
        for x in [0u64, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(x);
        }
        let rows = h.rows();
        // 0 and 1 in bin [0,2); 2,3 in [2,4); 4,7 in [4,8); 8 in [8,16); 2^20.
        assert_eq!(rows[0], (0, 2, 2));
        assert_eq!(rows[1], (2, 4, 2));
        assert_eq!(rows[2], (4, 8, 2));
        assert_eq!(rows[3], (8, 16, 1));
        assert_eq!(rows[4], (1 << 20, 1 << 21, 1));
        assert_eq!(h.count(), 8);
    }
}
