//! Descriptive summary statistics, the rows EXPERIMENTS.md compares against
//! the paper's reported anchors.

use crate::cdf::Ecdf;

/// A compact description of a sample distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub median: f64,
    pub p90: f64,
    pub p99: f64,
}

impl Summary {
    /// Computes a summary from samples.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let e = Ecdf::new(samples.to_vec());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Some(Summary {
            count: samples.len(),
            min: e.min(),
            max: e.max(),
            mean,
            median: e.median(),
            p90: e.quantile(0.9),
            p99: e.quantile(0.99),
        })
    }

    /// Computes a summary from integer samples.
    pub fn of_u64(samples: impl IntoIterator<Item = u64>) -> Option<Summary> {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.4} med={:.4} mean={:.4} p90={:.4} p99={:.4} max={:.4}",
            self.count, self.min, self.median, self.mean, self.p90, self.p99, self.max
        )
    }
}

/// Gini coefficient of a non-negative sample set — the standard inequality
/// measure for skew like Fig. 8's pull counts (0 = uniform, →1 = all mass
/// on one item).
pub fn gini(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2 Σ i·x_i) / (n Σ x_i) − (n + 1)/n with 1-based ranks.
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Lorenz curve points `(population share, mass share)` at `k` knots —
/// the "what fraction of repos receive what fraction of pulls" view of the
/// popularity skew.
pub fn lorenz_curve(samples: &[f64], k: usize) -> Vec<(f64, f64)> {
    assert!(k >= 2);
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total: f64 = sorted.iter().sum();
    if sorted.is_empty() || total <= 0.0 {
        return (0..k).map(|i| (i as f64 / (k - 1) as f64, 0.0)).collect();
    }
    let mut cum = Vec::with_capacity(sorted.len());
    let mut acc = 0.0;
    for &x in &sorted {
        acc += x;
        cum.push(acc);
    }
    (0..k)
        .map(|i| {
            let p = i as f64 / (k - 1) as f64;
            let idx = ((p * sorted.len() as f64).round() as usize).min(sorted.len());
            let mass = if idx == 0 { 0.0 } else { cum[idx - 1] / total };
            (p, mass)
        })
        .collect()
}

/// Formats a byte count the way the paper does (e.g. "4.0 MB", "1.3 GB").
pub fn human_bytes(bytes: f64) -> String {
    const UNITS: [&str; 6] = ["B", "KB", "MB", "GB", "TB", "PB"];
    let mut v = bytes;
    let mut u = 0;
    while v >= 1000.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{:.0} {}", v, UNITS[u])
    } else {
        format!("{:.1} {}", v, UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_range() {
        let s = Summary::of_u64(1..=100).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p90, 90.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn gini_known_cases() {
        // Uniform distribution: no inequality.
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-9);
        // All mass on one of n items: G = (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 10.0]);
        assert!((g - 0.75).abs() < 1e-9, "{g}");
        // Empty and all-zero inputs are defined as 0.
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        // Skewed beats uniform.
        assert!(gini(&[1.0, 2.0, 4.0, 100.0]) > gini(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn lorenz_curve_shape() {
        let pts = lorenz_curve(&[1.0, 1.0, 1.0, 97.0], 5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (0.0, 0.0));
        assert!((pts[4].1 - 1.0).abs() < 1e-9);
        // Convex: mass share below population share everywhere.
        for &(p, m) in &pts {
            assert!(m <= p + 1e-9, "({p},{m})");
        }
        // The top quarter holds 97 % of mass.
        assert!(pts[3].1 < 0.05);
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(4.0 * 1024.0 * 1024.0), "4.0 MB");
        assert_eq!(human_bytes(1.3 * 1024.0 * 1024.0 * 1024.0), "1.3 GB");
    }
}
