//! Distribution samplers used by the synthetic hub generator.
//!
//! The paper's marginals are heavy-tailed: layer sizes and file sizes are
//! roughly log-normal with Pareto tails, repository popularity is Zipf-like
//! with an extra bump (Fig. 8), and file types are a weighted categorical
//! mix. Each sampler here is deterministic given the [`Rng`] stream.

use crate::rng::Rng;

/// Log-normal distribution: `exp(mu + sigma * N(0,1))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    /// Mean of the underlying normal (i.e. `ln(median)`).
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Constructs from the median and the ratio p90/median, which is how the
    /// paper reports its distributions (e.g. layer FLS: median 4 MB, p90
    /// 177 MB). For a log-normal, `p90 = median * exp(1.2816 * sigma)`.
    pub fn from_median_p90(median: f64, p90: f64) -> LogNormal {
        assert!(median > 0.0 && p90 >= median);
        let sigma = (p90 / median).ln() / 1.281_551_565_544_6;
        LogNormal { mu: median.ln(), sigma }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.normal()).exp()
    }
}

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    pub lo: f64,
    pub hi: f64,
    pub alpha: f64,
}

impl Pareto {
    /// Draws via inverse-CDF.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u = rng.next_f64();
        let (l, h, a) = (self.lo, self.hi, self.alpha);
        let la = l.powf(a);
        let ha = h.powf(a);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`. Sampling is inverse-CDF over a precomputed table, O(log n)
/// per draw; the table is built once per generator.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights; `cdf[k-1] = Σ_{i≤k} i^-s`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n` (1 is the most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cdf.last().unwrap();
        let u = rng.next_f64() * total;
        match self.cdf.binary_search_by(|x| x.partial_cmp(&u).unwrap()) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let total = *self.cdf.last().unwrap();
        let lo = if k >= 2 { self.cdf[k - 2] } else { 0.0 };
        (self.cdf[k - 1] - lo) / total
    }
}

/// Weighted categorical sampler using Walker's alias method: O(n) build,
/// O(1) per draw. Used for file-type mixes where the generator draws
/// billions of file types at full scale.
#[derive(Clone, Debug)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl Categorical {
    /// Builds from non-negative weights (not necessarily normalized).
    pub fn new(weights: &[f64]) -> Categorical {
        let n = weights.len();
        assert!(n > 0, "empty categorical");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all-zero categorical weights");
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut scaled = scaled;
        while !small.is_empty() && !large.is_empty() {
            let (s, l) = (small.pop().unwrap(), large.pop().unwrap());
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        Categorical { prob, alias }
    }

    /// Draws an index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there is exactly one category (len is never 0).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A two-component mixture of samplers, used for bimodal shapes like the
/// paper's pull-count histogram (heavy tail plus a secondary peak near 37).
#[derive(Clone, Debug)]
pub struct Mixture<A, B> {
    pub a: A,
    pub b: B,
    /// Probability of drawing from `a`.
    pub p_a: f64,
}

impl<A, B> Mixture<A, B> {
    /// Draws from `a` with probability `p_a`, else from `b`.
    pub fn sample_with(&self, rng: &mut Rng, fa: impl Fn(&A, &mut Rng) -> f64, fb: impl Fn(&B, &mut Rng) -> f64) -> f64 {
        if rng.chance(self.p_a) {
            fa(&self.a, rng)
        } else {
            fb(&self.b, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn percentile(sorted: &[f64], p: f64) -> f64 {
        sorted[((sorted.len() as f64 - 1.0) * p) as usize]
    }

    #[test]
    fn lognormal_hits_median_and_p90() {
        let d = LogNormal::from_median_p90(4.0e6, 177.0e6);
        let mut rng = Rng::new(1);
        let mut xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = percentile(&xs, 0.5);
        let p90 = percentile(&xs, 0.9);
        assert!((med / 4.0e6 - 1.0).abs() < 0.05, "median {med}");
        assert!((p90 / 177.0e6 - 1.0).abs() < 0.10, "p90 {p90}");
    }

    #[test]
    fn pareto_bounds_respected() {
        let d = Pareto { lo: 10.0, hi: 1000.0, alpha: 1.2 };
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=1000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let d = Pareto { lo: 1.0, hi: 1.0e9, alpha: 1.0 };
        let mut rng = Rng::new(3);
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        // alpha=1 on [1, 1e9]: P(X > 1000) ≈ 1e-3, median = 2, mean ≈ ln(1e9) ≈ 20.7.
        let over_1000 = xs.iter().filter(|&&x| x > 1000.0).count();
        assert!((40..250).contains(&over_1000), "tail mass off: {over_1000}");
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[xs.len() / 2];
        let p999 = sorted[(xs.len() as f64 * 0.999) as usize];
        assert!(median < 3.0, "median {median}");
        // p99.9 ≈ 1000 for alpha=1: the far tail is orders of magnitude
        // above the median (the mean itself is too noisy to assert).
        assert!(p999 > 100.0 * median, "p99.9 {p999} vs median {median}");
    }

    #[test]
    fn zipf_rank1_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = Rng::new(4);
        let mut counts = vec![0usize; 1001];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[5]);
        // Rank-1 share for s=1, n=1000 is 1/H(1000) ≈ 13.4 %.
        let share = counts[1] as f64 / 100_000.0;
        assert!((0.11..0.16).contains(&share), "rank-1 share {share}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.3);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn categorical_matches_weights() {
        let c = Categorical::new(&[1.0, 2.0, 7.0]);
        let mut rng = Rng::new(5);
        let mut counts = [0usize; 3];
        let n = 200_000;
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((shares[0] - 0.1).abs() < 0.01, "{shares:?}");
        assert!((shares[1] - 0.2).abs() < 0.01, "{shares:?}");
        assert!((shares[2] - 0.7).abs() < 0.01, "{shares:?}");
    }

    #[test]
    fn categorical_single_and_zero_weight_categories() {
        let c = Categorical::new(&[5.0]);
        let mut rng = Rng::new(6);
        assert_eq!(c.sample(&mut rng), 0);
        let c = Categorical::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1000 {
            assert_eq!(c.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn mixture_blends() {
        let m = Mixture { a: LogNormal { mu: 0.0, sigma: 0.1 }, b: LogNormal { mu: 5.0, sigma: 0.1 }, p_a: 0.3 };
        let mut rng = Rng::new(7);
        let n = 50_000;
        let low = (0..n)
            .filter(|_| m.sample_with(&mut rng, |d, r| d.sample(r), |d, r| d.sample(r)) < 10.0)
            .count();
        let share = low as f64 / n as f64;
        assert!((share - 0.3).abs() < 0.02, "share {share}");
    }
}
