//! Empirical CDFs — the primary rendering of almost every figure in the
//! paper (layer sizes, file counts, pull counts, dedup ratios, ...).

/// An empirical cumulative distribution function over f64 samples.
#[derive(Clone, Debug)]
pub struct Ecdf {
    /// Sorted samples.
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from (unsorted) samples. NaNo samples are rejected.
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: samples }
    }

    /// Builds from integer counts (the common case for file/dir counts).
    pub fn from_u64(samples: impl IntoIterator<Item = u64>) -> Ecdf {
        Ecdf::new(samples.into_iter().map(|x| x as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (the CDF value at `x`).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (p in `[0,1]`), nearest-rank method — matches how
    /// the paper reads values like "90 % of layers are smaller than 177 MB".
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!((0.0..=1.0).contains(&p));
        if p <= 0.0 {
            return self.sorted[0];
        }
        let rank = (p * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Convenience: the median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest and largest samples.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Renders the CDF as `(x, fraction ≤ x)` points at `n` evenly spaced
    /// quantiles — the series a plotting tool would consume.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        (0..n)
            .map(|i| {
                let p = i as f64 / (n - 1) as f64;
                (self.quantile(p), p)
            })
            .collect()
    }

    /// Iterates the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_set() {
        let e = Ecdf::from_u64(1..=100);
        assert_eq!(e.median(), 50.0);
        assert_eq!(e.quantile(0.9), 90.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
    }

    #[test]
    fn fraction_le() {
        let e = Ecdf::from_u64([1, 2, 2, 3]);
        assert_eq!(e.fraction_le(0.0), 0.0);
        assert_eq!(e.fraction_le(1.0), 0.25);
        assert_eq!(e.fraction_le(2.0), 0.75);
        assert_eq!(e.fraction_le(10.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 3.0, 100.0, 0.5]);
        let curve = e.curve(20);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0, "x not monotone: {curve:?}");
            assert!(w[0].1 <= w[1].1, "p not monotone");
        }
    }

    #[test]
    fn single_sample() {
        let e = Ecdf::new(vec![7.0]);
        assert_eq!(e.median(), 7.0);
        assert_eq!(e.quantile(0.99), 7.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }
}
