//! Statistics toolkit for the Docker Hub study.
//!
//! Both sides of the reproduction live here:
//!
//! * **generation** — a deterministic PRNG ([`rng::Rng`]) and the samplers
//!   ([`dist`]) the synthetic hub draws from (log-normal layer sizes, Zipf
//!   popularity, weighted categorical file-type mixes),
//! * **measurement** — empirical CDFs ([`cdf::Ecdf`]), linear/log
//!   histograms ([`histogram`]), and summary statistics ([`summary`]) that
//!   render the paper's figures.
//!
//! Determinism is a design requirement: every figure in EXPERIMENTS.md is
//! produced at a pinned seed, so the PRNG is our own (SplitMix64-seeded
//! xoshiro256**) rather than a crate whose stream might change across
//! versions.

pub mod cdf;
pub mod dist;
pub mod histogram;
pub mod rng;
pub mod summary;

pub use cdf::Ecdf;
pub use dist::{Categorical, LogNormal, Mixture, Pareto, Zipf};
pub use histogram::{Histogram, LogHistogram};
pub use rng::Rng;
pub use summary::{gini, lorenz_curve, Summary};
