//! Deterministic pseudo-random number generation.
//!
//! xoshiro256** seeded through SplitMix64, exactly as the reference
//! implementations by Blackman & Vigna specify. [`Rng::fork`] derives an
//! independent stream for parallel generation: each worker gets a child
//! generator keyed by an index, so parallel dataset generation is stable
//! regardless of thread scheduling.

/// xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// Derives an independent child stream for `index`.
    ///
    /// Children of distinct indices (and the parent) produce decorrelated
    /// streams; the parent is not advanced.
    pub fn fork(&self, index: u64) -> Rng {
        // Mix the parent state with the index through SplitMix64.
        let mut sm = self.s[0] ^ self.s[2].rotate_left(17) ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Debiased via Lemire's method.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (one value per call; the pair's
    /// second member is discarded for simplicity).
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream() {
        // xoshiro256** seeded from SplitMix64(0): first outputs of the
        // reference C implementation.
        let mut sm = 0u64;
        let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        // SplitMix64(0) reference outputs.
        assert_eq!(s[0], 0xE220A8397B1DCDAF);
        assert_eq!(s[1], 0x6E789E6AA1B965F4);
        let mut r = Rng::new(0);
        let first = r.next_u64();
        // Deterministic: same seed, same stream.
        let mut r2 = Rng::new(0);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let a: Vec<u64> = { let mut r = Rng::new(1); (0..8).map(|_| r.next_u64()).collect() };
        let b: Vec<u64> = { let mut r = Rng::new(2); (0..8).map(|_| r.next_u64()).collect() };
        assert_ne!(a, b);
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let root = Rng::new(42);
        let a1: Vec<u64> = { let mut r = root.fork(0); (0..4).map(|_| r.next_u64()).collect() };
        let a2: Vec<u64> = { let mut r = root.fork(0); (0..4).map(|_| r.next_u64()).collect() };
        let b: Vec<u64> = { let mut r = root.fork(1); (0..4).map(|_| r.next_u64()).collect() };
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = Rng::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
