//! Property tests for the statistics toolkit.

#![cfg(feature = "proptest")]

use dhub_stats::{Categorical, Ecdf, Histogram, LogHistogram, Rng, Zipf};
use proptest::prelude::*;

proptest! {
    /// The PRNG stream is a pure function of the seed.
    #[test]
    fn rng_stream_stable(seed in any::<u64>()) {
        let a: Vec<u64> = { let mut r = Rng::new(seed); (0..16).map(|_| r.next_u64()).collect() };
        let b: Vec<u64> = { let mut r = Rng::new(seed); (0..16).map(|_| r.next_u64()).collect() };
        prop_assert_eq!(a, b);
    }

    /// below(n) always lands in range.
    #[test]
    fn below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// ECDF quantiles are monotone in p and bounded by min/max.
    #[test]
    fn ecdf_quantile_monotone(mut xs in proptest::collection::vec(-1.0e9f64..1.0e9, 1..200)) {
        xs.iter_mut().for_each(|x| *x = x.round());
        let e = Ecdf::new(xs);
        let mut last = e.min();
        for i in 0..=20 {
            let q = e.quantile(i as f64 / 20.0);
            prop_assert!(q >= last);
            prop_assert!(q >= e.min() && q <= e.max());
            last = q;
        }
    }

    /// fraction_le is a proper CDF: 0 before min, 1 at max, monotone.
    #[test]
    fn ecdf_fraction_le(xs in proptest::collection::vec(0u64..10_000, 1..100)) {
        let e = Ecdf::from_u64(xs.iter().copied());
        prop_assert_eq!(e.fraction_le(e.max()), 1.0);
        prop_assert!(e.fraction_le(e.min() - 1.0) < 1.0 / e.len() as f64 + 1e-12);
        let mut last = 0.0;
        for x in (0..10_000).step_by(500) {
            let f = e.fraction_le(x as f64);
            prop_assert!(f >= last);
            last = f;
        }
    }

    /// Histogram conserves sample count across bins + out-of-range.
    #[test]
    fn histogram_conserves_count(xs in proptest::collection::vec(-100.0f64..200.0, 0..500)) {
        let mut h = Histogram::new(0.0, 100.0, 13);
        h.extend(xs.iter().copied());
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// Log histogram: every sample lands in exactly one row, and rows cover it.
    #[test]
    fn log_histogram_conserves(xs in proptest::collection::vec(any::<u64>(), 0..300)) {
        let mut h = LogHistogram::new();
        for &x in &xs { h.record(x); }
        let total: u64 = h.rows().iter().map(|&(_, _, c)| c).sum();
        prop_assert_eq!(total, xs.len() as u64);
        for &x in &xs {
            prop_assert!(h.rows().iter().any(|&(lo, hi, _)| x >= lo && (x < hi || hi == u64::MAX)));
        }
    }

    /// Categorical sampling never returns an out-of-range index and never
    /// returns a zero-weight category.
    #[test]
    fn categorical_respects_support(weights in proptest::collection::vec(0.0f64..10.0, 1..20), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights);
        let mut r = Rng::new(seed);
        for _ in 0..200 {
            let i = c.sample(&mut r);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {}", i);
        }
    }

    /// Zipf samples stay in 1..=n.
    #[test]
    fn zipf_in_range(n in 1usize..500, s in 0.1f64..2.5, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            let k = z.sample(&mut r);
            prop_assert!((1..=n).contains(&k));
        }
    }
}
