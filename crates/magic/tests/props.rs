//! Property tests: the classifier is total and stable.

#![cfg(feature = "proptest")]

use dhub_magic::classify;
use dhub_model::FileKind;
use proptest::prelude::*;

proptest! {
    /// classify() never panics, whatever the bytes or the path.
    #[test]
    fn never_panics(path in "[ -~]{0,60}", data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = classify(&path, &data);
    }

    /// Deterministic: same inputs, same kind.
    #[test]
    fn deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(classify("f", &data), classify("f", &data));
    }

    /// Empty data is always Empty regardless of name.
    #[test]
    fn empty_is_empty(path in "[ -~]{0,40}") {
        prop_assert_eq!(classify(&path, b""), FileKind::Empty);
    }

    /// Pure printable-ASCII content never classifies as a binary kind.
    #[test]
    fn ascii_prose_is_textual(words in proptest::collection::vec("[a-z]{1,10}", 1..40)) {
        let text = words.join(" ") + "\n";
        let kind = classify("notes", text.as_bytes());
        // Shebang-less prose without markup lands in the document branch.
        prop_assert_eq!(kind.group(), dhub_model::TypeGroup::Documents);
    }
}
