//! File-type identification by magic number, in the spirit of `file(1)`.
//!
//! The paper's analyzer records each file's "file type (identified by magic
//! number)" (§III-C). This crate reproduces that mechanism over the study's
//! taxonomy: content signatures first (a forged-but-valid ELF header *is*
//! an ELF file regardless of its name), then shebang interpreters, then
//! name/extension conventions, and finally text-encoding analysis for the
//! document classes. The synthetic generator forges content with real
//! signatures, so classification here independently recovers what the
//! generator intended — exactly like running `file` over extracted layers.

use dhub_model::FileKind;

/// Classifies a file from its path and contents.
pub fn classify(path: &str, data: &[u8]) -> FileKind {
    if data.is_empty() {
        return FileKind::Empty;
    }
    if let Some(k) = by_signature(data) {
        return k;
    }
    if let Some(k) = by_shebang(data) {
        return k;
    }
    if let Some(k) = by_name(path) {
        return k;
    }
    by_text_content(data)
}

/// Content signatures, checked in order of decreasing specificity.
fn by_signature(data: &[u8]) -> Option<FileKind> {
    use FileKind::*;
    let d = data;
    let starts = |sig: &[u8]| d.len() >= sig.len() && &d[..sig.len()] == sig;

    // Executables and object code.
    if starts(b"\x7fELF") {
        return Some(Elf);
    }
    if d.len() >= 4 {
        let be = u32::from_be_bytes([d[0], d[1], d[2], d[3]]);
        if matches!(be, 0xFEED_FACE | 0xFEED_FACF | 0xCEFA_EDFE | 0xCFFA_EDFE) {
            return Some(MachO);
        }
        if be == 0xCAFE_BABE && d.len() >= 8 {
            // Shared magic: Java class files carry a version ≥ 45 in bytes
            // 6..8; fat Mach-O binaries have a small architecture count.
            let minor_major = u32::from_be_bytes([d[4], d[5], d[6], d[7]]);
            return Some(if (minor_major & 0xFFFF) >= 45 { JavaClass } else { MachO });
        }
    }
    if starts(b"MZ") {
        return Some(PeExecutable);
    }
    // COFF object (i386: 0x014c, amd64: 0x8664, little-endian on disk).
    if d.len() >= 20 && (d[0] == 0x4c && d[1] == 0x01 || d[0] == 0x64 && d[1] == 0x86) {
        return Some(Coff);
    }
    // Python byte-compiled: CPython magics end with \r\n.
    if d.len() >= 4 && d[2] == b'\r' && d[3] == b'\n' {
        return Some(PythonBytecode);
    }
    // Compiled terminfo: magic 0432 (0x011A) little-endian.
    if d.len() >= 2 && d[0] == 0x1A && d[1] == 0x01 {
        return Some(TerminfoCompiled);
    }
    if starts(b"!<arch>\n") {
        // Debian packages are ar archives whose first member is
        // "debian-binary"; plain ar archives are static libraries.
        return Some(if d.len() > 21 && d[8..].starts_with(b"debian-binary") {
            DebPackage
        } else {
            Library
        });
    }
    if starts(b"\xed\xab\xee\xdb") {
        return Some(RpmPackage);
    }

    // Archives.
    if starts(b"\x1f\x8b") || starts(b"PK\x03\x04") || starts(b"PK\x05\x06") {
        return Some(ZipGzip);
    }
    if starts(b"BZh") {
        return Some(Bzip2);
    }
    if starts(b"\xfd7zXZ\x00") {
        return Some(XzArchive);
    }
    if d.len() > 262 && &d[257..262] == b"ustar" {
        return Some(TarArchive);
    }

    // Image data.
    if starts(b"\x89PNG\r\n\x1a\n") {
        return Some(Png);
    }
    if starts(b"\xff\xd8\xff") {
        return Some(Jpeg);
    }
    if starts(b"GIF87a") || starts(b"GIF89a") {
        return Some(Gif);
    }

    // Video.
    if starts(b"RIFF") && d.len() >= 12 && &d[8..12] == b"AVI " {
        return Some(Video);
    }
    if starts(b"\x00\x00\x01\xba") || starts(b"\x00\x00\x01\xb3") {
        return Some(Video);
    }

    // Databases.
    if starts(b"SQLite format 3\0") {
        return Some(SqliteDb);
    }
    // Berkeley DB: magic 0x00053162 (btree) or 0x00061561 (hash) at offset 12.
    if d.len() >= 16 {
        let m = u32::from_le_bytes([d[12], d[13], d[14], d[15]]);
        if m == 0x0005_3162 || m == 0x0006_1561 {
            return Some(BerkeleyDb);
        }
    }
    // PostgreSQL custom-format dumps (the paper's "other DB" bucket).
    if starts(b"PGDMP") {
        return Some(OtherDb);
    }
    // MySQL MyISAM index/data files.
    if starts(b"\xfe\xfe\x07") || starts(b"\xfe\xfe\x08") || starts(b"\xfe\x01\x00\x00") {
        return Some(MysqlDb);
    }

    // Documents with signatures.
    if starts(b"%PDF") || starts(b"%!PS") {
        return Some(PdfPs);
    }
    None
}

/// Shebang interpreters (`#!/usr/bin/env python`, `#!/bin/sh`, ...).
fn by_shebang(data: &[u8]) -> Option<FileKind> {
    use FileKind::*;
    if !data.starts_with(b"#!") {
        return None;
    }
    let line_end = data.iter().position(|&b| b == b'\n').unwrap_or(data.len().min(128));
    let line = std::str::from_utf8(&data[..line_end]).ok()?;
    // Interpreter is the last path component, or the argument of env.
    let mut parts = line[2..].split_whitespace();
    let first = parts.next()?;
    let interp = if first.ends_with("/env") || first == "env" {
        parts.next().unwrap_or("")
    } else {
        first.rsplit('/').next().unwrap_or(first)
    };
    let interp = interp.trim_start_matches('-');
    // Strip version suffixes: python3.9 → python.
    let base: String = interp.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
    Some(match base.as_str() {
        "python" => PythonScript,
        "sh" | "bash" | "dash" | "ash" | "zsh" | "ksh" => ShellScript,
        "perl" => PerlScript,
        "ruby" => RubyScript,
        "php" => PhpScript,
        "node" | "nodejs" => NodeScript,
        "awk" | "gawk" | "mawk" => AwkScript,
        "tclsh" | "wish" | "tcl" => TclScript,
        _ => OtherScript,
    })
}

/// Name and extension conventions (the classifier of last resort before
/// text analysis; `file(1)` likewise uses names for Makefiles and friends).
fn by_name(path: &str) -> Option<FileKind> {
    use FileKind::*;
    let name = path.rsplit('/').next().unwrap_or(path);
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "makefile" | "gnumakefile" | "makefile.am" | "makefile.in" => return Some(Makefile),
        _ => {}
    }
    let ext = lower.rsplit_once('.').map(|(_, e)| e)?;
    Some(match ext {
        "c" | "cc" | "cpp" | "cxx" | "h" | "hh" | "hpp" => CSource,
        "pm" => Perl5Module,
        "rb" => RubyModule,
        "pas" | "pp" => PascalSource,
        "f" | "f77" | "f90" | "f95" | "for" => FortranSource,
        "bas" => ApplesoftBasic,
        "lisp" | "lsp" | "scm" | "el" => LispScheme,
        "py" => PythonScript,
        "awk" => AwkScript,
        "pl" => PerlScript,
        "php" => PhpScript,
        "mk" => Makefile,
        "m4" => M4Macro,
        "js" | "mjs" => NodeScript,
        "tcl" => TclScript,
        "sh" | "bash" => ShellScript,
        "tex" | "sty" | "cls" => LatexDoc,
        "svg" => Svg,
        "html" | "htm" | "xhtml" | "xml" => XmlHtml,
        "frm" | "myd" | "myi" | "ibd" => MysqlDb,
        _ => return None,
    })
}

/// Text-encoding analysis for unclassified content, the bottom of the
/// document branch in Fig. 19.
fn by_text_content(data: &[u8]) -> FileKind {
    use FileKind::*;
    // Inspect at most a prefix, as file(1) does.
    let sample = &data[..data.len().min(8192)];

    // Markup before encoding: XML/HTML documents are also valid text.
    let head = &sample[..sample.len().min(256)];
    if let Ok(s) = std::str::from_utf8(head) {
        let t = s.trim_start();
        let tl = t.get(..t.len().min(64)).unwrap_or(t).to_ascii_lowercase();
        if tl.starts_with("<?xml") || tl.starts_with("<!doctype") || tl.starts_with("<html") || tl.starts_with("<svg") {
            return if tl.starts_with("<svg") { Svg } else { XmlHtml };
        }
        if t.starts_with("\\documentclass") || t.starts_with("\\usepackage") {
            return LatexDoc;
        }
    }

    let mut has_high = false;
    let mut has_control = false;
    for &b in sample {
        if b >= 0x80 {
            has_high = true;
        } else if b < 0x20 && !matches!(b, b'\n' | b'\r' | b'\t' | 0x0c) {
            has_control = true;
        }
    }
    if has_control {
        return OtherBinary;
    }
    if !has_high {
        return AsciiText;
    }
    if std::str::from_utf8(sample).is_ok() || utf8_truncation_ok(sample) {
        Utf8Text
    } else {
        Iso8859Text
    }
}

/// A sample cut mid-codepoint is still UTF-8: valid up to the last 3 bytes.
fn utf8_truncation_ok(sample: &[u8]) -> bool {
    match std::str::from_utf8(sample) {
        Ok(_) => true,
        Err(e) => e.error_len().is_none() && sample.len() - e.valid_up_to() < 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FileKind::*;

    #[test]
    fn empty_file() {
        assert_eq!(classify("anything", b""), Empty);
    }

    #[test]
    fn binaries_by_magic() {
        assert_eq!(classify("bin/ls", b"\x7fELF\x02\x01\x01..."), Elf);
        assert_eq!(classify("x", b"MZ\x90\x00"), PeExecutable);
        assert_eq!(classify("x", &[0xFE, 0xED, 0xFA, 0xCE, 0, 0, 0, 0]), MachO);
        assert_eq!(classify("x", &[0xCA, 0xFE, 0xBA, 0xBE, 0x00, 0x00, 0x00, 52]), JavaClass);
        assert_eq!(classify("x", &[0xCA, 0xFE, 0xBA, 0xBE, 0x00, 0x00, 0x00, 2]), MachO);
        assert_eq!(classify("m.pyc", &[0x6f, 0x0d, 0x0d, 0x0a, 0, 0, 0, 0]), PythonBytecode);
        assert_eq!(classify("x", &[0x1A, 0x01, 0, 0]), TerminfoCompiled);
        assert_eq!(classify("a.deb", b"!<arch>\ndebian-binary   xxx"), DebPackage);
        assert_eq!(classify("libx.a", b"!<arch>\nfoo.o           xxx"), Library);
        assert_eq!(classify("p.rpm", &[0xed, 0xab, 0xee, 0xdb, 3, 0]), RpmPackage);
        let mut coff = vec![0x64u8, 0x86];
        coff.extend([0u8; 30]);
        assert_eq!(classify("x.obj", &coff), Coff);
    }

    #[test]
    fn archives_by_magic() {
        assert_eq!(classify("a.gz", &[0x1f, 0x8b, 8, 0]), ZipGzip);
        assert_eq!(classify("a.zip", b"PK\x03\x04...."), ZipGzip);
        assert_eq!(classify("a.bz2", b"BZh91AY"), Bzip2);
        assert_eq!(classify("a.xz", b"\xfd7zXZ\x00\x00"), XzArchive);
        let mut tar = vec![0u8; 600];
        tar[257..262].copy_from_slice(b"ustar");
        assert_eq!(classify("a.tar", &tar), TarArchive);
    }

    #[test]
    fn images_and_video() {
        assert_eq!(classify("a.png", b"\x89PNG\r\n\x1a\n...."), Png);
        assert_eq!(classify("a.jpg", &[0xff, 0xd8, 0xff, 0xe0]), Jpeg);
        assert_eq!(classify("a.gif", b"GIF89a...."), Gif);
        assert_eq!(classify("a.avi", b"RIFF\x00\x00\x00\x00AVI LIST"), Video);
        assert_eq!(classify("a.mpg", &[0x00, 0x00, 0x01, 0xba, 0x44]), Video);
        assert_eq!(classify("img.svg", b"<svg xmlns=\"http://www.w3.org/2000/svg\">"), Svg);
    }

    #[test]
    fn databases() {
        assert_eq!(classify("db", b"SQLite format 3\0...."), SqliteDb);
        let mut bdb = vec![0u8; 20];
        bdb[12..16].copy_from_slice(&0x0005_3162u32.to_le_bytes());
        assert_eq!(classify("x.db", &bdb), BerkeleyDb);
        assert_eq!(classify("t.myi", &[0xfe, 0xfe, 0x07, 0x01]), MysqlDb);
        assert_eq!(classify("t.frm", &[0xfe, 0x01, 0x00, 0x00, 9]), MysqlDb);
    }

    #[test]
    fn shebangs() {
        assert_eq!(classify("run", b"#!/usr/bin/python3.9\nprint()"), PythonScript);
        assert_eq!(classify("run", b"#!/usr/bin/env python\n"), PythonScript);
        assert_eq!(classify("run", b"#!/bin/sh\nset -e\n"), ShellScript);
        assert_eq!(classify("run", b"#!/bin/bash\n"), ShellScript);
        assert_eq!(classify("run", b"#!/usr/bin/perl -w\n"), PerlScript);
        assert_eq!(classify("run", b"#!/usr/bin/ruby\n"), RubyScript);
        assert_eq!(classify("run", b"#!/usr/bin/env node\n"), NodeScript);
        assert_eq!(classify("run", b"#!/usr/bin/awk -f\n"), AwkScript);
        assert_eq!(classify("run", b"#!/usr/bin/tclsh\n"), TclScript);
        assert_eq!(classify("run", b"#!/usr/bin/php\n"), PhpScript);
        assert_eq!(classify("run", b"#!/opt/weird/interp\n"), OtherScript);
    }

    #[test]
    fn names_and_extensions() {
        assert_eq!(classify("src/main.c", b"int main(void) { return 0; }\n"), CSource);
        assert_eq!(classify("inc/util.hpp", b"// header\n"), CSource);
        assert_eq!(classify("lib/Foo.pm", b"package Foo;\n"), Perl5Module);
        assert_eq!(classify("app/model.rb", b"class Model\nend\n"), RubyModule);
        assert_eq!(classify("Makefile", b"all:\n\tcc -o x x.c\n"), Makefile);
        assert_eq!(classify("conf.m4", b"AC_INIT\n"), M4Macro);
        assert_eq!(classify("index.js", b"module.exports = 1;\n"), NodeScript);
        assert_eq!(classify("doc.tex", b"\\section{x}\n"), LatexDoc);
        assert_eq!(classify("a/b/page.html", b"<div>not at start</div>"), XmlHtml);
        assert_eq!(classify("f.f90", b"program x\nend\n"), FortranSource);
        assert_eq!(classify("s.scm", b"(define (f x) x)\n"), LispScheme);
    }

    #[test]
    fn shebang_beats_extension() {
        // A .rb file with a shebang is a Ruby *script* (Fig. 18), not module.
        assert_eq!(classify("tool.rb", b"#!/usr/bin/ruby\nputs 1\n"), RubyScript);
    }

    #[test]
    fn text_encodings() {
        assert_eq!(classify("README", b"plain ascii text\nwith lines\n"), AsciiText);
        assert_eq!(classify("notes", "héllo wörld — utf8\n".as_bytes()), Utf8Text);
        assert_eq!(classify("latin1", &[b'c', b'a', b'f', 0xE9, b'\n']), Iso8859Text);
        assert_eq!(classify("doc.xml.bak", b"<?xml version=\"1.0\"?><a/>"), XmlHtml);
        assert_eq!(classify("page", b"<!DOCTYPE html><html></html>"), XmlHtml);
        assert_eq!(classify("paper", b"\\documentclass{article}"), LatexDoc);
        assert_eq!(classify("doc.pdf", b"%PDF-1.4\n"), PdfPs);
    }

    #[test]
    fn unclassifiable_binary() {
        assert_eq!(classify("blob", &[0x00, 0x01, 0x02, 0x03, 0xFF]), OtherBinary);
    }

    #[test]
    fn utf8_cut_mid_codepoint_still_utf8() {
        let mut text = "日本語のテキスト".as_bytes().to_vec();
        text.truncate(text.len() - 1); // cut inside the last codepoint
        assert_eq!(classify("t", &text), Utf8Text);
    }

    #[test]
    fn signature_beats_name() {
        // An ELF named `script.py` is still an ELF.
        assert_eq!(classify("script.py", b"\x7fELF\x02\x01"), Elf);
    }
}
