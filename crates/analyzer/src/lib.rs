//! The analyzer (§III-C of the paper).
//!
//! Takes downloaded compressed layer blobs, decompresses and extracts each
//! tarball, walks the entries, and produces the paper's two profile kinds:
//!
//! * **layer profiles** — digest, FLS (sum of contained file sizes), CLS
//!   (compressed blob size), directory count, file count, maximum
//!   directory depth, and per-file metadata (name, sha256 digest, type by
//!   magic number, size),
//! * **image profiles** — manifest-driven aggregation over the referenced
//!   layer profiles (FIS, CIS, total file/dir counts).
//!
//! Layers are analyzed in parallel; each layer is independent.
//!
//! # The fused hot path
//!
//! [`analyze_layer_with`] performs the whole per-layer pass in one sweep:
//! the blob inflates into a reusable [`Scratch`] buffer, the tar is walked
//! zero-copy with [`TarView`], and each file is hashed exactly once — the
//! digest and the borrowed payload are handed to a caller-supplied sink so
//! downstream consumers (the dedup store) never re-decompress or re-hash.
//! [`analyze_layer_reference`] keeps the original allocate-per-layer
//! implementation as the golden model the equivalence tests compare
//! against.

use dhub_compress::{gzip_decompress_into, gzip_decompress_reference};
use dhub_digest::FxHashMap;
use dhub_model::{
    profile::path_depth, Digest, FileRecord, ImageProfile, LayerProfile, RepoName,
};
use dhub_obs::{Counter, MetricsRegistry};
use dhub_par::Scratch;
use dhub_tar::{read_archive, EntryKind, EntryView, EntryViewKind, TarView};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Analysis errors for a single layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalyzeError {
    /// Blob is not a valid gzip member.
    BadGzip(String),
    /// Decompressed payload is not a valid tar archive.
    BadTar(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::BadGzip(e) => write!(f, "layer gunzip failed: {e}"),
            AnalyzeError::BadTar(e) => write!(f, "layer untar failed: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Analyzes one compressed layer blob into a [`LayerProfile`].
///
/// Convenience wrapper over [`analyze_layer_scratch`] with a throwaway
/// arena; batch callers should thread a per-worker [`Scratch`] through
/// instead so the decompression buffer is reused across layers.
pub fn analyze_layer(digest: Digest, blob: &[u8]) -> Result<LayerProfile, AnalyzeError> {
    let mut scratch = Scratch::new();
    analyze_layer_scratch(digest, blob, &mut scratch)
}

/// Analyzes one layer using a caller-provided scratch arena.
pub fn analyze_layer_scratch(
    digest: Digest,
    blob: &[u8],
    scratch: &mut Scratch,
) -> Result<LayerProfile, AnalyzeError> {
    analyze_layer_with(digest, blob, scratch, |_, _| {})
}

/// The fused single-pass analysis: inflate → tar walk → hash, one sweep.
///
/// The blob decompresses into `scratch`'s buffer (reused across calls) and
/// the tar is iterated zero-copy. For every entry the `sink` is invoked
/// with the borrowed [`EntryView`]; for regular files it also receives the
/// content digest and payload slice, both already computed for the
/// profile, so a consumer ingesting files does not hash or copy anything a
/// second time. Sink calls made before a tar parse error are discarded
/// work — the function returns `Err` and the caller must not commit them.
pub fn analyze_layer_with<'s, F>(
    digest: Digest,
    blob: &[u8],
    scratch: &'s mut Scratch,
    mut sink: F,
) -> Result<LayerProfile, AnalyzeError>
where
    F: FnMut(&EntryView<'s>, Option<(Digest, &'s [u8])>),
{
    let buf = scratch.tar_buf();
    gzip_decompress_into(blob, buf).map_err(|e| AnalyzeError::BadGzip(e.to_string()))?;
    let tar: &'s [u8] = buf;

    // Directory seeds: explicit dir entries plus the *immediate* parent of
    // every file/link. Ancestor expansion happens once after the walk
    // (each seed's component prefixes cover the full ancestor chain), not
    // per entry — the old per-entry `collect_ancestors` walk re-derived
    // the same ancestors for every file in a deep directory.
    let mut seed_dirs: HashSet<String> = HashSet::new();
    let mut files = Vec::new();
    let mut fls = 0u64;
    let mut max_depth = 0u64;

    for entry in TarView::new(tar) {
        let entry = entry.map_err(|e| AnalyzeError::BadTar(e.to_string()))?;
        let path = entry.path.trim_end_matches('/');
        max_depth = max_depth.max(path_depth(path));
        match entry.kind {
            EntryViewKind::Dir => {
                if !seed_dirs.contains(path) {
                    seed_dirs.insert(path.to_string());
                }
                sink(&entry, None);
            }
            EntryViewKind::File(data) => {
                seed_parent(path, &mut seed_dirs);
                fls += data.len() as u64;
                let file_digest = Digest::of(data);
                files.push(FileRecord {
                    path: path.to_string(),
                    digest: file_digest,
                    kind: dhub_magic::classify(path, data),
                    size: data.len() as u64,
                });
                sink(&entry, Some((file_digest, data)));
            }
            EntryViewKind::Symlink(_) | EntryViewKind::Hardlink(_) => {
                seed_parent(path, &mut seed_dirs);
                sink(&entry, None);
            }
        }
    }

    Ok(LayerProfile {
        digest,
        fls,
        cls: blob.len() as u64,
        dir_count: expand_dirs(&seed_dirs).len() as u64,
        file_count: files.len() as u64,
        max_depth,
        files,
    })
}

/// Records `path`'s immediate parent directory as a seed.
fn seed_parent(path: &str, seeds: &mut HashSet<String>) {
    if let Some(pos) = path.rfind('/') {
        let parent = &path[..pos];
        if !seeds.contains(parent) {
            seeds.insert(parent.to_string());
        }
    }
}

/// Expands directory seeds to the full implied set: every seed verbatim
/// plus each of its clean component prefixes (parents exist even when the
/// tar omits their entries, which is common in real layers).
fn expand_dirs(seeds: &HashSet<String>) -> HashSet<String> {
    let mut all: HashSet<String> = HashSet::with_capacity(seeds.len() * 2);
    for d in seeds {
        let mut prefix = String::new();
        for comp in d.split('/').filter(|c| !c.is_empty()) {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(comp);
            if !all.contains(&prefix) {
                all.insert(prefix.clone());
            }
        }
        if !all.contains(d) {
            all.insert(d.clone());
        }
    }
    all
}

/// Golden-model analysis: the original allocate-per-layer implementation
/// (owned decompression buffer, owned tar entries, per-entry ancestor
/// walk). The equivalence tests assert [`analyze_layer`] produces
/// byte-identical profiles; keep this in sync with nothing — it is the
/// frozen baseline.
pub fn analyze_layer_reference(
    digest: Digest,
    blob: &[u8],
) -> Result<LayerProfile, AnalyzeError> {
    let tar = gzip_decompress_reference(blob).map_err(|e| AnalyzeError::BadGzip(e.to_string()))?;
    let entries = read_archive(&tar).map_err(|e| AnalyzeError::BadTar(e.to_string()))?;

    let mut dirs: HashSet<&str> = HashSet::new();
    let mut files = Vec::new();
    let mut fls = 0u64;
    let mut max_depth = 0u64;

    for entry in &entries {
        let path = entry.path.trim_end_matches('/');
        max_depth = max_depth.max(path_depth(path));
        match &entry.kind {
            EntryKind::Dir => {
                dirs.insert(path);
            }
            EntryKind::File(data) => {
                collect_ancestors(path, &mut dirs);
                fls += data.len() as u64;
                files.push(FileRecord {
                    path: path.to_string(),
                    digest: Digest::of(data),
                    kind: dhub_magic::classify(path, data),
                    size: data.len() as u64,
                });
            }
            EntryKind::Symlink(_) | EntryKind::Hardlink(_) => {
                collect_ancestors(path, &mut dirs);
            }
        }
    }
    let explicit: Vec<&str> = dirs.iter().copied().collect();
    let mut all_dirs: HashSet<String> = explicit.iter().map(|s| s.to_string()).collect();
    for d in explicit {
        let mut prefix = String::new();
        for comp in d.split('/').filter(|c| !c.is_empty()) {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(comp);
            all_dirs.insert(prefix.clone());
        }
    }

    Ok(LayerProfile {
        digest,
        fls,
        cls: blob.len() as u64,
        dir_count: all_dirs.len() as u64,
        file_count: files.len() as u64,
        max_depth,
        files,
    })
}

fn collect_ancestors<'a>(path: &'a str, dirs: &mut HashSet<&'a str>) {
    let mut end = path.len();
    while let Some(pos) = path[..end].rfind('/') {
        dirs.insert(&path[..pos]);
        end = pos;
    }
}

/// Handles to the `dhub_analyze_*` counters, shared by every analysis
/// entry point (batch, streaming stage, fused ingest) so the observability
/// gate can reconcile one set of names no matter which path ran.
pub struct AnalyzeCounters {
    layers: Counter,
    files: Counter,
    errors: Counter,
    /// Compressed input consumed, summed over successfully analyzed layers
    /// (Σ cls — reconciles with the report's "layer bytes analyzed").
    bytes: Counter,
    /// Decompressed tar bytes produced for those layers.
    tar_bytes: Counter,
    /// Wall-clock nanoseconds spent inside per-layer analysis.
    busy_ns: Counter,
}

impl AnalyzeCounters {
    /// Binds the counters on `obs`.
    pub fn on(obs: &MetricsRegistry) -> AnalyzeCounters {
        AnalyzeCounters {
            layers: obs.counter("dhub_analyze_layers_total"),
            files: obs.counter("dhub_analyze_files_total"),
            errors: obs.counter("dhub_analyze_errors_total"),
            bytes: obs.counter("dhub_analyze_bytes_total"),
            tar_bytes: obs.counter("dhub_analyze_tar_bytes_total"),
            busy_ns: obs.counter("dhub_analyze_busy_ns_total"),
        }
    }

    /// Records one successfully analyzed layer.
    pub fn record_ok(&self, profile: &LayerProfile, tar_len: usize) {
        self.layers.inc();
        self.files.add(profile.file_count);
        self.bytes.add(profile.cls);
        self.tar_bytes.add(tar_len as u64);
    }

    /// Records one failed layer.
    pub fn record_err(&self) {
        self.errors.inc();
    }

    /// Records wall-clock time spent analyzing (any outcome).
    pub fn record_busy(&self, elapsed: std::time::Duration) {
        self.busy_ns.add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Outcome of analyzing a set of layers.
pub struct AnalysisResult {
    /// Successfully analyzed layer profiles, keyed by digest.
    pub layers: FxHashMap<Digest, LayerProfile>,
    /// Layers that failed to decode.
    pub errors: Vec<(Digest, AnalyzeError)>,
}

/// Analyzes all layers in parallel.
pub fn analyze_all(layers: &[(Digest, Arc<Vec<u8>>)], threads: usize) -> AnalysisResult {
    analyze_all_obs(layers, threads, &MetricsRegistry::new())
}

/// [`analyze_all`], recording the `dhub_analyze_*` counters into `obs` as
/// workers finish layers (live progress, not end-of-run). Each worker
/// reuses its thread-local scratch arena across the layers it claims.
pub fn analyze_all_obs(
    layers: &[(Digest, Arc<Vec<u8>>)],
    threads: usize,
    obs: &MetricsRegistry,
) -> AnalysisResult {
    let counters = AnalyzeCounters::on(obs);
    let results = dhub_par::par_map(threads, layers, |(digest, blob)| {
        let start = Instant::now();
        let r = dhub_par::with_scratch(|scratch| {
            let r = analyze_layer_scratch(*digest, blob, scratch);
            match &r {
                Ok(p) => counters.record_ok(p, scratch.tar_len()),
                Err(_) => counters.record_err(),
            }
            r
        });
        counters.record_busy(start.elapsed());
        (*digest, r)
    });
    let mut map = FxHashMap::default();
    let mut errors = Vec::new();
    for (digest, r) in results {
        match r {
            Ok(profile) => {
                map.insert(digest, profile);
            }
            Err(e) => errors.push((digest, e)),
        }
    }
    AnalysisResult { layers: map, errors }
}

/// A downloaded image reference the aggregator needs (repo + manifest).
pub struct ImageInput {
    pub repo: RepoName,
    pub manifest_digest: Digest,
    /// `(layer digest, compressed size)` pairs from the manifest.
    pub layers: Vec<(Digest, u64)>,
}

/// Builds image profiles by aggregating layer profiles per manifest
/// (§III-C: the image profile holds pointers to its layer profiles).
pub fn image_profiles(
    images: &[ImageInput],
    layers: &FxHashMap<Digest, LayerProfile>,
) -> Vec<ImageProfile> {
    images
        .iter()
        .map(|img| {
            let mut fis = 0u64;
            let mut cis = 0u64;
            let mut file_count = 0u64;
            let mut dir_count = 0u64;
            for (d, cls) in &img.layers {
                cis += cls;
                if let Some(lp) = layers.get(d) {
                    fis += lp.fls;
                    file_count += lp.file_count;
                    dir_count += lp.dir_count;
                }
            }
            ImageProfile {
                repo: img.repo.clone(),
                manifest_digest: img.manifest_digest,
                layers: img.layers.iter().map(|(d, _)| *d).collect(),
                fis,
                cis,
                dir_count,
                file_count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_compress::{gzip_compress, CompressOptions};
    use dhub_model::FileKind;
    use dhub_tar::{write_archive, TarEntry};

    fn layer_blob(entries: &[TarEntry]) -> (Digest, Vec<u8>) {
        let tar = write_archive(entries);
        let blob = gzip_compress(&tar, &CompressOptions::fast());
        (Digest::of(&blob), blob)
    }

    #[test]
    fn profiles_simple_layer() {
        let (digest, blob) = layer_blob(&[
            TarEntry::dir("usr"),
            TarEntry::dir("usr/bin"),
            TarEntry::file("usr/bin/tool.py", b"#!/usr/bin/env python\nprint(1)\n".to_vec()),
            TarEntry::file("etc/conf", b"plain text config\n".to_vec()),
        ]);
        let p = analyze_layer(digest, &blob).unwrap();
        assert_eq!(p.file_count, 2);
        // usr, usr/bin, etc.
        assert_eq!(p.dir_count, 3);
        assert_eq!(p.max_depth, 3);
        assert_eq!(p.fls, 31 + 18);
        assert_eq!(p.cls, blob.len() as u64);
        assert!(p.compression_ratio() > 0.0);
        let kinds: Vec<FileKind> = p.files.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FileKind::PythonScript));
        assert!(kinds.contains(&FileKind::AsciiText));
    }

    #[test]
    fn implied_parent_dirs_counted() {
        let (digest, blob) =
            layer_blob(&[TarEntry::file("a/b/c/file.txt", b"text content here\n".to_vec())]);
        let p = analyze_layer(digest, &blob).unwrap();
        assert_eq!(p.dir_count, 3, "a, a/b, a/b/c");
        assert_eq!(p.max_depth, 4);
    }

    #[test]
    fn empty_layer_profile() {
        let (digest, blob) = layer_blob(&[]);
        let p = analyze_layer(digest, &blob).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.fls, 0);
        assert_eq!(p.dir_count, 0);
        assert!(p.cls > 0);
    }

    #[test]
    fn file_digests_enable_dedup() {
        let same = b"identical content".to_vec();
        let (digest, blob) = layer_blob(&[
            TarEntry::file("a/x", same.clone()),
            TarEntry::file("b/y", same.clone()),
            TarEntry::file("c/z", b"different".to_vec()),
        ]);
        let p = analyze_layer(digest, &blob).unwrap();
        assert_eq!(p.files[0].digest, p.files[1].digest);
        assert_ne!(p.files[0].digest, p.files[2].digest);
    }

    #[test]
    fn corrupt_blob_reports_error() {
        let err = analyze_layer(Digest::of(b"x"), b"not gzip at all").unwrap_err();
        assert!(matches!(err, AnalyzeError::BadGzip(_)));
    }

    #[test]
    fn corrupt_tar_reports_error() {
        let garbage = gzip_compress(&[0xAAu8; 700], &CompressOptions::fast());
        let err = analyze_layer(Digest::of(b"x"), &garbage).unwrap_err();
        assert!(matches!(err, AnalyzeError::BadTar(_)));
    }

    #[test]
    fn fused_matches_reference() {
        let long = format!("{}/file.bin", "deep/".repeat(60).trim_end_matches('/'));
        let (digest, blob) = layer_blob(&[
            TarEntry::dir("usr/"),
            TarEntry::dir("usr/bin/"),
            TarEntry::file("usr/bin/bash", b"\x7fELF fake".to_vec()),
            TarEntry::file("empty", Vec::new()),
            TarEntry::symlink("usr/bin/sh", "bash"),
            TarEntry::hardlink("usr/bin/rbash", "usr/bin/bash"),
            TarEntry::file(&long, vec![0xAB; 1234]),
        ]);
        let fast = analyze_layer(digest, &blob).unwrap();
        let golden = analyze_layer_reference(digest, &blob).unwrap();
        assert_eq!(fast, golden);
    }

    #[test]
    fn reference_agrees_on_errors() {
        for blob in [&b"not gzip at all"[..], &gzip_compress(&[0xAA; 700], &CompressOptions::fast())[..]]
        {
            let fast = analyze_layer(Digest::of(b"x"), blob).unwrap_err();
            let golden = analyze_layer_reference(Digest::of(b"x"), blob).unwrap_err();
            assert_eq!(
                std::mem::discriminant(&fast),
                std::mem::discriminant(&golden),
                "fast={fast:?} golden={golden:?}"
            );
        }
    }

    #[test]
    fn sink_sees_every_entry_and_file_digests() {
        let (digest, blob) = layer_blob(&[
            TarEntry::dir("d/"),
            TarEntry::file("d/f", b"payload".to_vec()),
            TarEntry::symlink("d/l", "f"),
        ]);
        let mut scratch = Scratch::new();
        let mut seen = Vec::new();
        let p = analyze_layer_with(digest, &blob, &mut scratch, |entry, file| {
            seen.push((entry.path.to_string(), file.map(|(d, data)| (d, data.to_vec()))));
        })
        .unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], ("d/".to_string(), None));
        assert_eq!(
            seen[1],
            ("d/f".to_string(), Some((Digest::of(b"payload"), b"payload".to_vec())))
        );
        assert_eq!(seen[2], ("d/l".to_string(), None));
        assert_eq!(p.files[0].digest, Digest::of(b"payload"));
    }

    #[test]
    fn scratch_stops_growing_after_warmup() {
        let entries: Vec<TarEntry> =
            (0..20).map(|i| TarEntry::file(&format!("f{i}"), vec![i as u8; 4096])).collect();
        let blobs: Vec<(Digest, Vec<u8>)> =
            (0..8).map(|_| layer_blob(&entries)).collect();
        let mut scratch = Scratch::new();
        // Warmup: first layer may grow the buffer.
        analyze_layer_scratch(blobs[0].0, &blobs[0].1, &mut scratch).unwrap();
        let warm = scratch.stats();
        for (d, b) in &blobs[1..] {
            analyze_layer_scratch(*d, b, &mut scratch).unwrap();
        }
        let end = scratch.stats();
        assert_eq!(end.grows, warm.grows, "decompression buffer grew after warmup");
        assert_eq!(end.acquires, warm.acquires + (blobs.len() - 1) as u64);
    }

    #[test]
    fn analyze_all_partitions_errors() {
        let (d1, b1) = layer_blob(&[TarEntry::file("f", b"data".to_vec())]);
        let bad = (Digest::of(b"bad"), Arc::new(b"junk".to_vec()));
        let layers = vec![(d1, Arc::new(b1)), bad];
        let res = analyze_all(&layers, 2);
        assert_eq!(res.layers.len(), 1);
        assert_eq!(res.errors.len(), 1);
        assert!(res.layers.contains_key(&d1));
    }

    #[test]
    fn obs_counters_track_analysis() {
        let (d1, b1) = layer_blob(&[
            TarEntry::file("a", b"one".to_vec()),
            TarEntry::file("b", b"two".to_vec()),
        ]);
        let (d2, b2) = layer_blob(&[TarEntry::file("c", b"three".to_vec())]);
        let bad = (Digest::of(b"bad"), Arc::new(b"junk".to_vec()));
        let cls_ok = (b1.len() + b2.len()) as u64;
        let tar_ok = (dhub_compress::gzip_decompress(&b1).unwrap().len()
            + dhub_compress::gzip_decompress(&b2).unwrap().len()) as u64;
        let layers = vec![(d1, Arc::new(b1)), (d2, Arc::new(b2)), bad];
        let obs = MetricsRegistry::new();
        let res = analyze_all_obs(&layers, 2, &obs);
        assert_eq!(obs.counter_value("dhub_analyze_layers_total"), res.layers.len() as u64);
        assert_eq!(obs.counter_value("dhub_analyze_files_total"), 3);
        assert_eq!(obs.counter_value("dhub_analyze_errors_total"), res.errors.len() as u64);
        assert_eq!(
            obs.counter_value("dhub_analyze_bytes_total"),
            cls_ok,
            "bytes counter must equal the summed cls of analyzed layers"
        );
        assert_eq!(obs.counter_value("dhub_analyze_tar_bytes_total"), tar_ok);
    }

    #[test]
    fn image_profile_aggregates() {
        let (d1, b1) = layer_blob(&[TarEntry::file("a/f1", vec![1; 100])]);
        let (d2, b2) = layer_blob(&[
            TarEntry::file("b/f2", vec![2; 50]),
            TarEntry::file("b/f3", vec![3; 25]),
        ]);
        let res = analyze_all(&[(d1, Arc::new(b1.clone())), (d2, Arc::new(b2.clone()))], 2);
        let input = ImageInput {
            repo: RepoName::official("t"),
            manifest_digest: Digest::of(b"m"),
            layers: vec![(d1, b1.len() as u64), (d2, b2.len() as u64)],
        };
        let profiles = image_profiles(&[input], &res.layers);
        let img = &profiles[0];
        assert_eq!(img.fis, 175);
        assert_eq!(img.cis, (b1.len() + b2.len()) as u64);
        assert_eq!(img.file_count, 3);
        assert_eq!(img.dir_count, 2);
        assert_eq!(img.layer_count(), 2);
    }
}
