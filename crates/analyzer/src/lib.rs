//! The analyzer (§III-C of the paper).
//!
//! Takes downloaded compressed layer blobs, decompresses and extracts each
//! tarball, walks the entries, and produces the paper's two profile kinds:
//!
//! * **layer profiles** — digest, FLS (sum of contained file sizes), CLS
//!   (compressed blob size), directory count, file count, maximum
//!   directory depth, and per-file metadata (name, sha256 digest, type by
//!   magic number, size),
//! * **image profiles** — manifest-driven aggregation over the referenced
//!   layer profiles (FIS, CIS, total file/dir counts).
//!
//! Layers are analyzed in parallel; each layer is independent.

use dhub_compress::gzip_decompress;
use dhub_digest::FxHashMap;
use dhub_model::{
    profile::path_depth, Digest, FileRecord, ImageProfile, LayerProfile, RepoName,
};
use dhub_obs::MetricsRegistry;
use dhub_tar::{read_archive, EntryKind};
use std::collections::HashSet;
use std::sync::Arc;

/// Analysis errors for a single layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalyzeError {
    /// Blob is not a valid gzip member.
    BadGzip(String),
    /// Decompressed payload is not a valid tar archive.
    BadTar(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::BadGzip(e) => write!(f, "layer gunzip failed: {e}"),
            AnalyzeError::BadTar(e) => write!(f, "layer untar failed: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Analyzes one compressed layer blob into a [`LayerProfile`].
pub fn analyze_layer(digest: Digest, blob: &[u8]) -> Result<LayerProfile, AnalyzeError> {
    let tar = gzip_decompress(blob).map_err(|e| AnalyzeError::BadGzip(e.to_string()))?;
    let entries = read_archive(&tar).map_err(|e| AnalyzeError::BadTar(e.to_string()))?;

    let mut dirs: HashSet<&str> = HashSet::new();
    let mut files = Vec::new();
    let mut fls = 0u64;
    let mut max_depth = 0u64;

    for entry in &entries {
        let path = entry.path.trim_end_matches('/');
        max_depth = max_depth.max(path_depth(path));
        match &entry.kind {
            EntryKind::Dir => {
                dirs.insert(path);
            }
            EntryKind::File(data) => {
                // Parent directories exist even when the tar omits their
                // entries (common in real layers).
                collect_ancestors(path, &mut dirs);
                fls += data.len() as u64;
                files.push(FileRecord {
                    path: path.to_string(),
                    digest: Digest::of(data),
                    kind: dhub_magic::classify(path, data),
                    size: data.len() as u64,
                });
            }
            EntryKind::Symlink(_) | EntryKind::Hardlink(_) => {
                collect_ancestors(path, &mut dirs);
            }
        }
    }
    // Directory entries also imply their ancestors.
    let explicit: Vec<&str> = dirs.iter().copied().collect();
    let mut all_dirs: HashSet<String> = explicit.iter().map(|s| s.to_string()).collect();
    for d in explicit {
        let mut prefix = String::new();
        for comp in d.split('/').filter(|c| !c.is_empty()) {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(comp);
            all_dirs.insert(prefix.clone());
        }
    }

    Ok(LayerProfile {
        digest,
        fls,
        cls: blob.len() as u64,
        dir_count: all_dirs.len() as u64,
        file_count: files.len() as u64,
        max_depth,
        files,
    })
}

fn collect_ancestors<'a>(path: &'a str, dirs: &mut HashSet<&'a str>) {
    let mut end = path.len();
    while let Some(pos) = path[..end].rfind('/') {
        dirs.insert(&path[..pos]);
        end = pos;
    }
}

/// Outcome of analyzing a set of layers.
pub struct AnalysisResult {
    /// Successfully analyzed layer profiles, keyed by digest.
    pub layers: FxHashMap<Digest, LayerProfile>,
    /// Layers that failed to decode.
    pub errors: Vec<(Digest, AnalyzeError)>,
}

/// Analyzes all layers in parallel.
pub fn analyze_all(layers: &[(Digest, Arc<Vec<u8>>)], threads: usize) -> AnalysisResult {
    analyze_all_obs(layers, threads, &MetricsRegistry::new())
}

/// [`analyze_all`], recording `dhub_analyze_{layers,files,errors}_total`
/// into `obs` as workers finish layers (live progress, not end-of-run).
pub fn analyze_all_obs(
    layers: &[(Digest, Arc<Vec<u8>>)],
    threads: usize,
    obs: &MetricsRegistry,
) -> AnalysisResult {
    let c_layers = obs.counter("dhub_analyze_layers_total");
    let c_files = obs.counter("dhub_analyze_files_total");
    let c_errors = obs.counter("dhub_analyze_errors_total");
    let results = dhub_par::par_map(threads, layers, |(digest, blob)| {
        let r = analyze_layer(*digest, blob);
        match &r {
            Ok(p) => {
                c_layers.inc();
                c_files.add(p.file_count);
            }
            Err(_) => c_errors.inc(),
        }
        (*digest, r)
    });
    let mut map = FxHashMap::default();
    let mut errors = Vec::new();
    for (digest, r) in results {
        match r {
            Ok(profile) => {
                map.insert(digest, profile);
            }
            Err(e) => errors.push((digest, e)),
        }
    }
    AnalysisResult { layers: map, errors }
}

/// A downloaded image reference the aggregator needs (repo + manifest).
pub struct ImageInput {
    pub repo: RepoName,
    pub manifest_digest: Digest,
    /// `(layer digest, compressed size)` pairs from the manifest.
    pub layers: Vec<(Digest, u64)>,
}

/// Builds image profiles by aggregating layer profiles per manifest
/// (§III-C: the image profile holds pointers to its layer profiles).
pub fn image_profiles(
    images: &[ImageInput],
    layers: &FxHashMap<Digest, LayerProfile>,
) -> Vec<ImageProfile> {
    images
        .iter()
        .map(|img| {
            let mut fis = 0u64;
            let mut cis = 0u64;
            let mut file_count = 0u64;
            let mut dir_count = 0u64;
            for (d, cls) in &img.layers {
                cis += cls;
                if let Some(lp) = layers.get(d) {
                    fis += lp.fls;
                    file_count += lp.file_count;
                    dir_count += lp.dir_count;
                }
            }
            ImageProfile {
                repo: img.repo.clone(),
                manifest_digest: img.manifest_digest,
                layers: img.layers.iter().map(|(d, _)| *d).collect(),
                fis,
                cis,
                dir_count,
                file_count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_compress::{gzip_compress, CompressOptions};
    use dhub_model::FileKind;
    use dhub_tar::{write_archive, TarEntry};

    fn layer_blob(entries: &[TarEntry]) -> (Digest, Vec<u8>) {
        let tar = write_archive(entries);
        let blob = gzip_compress(&tar, &CompressOptions::fast());
        (Digest::of(&blob), blob)
    }

    #[test]
    fn profiles_simple_layer() {
        let (digest, blob) = layer_blob(&[
            TarEntry::dir("usr"),
            TarEntry::dir("usr/bin"),
            TarEntry::file("usr/bin/tool.py", b"#!/usr/bin/env python\nprint(1)\n".to_vec()),
            TarEntry::file("etc/conf", b"plain text config\n".to_vec()),
        ]);
        let p = analyze_layer(digest, &blob).unwrap();
        assert_eq!(p.file_count, 2);
        // usr, usr/bin, etc.
        assert_eq!(p.dir_count, 3);
        assert_eq!(p.max_depth, 3);
        assert_eq!(p.fls, 31 + 18);
        assert_eq!(p.cls, blob.len() as u64);
        assert!(p.compression_ratio() > 0.0);
        let kinds: Vec<FileKind> = p.files.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FileKind::PythonScript));
        assert!(kinds.contains(&FileKind::AsciiText));
    }

    #[test]
    fn implied_parent_dirs_counted() {
        let (digest, blob) =
            layer_blob(&[TarEntry::file("a/b/c/file.txt", b"text content here\n".to_vec())]);
        let p = analyze_layer(digest, &blob).unwrap();
        assert_eq!(p.dir_count, 3, "a, a/b, a/b/c");
        assert_eq!(p.max_depth, 4);
    }

    #[test]
    fn empty_layer_profile() {
        let (digest, blob) = layer_blob(&[]);
        let p = analyze_layer(digest, &blob).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.fls, 0);
        assert_eq!(p.dir_count, 0);
        assert!(p.cls > 0);
    }

    #[test]
    fn file_digests_enable_dedup() {
        let same = b"identical content".to_vec();
        let (digest, blob) = layer_blob(&[
            TarEntry::file("a/x", same.clone()),
            TarEntry::file("b/y", same.clone()),
            TarEntry::file("c/z", b"different".to_vec()),
        ]);
        let p = analyze_layer(digest, &blob).unwrap();
        assert_eq!(p.files[0].digest, p.files[1].digest);
        assert_ne!(p.files[0].digest, p.files[2].digest);
    }

    #[test]
    fn corrupt_blob_reports_error() {
        let err = analyze_layer(Digest::of(b"x"), b"not gzip at all").unwrap_err();
        assert!(matches!(err, AnalyzeError::BadGzip(_)));
    }

    #[test]
    fn corrupt_tar_reports_error() {
        let garbage = gzip_compress(&[0xAAu8; 700], &CompressOptions::fast());
        let err = analyze_layer(Digest::of(b"x"), &garbage).unwrap_err();
        assert!(matches!(err, AnalyzeError::BadTar(_)));
    }

    #[test]
    fn analyze_all_partitions_errors() {
        let (d1, b1) = layer_blob(&[TarEntry::file("f", b"data".to_vec())]);
        let bad = (Digest::of(b"bad"), Arc::new(b"junk".to_vec()));
        let layers = vec![(d1, Arc::new(b1)), bad];
        let res = analyze_all(&layers, 2);
        assert_eq!(res.layers.len(), 1);
        assert_eq!(res.errors.len(), 1);
        assert!(res.layers.contains_key(&d1));
    }

    #[test]
    fn obs_counters_track_analysis() {
        let (d1, b1) = layer_blob(&[
            TarEntry::file("a", b"one".to_vec()),
            TarEntry::file("b", b"two".to_vec()),
        ]);
        let (d2, b2) = layer_blob(&[TarEntry::file("c", b"three".to_vec())]);
        let bad = (Digest::of(b"bad"), Arc::new(b"junk".to_vec()));
        let layers = vec![(d1, Arc::new(b1)), (d2, Arc::new(b2)), bad];
        let obs = MetricsRegistry::new();
        let res = analyze_all_obs(&layers, 2, &obs);
        assert_eq!(obs.counter_value("dhub_analyze_layers_total"), res.layers.len() as u64);
        assert_eq!(obs.counter_value("dhub_analyze_files_total"), 3);
        assert_eq!(obs.counter_value("dhub_analyze_errors_total"), res.errors.len() as u64);
    }

    #[test]
    fn image_profile_aggregates() {
        let (d1, b1) = layer_blob(&[TarEntry::file("a/f1", vec![1; 100])]);
        let (d2, b2) = layer_blob(&[
            TarEntry::file("b/f2", vec![2; 50]),
            TarEntry::file("b/f3", vec![3; 25]),
        ]);
        let res = analyze_all(&[(d1, Arc::new(b1.clone())), (d2, Arc::new(b2.clone()))], 2);
        let input = ImageInput {
            repo: RepoName::official("t"),
            manifest_digest: Digest::of(b"m"),
            layers: vec![(d1, b1.len() as u64), (d2, b2.len() as u64)],
        };
        let profiles = image_profiles(&[input], &res.layers);
        let img = &profiles[0];
        assert_eq!(img.fis, 175);
        assert_eq!(img.cis, (b1.len() + b2.len()) as u64);
        assert_eq!(img.file_count, 3);
        assert_eq!(img.dir_count, 2);
        assert_eq!(img.layer_count(), 2);
    }
}
