//! Byte-capacity cache replacement policies.
//!
//! All policies share one interface: [`CachePolicy::request`] records an
//! access to `(key, size)` and returns whether it was a hit; on a miss the
//! object is admitted and victims are evicted until the byte budget holds.
//! Registry objects (images/layers) vary in size by orders of magnitude,
//! so capacities are bytes, not object counts, and the size-aware GDSF
//! policy is included alongside the classics.

use dhub_digest::FxHashMap;
use std::collections::BTreeSet;

/// Common interface for all policies.
pub trait CachePolicy {
    /// Records an access; returns true on hit. Objects larger than the
    /// whole capacity are never admitted (and count as misses). On a miss
    /// that admits the object, every victim's key is pushed onto `evicted`
    /// so callers that hold real bytes (the live mirror cache) can drop
    /// exactly what the policy dropped.
    fn request_evict(&mut self, key: u64, size: u64, evicted: &mut Vec<u64>) -> bool;

    /// Records an access; returns true on hit. Convenience wrapper over
    /// [`CachePolicy::request_evict`] for callers (trace simulation) that
    /// only track bookkeeping, not bytes.
    fn request(&mut self, key: u64, size: u64) -> bool {
        let mut evicted = Vec::new();
        self.request_evict(key, size, &mut evicted)
    }

    /// Bytes currently cached.
    fn used_bytes(&self) -> u64;

    /// Byte budget.
    fn capacity(&self) -> u64;

    /// Objects currently cached.
    fn len(&self) -> usize;

    /// True when nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Least-recently-used. Recency order is a BTreeSet of (tick, key); each
/// access re-inserts with a fresh tick (O(log n)).
pub struct Lru {
    capacity: u64,
    used: u64,
    tick: u64,
    /// key → (last tick, size)
    entries: FxHashMap<u64, (u64, u64)>,
    order: BTreeSet<(u64, u64)>,
}

impl Lru {
    /// Creates an LRU cache with a byte budget.
    pub fn new(capacity: u64) -> Lru {
        Lru { capacity, used: 0, tick: 0, entries: FxHashMap::default(), order: BTreeSet::new() }
    }
}

impl CachePolicy for Lru {
    fn request_evict(&mut self, key: u64, size: u64, evicted: &mut Vec<u64>) -> bool {
        self.tick += 1;
        if let Some((old_tick, sz)) = self.entries.get(&key).copied() {
            self.order.remove(&(old_tick, key));
            self.order.insert((self.tick, key));
            self.entries.insert(key, (self.tick, sz));
            return true;
        }
        if size > self.capacity {
            return false;
        }
        while self.used + size > self.capacity {
            let &(t, k) = self.order.iter().next().expect("used > 0 implies entries");
            self.order.remove(&(t, k));
            let (_, sz) = self.entries.remove(&k).expect("order and entries agree");
            self.used -= sz;
            evicted.push(k);
        }
        self.entries.insert(key, (self.tick, size));
        self.order.insert((self.tick, key));
        self.used += size;
        false
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Least-frequently-used with LRU tie-breaking.
pub struct Lfu {
    capacity: u64,
    used: u64,
    tick: u64,
    /// key → (frequency, last tick, size)
    entries: FxHashMap<u64, (u64, u64, u64)>,
    /// (frequency, last tick, key) — min element is the victim.
    order: BTreeSet<(u64, u64, u64)>,
}

impl Lfu {
    /// Creates an LFU cache with a byte budget.
    pub fn new(capacity: u64) -> Lfu {
        Lfu { capacity, used: 0, tick: 0, entries: FxHashMap::default(), order: BTreeSet::new() }
    }
}

impl CachePolicy for Lfu {
    fn request_evict(&mut self, key: u64, size: u64, evicted: &mut Vec<u64>) -> bool {
        self.tick += 1;
        if let Some((freq, last, sz)) = self.entries.get(&key).copied() {
            self.order.remove(&(freq, last, key));
            self.order.insert((freq + 1, self.tick, key));
            self.entries.insert(key, (freq + 1, self.tick, sz));
            return true;
        }
        if size > self.capacity {
            return false;
        }
        while self.used + size > self.capacity {
            let &(f, t, k) = self.order.iter().next().expect("non-empty");
            self.order.remove(&(f, t, k));
            let (_, _, sz) = self.entries.remove(&k).expect("consistent");
            self.used -= sz;
            evicted.push(k);
        }
        self.entries.insert(key, (1, self.tick, size));
        self.order.insert((1, self.tick, key));
        self.used += size;
        false
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// First-in first-out (insertion order, accesses do not refresh).
pub struct Fifo {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: FxHashMap<u64, (u64, u64)>,
    order: BTreeSet<(u64, u64)>,
}

impl Fifo {
    /// Creates a FIFO cache with a byte budget.
    pub fn new(capacity: u64) -> Fifo {
        Fifo { capacity, used: 0, tick: 0, entries: FxHashMap::default(), order: BTreeSet::new() }
    }
}

impl CachePolicy for Fifo {
    fn request_evict(&mut self, key: u64, size: u64, evicted: &mut Vec<u64>) -> bool {
        if self.entries.contains_key(&key) {
            return true;
        }
        if size > self.capacity {
            return false;
        }
        self.tick += 1;
        while self.used + size > self.capacity {
            let &(t, k) = self.order.iter().next().expect("non-empty");
            self.order.remove(&(t, k));
            let (_, sz) = self.entries.remove(&k).expect("consistent");
            self.used -= sz;
            evicted.push(k);
        }
        self.entries.insert(key, (self.tick, size));
        self.order.insert((self.tick, key));
        self.used += size;
        false
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Greedy-Dual-Size-Frequency: priority = L + frequency / size. Evicts the
/// lowest priority; the inflation term `L` ages out stale-but-hot objects.
/// The standard size-aware web/registry cache policy.
pub struct GreedyDualSizeFrequency {
    capacity: u64,
    used: u64,
    inflation: f64,
    seq: u64,
    /// key → (priority, freq, size, seq)
    entries: FxHashMap<u64, (f64, u64, u64, u64)>,
    /// (priority bits, seq, key) for ordered eviction.
    order: BTreeSet<(u64, u64, u64)>,
}

fn prio_bits(p: f64) -> u64 {
    // Monotone map from non-negative f64 to u64 for BTreeSet ordering.
    debug_assert!(p >= 0.0);
    p.to_bits()
}

impl GreedyDualSizeFrequency {
    /// Creates a GDSF cache with a byte budget.
    pub fn new(capacity: u64) -> Self {
        GreedyDualSizeFrequency {
            capacity,
            used: 0,
            inflation: 0.0,
            seq: 0,
            entries: FxHashMap::default(),
            order: BTreeSet::new(),
        }
    }

    fn priority(&self, freq: u64, size: u64) -> f64 {
        self.inflation + freq as f64 / size.max(1) as f64
    }
}

impl CachePolicy for GreedyDualSizeFrequency {
    fn request_evict(&mut self, key: u64, size: u64, evicted: &mut Vec<u64>) -> bool {
        self.seq += 1;
        if let Some((prio, freq, sz, seq)) = self.entries.get(&key).copied() {
            self.order.remove(&(prio_bits(prio), seq, key));
            let new_prio = self.priority(freq + 1, sz);
            self.entries.insert(key, (new_prio, freq + 1, sz, self.seq));
            self.order.insert((prio_bits(new_prio), self.seq, key));
            return true;
        }
        if size > self.capacity {
            return false;
        }
        while self.used + size > self.capacity {
            let &(pb, sq, k) = self.order.iter().next().expect("non-empty");
            self.order.remove(&(pb, sq, k));
            let (prio, _, sz, _) = self.entries.remove(&k).expect("consistent");
            // Aging: future priorities start from the evicted priority.
            self.inflation = self.inflation.max(prio);
            self.used -= sz;
            evicted.push(k);
        }
        let prio = self.priority(1, size);
        self.entries.insert(key, (prio, 1, size, self.seq));
        self.order.insert((prio_bits(prio), self.seq, key));
        self.used += size;
        false
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut c: impl CachePolicy) {
        // Capacity invariant under a mixed workload.
        for i in 0..1000u64 {
            let key = i % 37;
            let size = 10 + (i % 90);
            c.request(key, size);
            assert!(c.used_bytes() <= c.capacity(), "over budget");
        }
        assert!(!c.is_empty());
    }

    #[test]
    fn capacity_never_exceeded() {
        exercise(Lru::new(500));
        exercise(Lfu::new(500));
        exercise(Fifo::new(500));
        exercise(GreedyDualSizeFrequency::new(500));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Lru::new(300);
        assert!(!c.request(1, 100));
        assert!(!c.request(2, 100));
        assert!(!c.request(3, 100));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.request(1, 100));
        assert!(!c.request(4, 100)); // evicts 2
        assert!(c.request(1, 100));
        assert!(c.request(3, 100));
        assert!(!c.request(2, 100), "2 must have been evicted");
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = Fifo::new(300);
        c.request(1, 100);
        c.request(2, 100);
        c.request(3, 100);
        c.request(1, 100); // hit, but does not refresh insertion order
        c.request(4, 100); // evicts 1 (oldest insertion)
        assert!(!c.request(1, 100), "FIFO evicts by insertion order");
    }

    #[test]
    fn lfu_keeps_hot_objects() {
        let mut c = Lfu::new(300);
        for _ in 0..10 {
            c.request(1, 100);
        }
        c.request(2, 100);
        c.request(3, 100);
        c.request(4, 100); // evicts 2 or 3 (freq 1), never 1 (freq 10)
        assert!(c.request(1, 100), "hot object must survive");
    }

    #[test]
    fn gdsf_prefers_evicting_large_cold_objects() {
        let mut c = GreedyDualSizeFrequency::new(1000);
        c.request(1, 900); // large
        c.request(2, 50); // small
        c.request(3, 50); // small
        // Need room: the large object has the lowest freq/size priority.
        c.request(4, 600);
        assert!(!c.request(1, 900), "large cold object evicted first");
        assert!(c.request(2, 50));
        assert!(c.request(3, 50));
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = Lru::new(100);
        assert!(!c.request(1, 200));
        assert_eq!(c.len(), 0);
        assert_eq!(c.used_bytes(), 0);
        // And it did not evict anything that was there.
        c.request(2, 80);
        assert!(!c.request(3, 500));
        assert!(c.request(2, 80));
    }

    #[test]
    fn request_evict_reports_every_victim() {
        fn check(mut c: impl CachePolicy) {
            use std::collections::BTreeSet;
            let mut resident: BTreeSet<u64> = BTreeSet::new();
            for i in 0..500u64 {
                let key = (i * 7919) % 41;
                let size = 20 + (i % 70);
                let mut evicted = Vec::new();
                let hit = c.request_evict(key, size, &mut evicted);
                for v in &evicted {
                    assert!(resident.remove(v), "evicted {v} was not resident");
                    assert_ne!(*v, key, "evicted the item just inserted");
                }
                if hit {
                    assert!(evicted.is_empty(), "hits must not evict");
                } else if size <= c.capacity() {
                    resident.insert(key);
                }
                assert_eq!(resident.len(), c.len(), "shadow model diverged");
                assert!(c.used_bytes() <= c.capacity());
            }
        }
        check(Lru::new(500));
        check(Lfu::new(500));
        check(Fifo::new(500));
        check(GreedyDualSizeFrequency::new(500));
    }

    #[test]
    fn lru_inclusion_property() {
        // LRU is a stack algorithm: a bigger cache's content is a superset,
        // so hits are monotone in capacity.
        let trace: Vec<(u64, u64)> = (0..2000u64).map(|i| ((i * 7919) % 61, 30)).collect();
        let mut hits_small = 0;
        let mut hits_big = 0;
        let mut small = Lru::new(600);
        let mut big = Lru::new(1200);
        for &(k, s) in &trace {
            if small.request(k, s) {
                hits_small += 1;
            }
            if big.request(k, s) {
                hits_big += 1;
            }
        }
        assert!(hits_big >= hits_small, "{hits_big} < {hits_small}");
    }
}
