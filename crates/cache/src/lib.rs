//! Registry cache simulation.
//!
//! The paper's popularity analysis (Fig. 8) ends with "Docker Hub is a
//! good fit for caching popular repositories or images"; its future work
//! (§VI) plans to "extend our image popularity analysis to cache
//! performance analysis". This crate is that extension: byte-capacity
//! cache policies ([`policy`]) replayed against popularity-skewed pull
//! traces ([`trace`]) through a simulator ([`sim`]) that reports request
//! and byte hit ratios — the numbers a registry operator sizes a cache
//! tier with (cf. the two-tier cache design of Anwar et al., FAST'18,
//! which the paper cites as motivation).

pub mod policy;
pub mod sim;
pub mod trace;

pub use policy::{CachePolicy, Fifo, GreedyDualSizeFrequency, Lfu, Lru};
pub use sim::{simulate, CacheStats};
pub use trace::{PullTrace, TraceConfig};
