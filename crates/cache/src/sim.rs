//! Trace replay and hit-ratio accounting.

use crate::policy::CachePolicy;
use crate::trace::PullTrace;

/// Outcome of replaying a trace against a cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheStats {
    pub requests: u64,
    pub hits: u64,
    /// Bytes served from cache.
    pub byte_hits: u64,
    /// Bytes requested in total.
    pub byte_total: u64,
    /// Objects resident at the end.
    pub final_objects: usize,
    /// Bytes resident at the end.
    pub final_bytes: u64,
}

impl CacheStats {
    /// Request hit ratio in [0, 1].
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Byte hit ratio (egress saved) in [0, 1].
    pub fn byte_hit_ratio(&self) -> f64 {
        if self.byte_total == 0 {
            0.0
        } else {
            self.byte_hits as f64 / self.byte_total as f64
        }
    }
}

/// Replays `trace` against `cache`.
pub fn simulate(cache: &mut impl CachePolicy, trace: &PullTrace) -> CacheStats {
    let mut hits = 0u64;
    let mut byte_hits = 0u64;
    for &(key, size) in &trace.requests {
        if cache.request(key, size) {
            hits += 1;
            byte_hits += size;
        }
    }
    CacheStats {
        requests: trace.requests.len() as u64,
        hits,
        byte_hits,
        byte_total: trace.total_bytes,
        final_objects: cache.len(),
        final_bytes: cache.used_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyDualSizeFrequency, Lfu, Lru};
    use crate::trace::{PullTrace, TraceConfig};

    fn skewed_trace() -> PullTrace {
        PullTrace::zipf(2000, 1.0, 100, &TraceConfig { seed: 4, requests: 50_000 })
    }

    #[test]
    fn hit_ratio_bounds() {
        let trace = skewed_trace();
        let mut c = Lru::new(20_000);
        let stats = simulate(&mut c, &trace);
        assert!(stats.hit_ratio() > 0.0 && stats.hit_ratio() < 1.0);
        assert!(stats.byte_hit_ratio() > 0.0 && stats.byte_hit_ratio() <= 1.0);
        assert!(stats.final_bytes <= 20_000);
        assert_eq!(stats.requests, 50_000);
    }

    #[test]
    fn skew_makes_small_caches_effective() {
        // The paper's caching argument: with Zipf-like popularity, a cache
        // holding a few percent of the catalog absorbs a large share of
        // requests.
        let trace = skewed_trace();
        // 2 % of 2000 unit-100 objects.
        let mut c = Lru::new(40 * 100);
        let stats = simulate(&mut c, &trace);
        assert!(stats.hit_ratio() > 0.3, "hit ratio {}", stats.hit_ratio());
    }

    #[test]
    fn lfu_beats_lru_on_stable_skew(// Frequency information wins when popularity is stationary.
    ) {
        let trace = skewed_trace();
        let lru = simulate(&mut Lru::new(10_000), &trace);
        let lfu = simulate(&mut Lfu::new(10_000), &trace);
        assert!(
            lfu.hit_ratio() >= lru.hit_ratio() * 0.98,
            "lfu {} vs lru {}",
            lfu.hit_ratio(),
            lru.hit_ratio()
        );
    }

    #[test]
    fn gdsf_improves_object_hit_ratio_with_mixed_sizes() {
        // Many small hot objects + a few huge cold ones: size-aware
        // eviction keeps more small objects resident.
        let mut objects: Vec<(u64, f64, u64)> =
            (0..500).map(|i| (i, 1.0 / (i as f64 + 1.0), 50)).collect();
        for i in 500..520 {
            objects.push((i, 0.002, 50_000));
        }
        let trace =
            PullTrace::from_popularity(&objects, &TraceConfig { seed: 8, requests: 40_000 });
        let lru = simulate(&mut Lru::new(60_000), &trace);
        let gdsf = simulate(&mut GreedyDualSizeFrequency::new(60_000), &trace);
        assert!(
            gdsf.hit_ratio() >= lru.hit_ratio(),
            "gdsf {} vs lru {}",
            gdsf.hit_ratio(),
            lru.hit_ratio()
        );
    }

    #[test]
    fn empty_trace() {
        let trace = PullTrace { requests: vec![], total_bytes: 0 };
        let stats = simulate(&mut Lru::new(100), &trace);
        assert_eq!(stats.hit_ratio(), 0.0);
        assert_eq!(stats.byte_hit_ratio(), 0.0);
    }
}
