//! Pull-trace generation from popularity distributions.
//!
//! A trace is a sequence of `(object key, size)` requests. The generator
//! draws objects with probability proportional to their cumulative pull
//! counts — exactly the skew the paper measures in Fig. 8 — so cache
//! results reflect the measured workload rather than a synthetic Zipf
//! unless one is requested explicitly.

use dhub_stats::{Categorical, Rng};

/// Trace generation parameters.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
}

/// A concrete request trace.
#[derive(Clone, Debug)]
pub struct PullTrace {
    /// `(key, size)` per request.
    pub requests: Vec<(u64, u64)>,
    /// Total requested bytes (with repetitions).
    pub total_bytes: u64,
}

impl PullTrace {
    /// Builds a trace over `objects = [(key, weight, size)]`: each request
    /// picks an object with probability ∝ weight.
    pub fn from_popularity(objects: &[(u64, f64, u64)], cfg: &TraceConfig) -> PullTrace {
        assert!(!objects.is_empty(), "empty object population");
        let weights: Vec<f64> = objects.iter().map(|&(_, w, _)| w.max(1e-12)).collect();
        let dist = Categorical::new(&weights);
        let mut rng = Rng::new(cfg.seed);
        let mut requests = Vec::with_capacity(cfg.requests);
        let mut total_bytes = 0u64;
        for _ in 0..cfg.requests {
            let (key, _, size) = objects[dist.sample(&mut rng)];
            total_bytes += size;
            requests.push((key, size));
        }
        PullTrace { requests, total_bytes }
    }

    /// Builds a Zipf(s) trace over `n` synthetic unit-size objects, for
    /// policy experiments independent of a measured population.
    pub fn zipf(n: usize, s: f64, size: u64, cfg: &TraceConfig) -> PullTrace {
        let z = dhub_stats::Zipf::new(n, s);
        let mut rng = Rng::new(cfg.seed);
        let mut requests = Vec::with_capacity(cfg.requests);
        for _ in 0..cfg.requests {
            requests.push((z.sample(&mut rng) as u64, size));
        }
        let total_bytes = size * cfg.requests as u64;
        PullTrace { requests, total_bytes }
    }

    /// Number of distinct objects touched.
    pub fn unique_objects(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for &(k, _) in &self.requests {
            set.insert(k);
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_trace_prefers_heavy_objects() {
        let objects = vec![(1u64, 1000.0, 10u64), (2, 10.0, 10), (3, 1.0, 10)];
        let trace =
            PullTrace::from_popularity(&objects, &TraceConfig { seed: 1, requests: 10_000 });
        let count1 = trace.requests.iter().filter(|&&(k, _)| k == 1).count();
        assert!(count1 > 9_000, "hot object count {count1}");
        assert_eq!(trace.total_bytes, 100_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let objects = vec![(1u64, 3.0, 5u64), (2, 2.0, 7), (3, 1.0, 9)];
        let a = PullTrace::from_popularity(&objects, &TraceConfig { seed: 9, requests: 100 });
        let b = PullTrace::from_popularity(&objects, &TraceConfig { seed: 9, requests: 100 });
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn zipf_trace_shape() {
        let trace = PullTrace::zipf(1000, 1.0, 1, &TraceConfig { seed: 2, requests: 20_000 });
        assert_eq!(trace.requests.len(), 20_000);
        assert!(trace.unique_objects() < 1000, "Zipf concentrates mass");
        let rank1 = trace.requests.iter().filter(|&&(k, _)| k == 1).count();
        assert!(rank1 > 1_000, "rank-1 share too small: {rank1}");
    }

    #[test]
    fn zero_weights_tolerated() {
        let objects = vec![(1u64, 0.0, 5u64), (2, 1.0, 5)];
        let trace = PullTrace::from_popularity(&objects, &TraceConfig { seed: 3, requests: 1000 });
        // Weight 0 is clamped to epsilon: object 1 is possible but rare.
        let c1 = trace.requests.iter().filter(|&&(k, _)| k == 1).count();
        assert!(c1 < 10);
    }
}
