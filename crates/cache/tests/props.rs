//! Property tests for cache policies.

#![cfg(feature = "proptest")]

use dhub_cache::{CachePolicy, Fifo, GreedyDualSizeFrequency, Lfu, Lru};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..50, 1u64..300), 0..400)
}

fn check(mut c: impl CachePolicy, trace: &[(u64, u64)]) -> Result<(), TestCaseError> {
    for &(k, s) in trace {
        let _ = c.request(k, s);
        prop_assert!(c.used_bytes() <= c.capacity(), "over budget");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No policy ever exceeds its byte budget, whatever the trace.
    #[test]
    fn budgets_hold(trace in arb_trace(), cap in 1u64..2000) {
        check(Lru::new(cap), &trace)?;
        check(Lfu::new(cap), &trace)?;
        check(Fifo::new(cap), &trace)?;
        check(GreedyDualSizeFrequency::new(cap), &trace)?;
    }

    /// Re-requesting a just-admitted object (that fits) is always a hit.
    #[test]
    fn immediate_rerequest_hits(key in 0u64..100, size in 1u64..100) {
        let mut c = Lru::new(1000);
        prop_assert!(!c.request(key, size));
        prop_assert!(c.request(key, size));
    }

    /// LRU inclusion (stack property): with *uniform* object sizes a larger
    /// LRU cache never yields fewer hits. (With variable sizes the property
    /// genuinely does not hold for byte-budgeted caches — admission of a
    /// large object in the big cache can evict several small hot ones.)
    #[test]
    fn lru_monotone_in_capacity(keys in proptest::collection::vec(0u64..50, 0..400),
                                size in 1u64..50, slots in 2u64..20) {
        let mut small = Lru::new(size * slots);
        let mut big = Lru::new(size * slots * 2);
        let mut hs = 0u32;
        let mut hb = 0u32;
        for &k in &keys {
            if small.request(k, size) { hs += 1; }
            if big.request(k, size) { hb += 1; }
        }
        prop_assert!(hb >= hs, "big {hb} < small {hs}");
    }
}

/// Replays `trace` through `request_evict` against a shadow resident-set
/// model. These are the *same policy objects* `dhub-mirror`'s `LiveCache`
/// wraps for concurrent serving, so every property here is a property of
/// the live mirror cache too: the byte budget holds after every step, an
/// eviction pass never names the key being admitted, every victim was
/// resident, and the policy's bookkeeping (len / used_bytes) matches the
/// model exactly.
fn check_evict_model(mut c: impl CachePolicy, trace: &[(u64, u64)]) -> Result<(), TestCaseError> {
    use std::collections::BTreeMap;
    // key → size at admission (hits never resize; see policy.rs).
    let mut resident: BTreeMap<u64, u64> = BTreeMap::new();
    for &(k, s) in trace {
        let mut evicted = Vec::new();
        let hit = c.request_evict(k, s, &mut evicted);
        prop_assert_eq!(hit, resident.contains_key(&k), "hit/miss disagrees with model");
        prop_assert!(!evicted.contains(&k), "policy evicted the key it just admitted");
        if hit {
            prop_assert!(evicted.is_empty(), "a hit must not evict");
        }
        for v in &evicted {
            prop_assert!(resident.remove(v).is_some(), "victim {} was not resident", v);
        }
        if !hit && s <= c.capacity() {
            resident.insert(k, s);
        }
        prop_assert_eq!(c.len(), resident.len());
        prop_assert_eq!(c.used_bytes(), resident.values().sum::<u64>());
        prop_assert!(c.used_bytes() <= c.capacity(), "over budget");
    }
    Ok(())
}

/// Every request is exactly one hit or one miss: `CacheStats` partitions
/// the trace, so hits plus (requests − hits) misses equals its length.
fn check_stats(mut p: impl CachePolicy, trace: &dhub_cache::PullTrace) -> Result<(), TestCaseError> {
    let stats = dhub_cache::simulate(&mut p, trace);
    prop_assert_eq!(stats.requests, trace.requests.len() as u64);
    prop_assert!(stats.hits <= stats.requests);
    let misses = stats.requests - stats.hits;
    prop_assert_eq!(stats.hits + misses, trace.requests.len() as u64);
    prop_assert_eq!(stats.byte_total, trace.total_bytes);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `request_evict` victim reporting is model-consistent for all four
    /// policies (the live mirror cache relies on this to keep its byte
    /// store in lockstep with the policy).
    #[test]
    fn evict_reporting_matches_model(trace in arb_trace(), cap in 1u64..2000) {
        check_evict_model(Lru::new(cap), &trace)?;
        check_evict_model(Lfu::new(cap), &trace)?;
        check_evict_model(Fifo::new(cap), &trace)?;
        check_evict_model(GreedyDualSizeFrequency::new(cap), &trace)?;
    }

    /// Simulation accounting: every request is exactly one hit or one
    /// miss — `CacheStats` hits plus misses equals the trace length, for
    /// every policy and any trace.
    #[test]
    fn stats_partition_the_trace(requests in arb_trace(), cap in 1u64..2000) {
        use dhub_cache::PullTrace;
        let total_bytes = requests.iter().map(|&(_, s)| s).sum();
        let trace = PullTrace { requests, total_bytes };
        check_stats(Lru::new(cap), &trace)?;
        check_stats(Lfu::new(cap), &trace)?;
        check_stats(Fifo::new(cap), &trace)?;
        check_stats(GreedyDualSizeFrequency::new(cap), &trace)?;
    }
}
