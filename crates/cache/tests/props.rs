//! Property tests for cache policies.

#![cfg(feature = "proptest")]

use dhub_cache::{CachePolicy, Fifo, GreedyDualSizeFrequency, Lfu, Lru};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..50, 1u64..300), 0..400)
}

fn check(mut c: impl CachePolicy, trace: &[(u64, u64)]) -> Result<(), TestCaseError> {
    for &(k, s) in trace {
        let _ = c.request(k, s);
        prop_assert!(c.used_bytes() <= c.capacity(), "over budget");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No policy ever exceeds its byte budget, whatever the trace.
    #[test]
    fn budgets_hold(trace in arb_trace(), cap in 1u64..2000) {
        check(Lru::new(cap), &trace)?;
        check(Lfu::new(cap), &trace)?;
        check(Fifo::new(cap), &trace)?;
        check(GreedyDualSizeFrequency::new(cap), &trace)?;
    }

    /// Re-requesting a just-admitted object (that fits) is always a hit.
    #[test]
    fn immediate_rerequest_hits(key in 0u64..100, size in 1u64..100) {
        let mut c = Lru::new(1000);
        prop_assert!(!c.request(key, size));
        prop_assert!(c.request(key, size));
    }

    /// LRU inclusion (stack property): with *uniform* object sizes a larger
    /// LRU cache never yields fewer hits. (With variable sizes the property
    /// genuinely does not hold for byte-budgeted caches — admission of a
    /// large object in the big cache can evict several small hot ones.)
    #[test]
    fn lru_monotone_in_capacity(keys in proptest::collection::vec(0u64..50, 0..400),
                                size in 1u64..50, slots in 2u64..20) {
        let mut small = Lru::new(size * slots);
        let mut big = Lru::new(size * slots * 2);
        let mut hs = 0u32;
        let mut hb = 0u32;
        for &k in &keys {
            if small.request(k, size) { hs += 1; }
            if big.request(k, size) { hb += 1; }
        }
        prop_assert!(hb >= hs, "big {hb} < small {hs}");
    }
}
