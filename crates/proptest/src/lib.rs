//! Minimal in-repo property-testing engine, API-compatible with the subset
//! of `proptest` v1 this workspace uses.
//!
//! The CI environment resolves dependencies with no network and no
//! registry cache, so the real `proptest` cannot even be *resolved*, let
//! alone downloaded — any crates-io entry (optional or not) fails the
//! build. This crate is a path dependency that implements the pieces our
//! `tests/props.rs` suites actually call:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]/
//!   [`prop_assume!`]/[`prop_oneof!`],
//! * [`Strategy`] with `prop_map`/`prop_recursive`/`boxed`,
//! * [`any`] for primitives and byte arrays, integer/float ranges,
//! * [`collection::vec`], tuples up to arity 5, [`Just`],
//! * string strategies from a character-class regex subset
//!   (`"[a-z0-9._-]{1,12}"`, groups with repetition, `\PC`).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and the generated
//!   inputs; re-run with `PROPTEST_SEED=<seed>` to reproduce exactly.
//! * **Deterministic by default.** Case seeds derive from the test name,
//!   so CI runs are reproducible without a seed file. The committed
//!   `.proptest-regressions` files are kept for the day the real engine is
//!   swapped back in (the API surface is unchanged), but are not read.
//! * Generation is size-uniform rather than size-ramped.

mod regex;
mod rng;
mod strategy;

pub use rng::TestRng;
pub use strategy::{
    any, collection, BoxedStrategy, Just, Strategy, StringStrategy, Union,
};

/// Items `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Per-suite configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's inputs were rejected (`prop_assume!` failed); it does not
    /// count toward the case budget.
    Reject(String),
    /// The property itself failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// FxHash-style string mixer for deriving per-test base seeds.
fn mix_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs the case loop for one property. Not part of the public proptest
/// API; invoked by the [`proptest!`] expansion.
#[doc(hidden)]
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => {
            // An explicit seed replays exactly one case.
            let seed = parse_seed(&s);
            let mut rng = TestRng::new(seed);
            if let Err(TestCaseError::Fail(msg)) = case(&mut rng) {
                panic!("[{test_name}] replay of seed {seed:#018x} failed: {msg}");
            }
            return;
        }
        Err(_) => mix_str(test_name),
    };

    let mut passed = 0u32;
    let mut attempt = 0u64;
    let mut rejects = 0u32;
    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempt += 1;
        let mut rng = TestRng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejects += 1;
                if rejects > config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "[{test_name}] too many rejected inputs ({rejects}); \
                         loosen the prop_assume! or the strategies"
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "[{test_name}] case {passed} failed (reproduce with \
                     PROPTEST_SEED={seed:#018x}): {msg}"
                );
            }
            Err(payload) => {
                eprintln!(
                    "[{test_name}] case {passed} panicked; reproduce with \
                     PROPTEST_SEED={seed:#018x}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn parse_seed(s: &str) -> u64 {
    let t = s.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64 (got {s:?})"))
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn roundtrip(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
///         prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, concat!(module_path!(), "::", stringify!($name)),
                |__rng: &mut $crate::TestRng| {
                    $crate::__bind_params!(__rng, $($params)*);
                    $body
                    Ok(())
                });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __bind_params {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let mut $name = $crate::Strategy::generate(&$strat, $rng);
        $crate::__bind_params!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::generate(&$strat, $rng);
        $crate::__bind_params!($rng $(, $($rest)*)?);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r)));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l)));
        }
    }};
}

/// Rejects the current case (without failing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
