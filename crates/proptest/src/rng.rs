//! Deterministic generator RNG (splitmix64 core).
//!
//! Standalone on purpose: this crate must not depend on any workspace
//! crate (every workspace crate dev-depends on it).

/// Seedable deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose whole stream is a pure function of `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in the half-open range.
    pub fn index(&mut self, range: std::ops::Range<usize>) -> usize {
        debug_assert!(range.start < range.end);
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_pure_function_of_seed() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::new(7);
        for bound in [1u64, 2, 3, 17, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::new(9);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
