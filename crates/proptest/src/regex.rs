//! Generator for the character-class regex subset used as string
//! strategies: literals, `[...]` classes (ranges, escapes, negation-free),
//! `(...)` groups, `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers, and `\PC`
//! ("any printable character").

use crate::rng::TestRng;

/// One parsed atom.
enum Node {
    Literal(char),
    /// Inclusive codepoint ranges.
    Class(Vec<(char, char)>),
    Group(Vec<Quantified>),
    /// `\PC` — any non-control character.
    AnyPrintable,
}

/// An atom plus its repetition bounds (inclusive).
struct Quantified {
    node: Node,
    min: u32,
    max: u32,
}

/// A compiled pattern.
pub struct Pattern {
    nodes: Vec<Quantified>,
}

/// Codepoint ranges `\PC` draws from: printable ASCII, Latin-1/Extended,
/// some Kana and CJK so multi-byte UTF-8 paths get exercised.
const PRINTABLE: &[(char, char)] = &[
    (' ', '~'),
    ('\u{A1}', '\u{17F}'),
    ('\u{3041}', '\u{30FE}'),
    ('\u{4E00}', '\u{4EFF}'),
];

impl Pattern {
    /// Parses `pattern`, panicking on syntax outside the supported subset
    /// (a test-authoring error, not an input condition).
    pub fn compile(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let (nodes, consumed) = parse_sequence(&chars, 0, None);
        assert_eq!(consumed, chars.len(), "unbalanced pattern: {pattern:?}");
        Pattern { nodes }
    }

    /// Draws one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate_seq(&self.nodes, rng, &mut out);
        out
    }
}

fn generate_seq(nodes: &[Quantified], rng: &mut TestRng, out: &mut String) {
    for q in nodes {
        let count = q.min + rng.below((q.max - q.min + 1) as u64) as u32;
        for _ in 0..count {
            match &q.node {
                Node::Literal(c) => out.push(*c),
                Node::Class(ranges) => out.push(pick_char(ranges, rng)),
                Node::AnyPrintable => out.push(pick_char(PRINTABLE, rng)),
                Node::Group(inner) => generate_seq(inner, rng, out),
            }
        }
    }
}

fn pick_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
    let mut pick = rng.below(total);
    for &(lo, hi) in ranges {
        let span = hi as u64 - lo as u64 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick as u32).expect("range within valid chars");
        }
        pick -= span;
    }
    unreachable!("spans summed")
}

/// Parses atoms until end-of-input or the closing delimiter; returns the
/// nodes and the index just past what was consumed (including the closer).
fn parse_sequence(chars: &[char], mut i: usize, closer: Option<char>) -> (Vec<Quantified>, usize) {
    let mut nodes = Vec::new();
    while i < chars.len() {
        if Some(chars[i]) == closer {
            return (nodes, i + 1);
        }
        let (node, next) = parse_atom(chars, i);
        let (min, max, next) = parse_quantifier(chars, next);
        nodes.push(Quantified { node, min, max });
        i = next;
    }
    assert!(closer.is_none(), "missing closing {closer:?}");
    (nodes, i)
}

fn parse_atom(chars: &[char], i: usize) -> (Node, usize) {
    match chars[i] {
        '[' => parse_class(chars, i + 1),
        '(' => {
            let (inner, next) = parse_sequence(chars, i + 1, Some(')'));
            (Node::Group(inner), next)
        }
        // A ')' here was not consumed by any group's closer check.
        ')' => panic!("unbalanced pattern: unmatched ')'"),
        '\\' => {
            let c = *chars.get(i + 1).expect("dangling escape");
            match c {
                'P' | 'p' => {
                    // Only the category used in practice: `\PC` / `\pC`
                    // complement-of-control, i.e. printable.
                    assert_eq!(chars.get(i + 2), Some(&'C'), "unsupported category escape");
                    (Node::AnyPrintable, i + 3)
                }
                _ => (Node::Literal(unescape(c)), i + 2),
            }
        }
        c => (Node::Literal(c), i + 1),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_class(chars: &[char], mut i: usize) -> (Node, usize) {
    let mut ranges = Vec::new();
    while chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 2;
            unescape(chars[i - 1])
        } else {
            i += 1;
            chars[i - 1]
        };
        // `x-y` is a range unless the `-` is last in the class.
        if chars[i] == '-' && chars[i + 1] != ']' {
            let hi = if chars[i + 1] == '\\' {
                i += 3;
                unescape(chars[i - 1])
            } else {
                i += 2;
                chars[i - 1]
            };
            assert!(lo <= hi, "inverted class range {lo:?}-{hi:?}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(!ranges.is_empty(), "empty character class");
    (Node::Class(ranges), i + 1)
}

fn parse_quantifier(chars: &[char], i: usize) -> (u32, u32, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('{') => {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unclosed {quantifier}") + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = body.trim().parse().expect("bad {n} quantifier");
                    (n, n)
                }
                Some((lo, hi)) => {
                    let min = lo.trim().parse().expect("bad {m,n} quantifier");
                    let max = if hi.trim().is_empty() {
                        min + 8
                    } else {
                        hi.trim().parse().expect("bad {m,n} quantifier")
                    };
                    (min, max)
                }
            };
            assert!(min <= max, "inverted quantifier {body:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        Pattern::compile(pattern).generate(&mut TestRng::new(seed))
    }

    #[test]
    fn class_with_quantifier() {
        for seed in 0..200 {
            let s = gen("[a-z]{1,12}", seed);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn concatenated_atoms() {
        for seed in 0..200 {
            let s = gen("[a-z][a-z0-9]{0,14}", seed);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.len() <= 15);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn groups_with_repetition() {
        for seed in 0..200 {
            let s = gen("[a-z]{1,8}(/[a-z0-9._-]{1,10}){0,3}", seed);
            let segments: Vec<&str> = s.split('/').collect();
            assert!((1..=4).contains(&segments.len()), "{s:?}");
            assert!(!segments[0].is_empty());
        }
    }

    #[test]
    fn class_trailing_dash_is_literal() {
        let mut saw_dash = false;
        for seed in 0..500 {
            let s = gen("[a-c-]{1}", seed);
            let c = s.chars().next().unwrap();
            assert!(matches!(c, 'a'..='c' | '-'), "{c:?}");
            saw_dash |= c == '-';
        }
        assert!(saw_dash, "literal dash never generated");
    }

    #[test]
    fn escapes_and_unicode_in_class() {
        // The exact class dhub-json's property tests use.
        let p = "[a-zA-Z0-9 /_.:\\\\\"\n\t\u{e9}\u{4e2d}-]{0,32}";
        let allowed: Vec<char> = "\\\" \n\t/_.:-\u{e9}\u{4e2d}".chars().collect();
        for seed in 0..300 {
            for c in gen(p, seed).chars() {
                assert!(
                    c.is_ascii_alphanumeric() || allowed.contains(&c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn printable_category() {
        for seed in 0..300 {
            let s = gen("\\PC{0,200}", seed);
            assert!(s.len() <= 800, "bytes bounded by 4x char count");
            assert!(s.chars().all(|c| !c.is_control()), "control char leaked");
        }
    }

    #[test]
    fn exact_count_quantifier() {
        for seed in 0..50 {
            assert_eq!(gen("[0-9]{4}", seed).len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_pattern_rejected() {
        Pattern::compile("[a-z])");
    }
}
