//! Strategies: composable value generators.

use crate::regex::Pattern;
use crate::rng::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-maps generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: values are either this leaf strategy
    /// or one level of `branch` applied to the recursion, nested at most
    /// `depth` deep. (`_desired_size`/`_expected_branch` are accepted for
    /// API compatibility; depth already bounds generation here.)
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = branch(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a nonzero total.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed")
    }
}

/// Values with a canonical "any value of the type" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Biased toward ASCII, like practical inputs.
        if rng.below(4) > 0 {
            (0x20 + rng.below(0x5F) as u32) as u8 as char
        } else {
            char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_strategy_ints {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
range_strategy_ints!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String literals are character-class regex strategies
/// (`"[a-z0-9._-]{1,12}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::compile(self).generate(rng)
    }
}

/// Owned-pattern regex string strategy (rarely needed; literals usually
/// suffice).
#[derive(Clone, Debug)]
pub struct StringStrategy(pub String);

impl Strategy for StringStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::compile(&self.0).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// Vectors of `elem` values with length drawn from `len` (half-open).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.index(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_oneof;

    fn rng() -> TestRng {
        TestRng::new(0xD0C5)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let mut r = rng();
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = Just(21u32).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut r), 42);
    }

    #[test]
    fn oneof_honors_weights() {
        let mut r = rng();
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..1000).filter(|_| s.generate(&mut r) == 1).count();
        assert!(ones > 800, "weighted arm underrepresented: {ones}");
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>().prop_map(Tree::Leaf).prop_recursive(4, 64, 8, |inner| {
            collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut r)) <= 4);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u8..10, any::<bool>(), Just(7i32)).generate(&mut r);
        assert!(a < 10);
        let _ = b;
        assert_eq!(c, 7);
    }
}
