//! Content forging: fabricates file bytes per taxonomy type.
//!
//! Two properties matter and both are verified by tests:
//!
//! 1. **Classifiability** — the bytes carry the real signature for their
//!    type, so `dhub-magic` independently recovers the intended kind (the
//!    analyzer must measure, not trust generator labels).
//! 2. **Compressibility** — text compresses like text (~3–4×), ELF like
//!    machine code (~2×), and already-compressed formats (PNG, gzip, xz)
//!    not at all, so layer-level FLS/CLS ratios (Fig. 4) emerge honestly
//!    from DEFLATE over the forged content.

use dhub_model::FileKind;
use dhub_stats::Rng;

/// Forges `size` bytes of content of the given kind, deterministic in
/// `seed`. Sizes below each format's minimum header are padded up.
pub fn forge(kind: FileKind, size: u64, seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed ^ 0x00F0_A6E0_u64.wrapping_mul(kind.index() as u64 + 1));
    let size = size as usize;
    use FileKind::*;
    match kind {
        Empty => Vec::new(),
        Elf => binary_with_header(&elf_header(&mut rng), size, 0.55, &mut rng),
        Coff => binary_with_header(&[0x64, 0x86, 0x02, 0x00], size, 0.5, &mut rng),
        MachO => binary_with_header(&[0xFE, 0xED, 0xFA, 0xCE, 0, 0, 0, 7], size, 0.5, &mut rng),
        PeExecutable => binary_with_header(b"MZ\x90\x00\x03\x00\x00\x00", size, 0.55, &mut rng),
        PythonBytecode => binary_with_header(&[0x6F, 0x0D, 0x0D, 0x0A, 0, 0, 0, 0], size, 0.7, &mut rng),
        JavaClass => binary_with_header(&[0xCA, 0xFE, 0xBA, 0xBE, 0x00, 0x00, 0x00, 0x37], size, 0.6, &mut rng),
        TerminfoCompiled => binary_with_header(&[0x1A, 0x01, 0x30, 0x00], size, 0.8, &mut rng),
        DebPackage => pre_compressed(b"!<arch>\ndebian-binary   1410122664  0     0     100644  4         `\n2.0\n", size, &mut rng),
        RpmPackage => pre_compressed(&[0xED, 0xAB, 0xEE, 0xDB, 0x03, 0x00, 0x00, 0x00], size, &mut rng),
        Library => binary_with_header(b"!<arch>\nmember.o/       0           0     0     100644  ", size, 0.5, &mut rng),
        CSource => source_code(size, &mut rng, &C_LINES),
        Perl5Module => source_code(size, &mut rng, &PERL_LINES),
        RubyModule => source_code(size, &mut rng, &RUBY_LINES),
        PascalSource => source_code(size, &mut rng, &PASCAL_LINES),
        FortranSource => source_code(size, &mut rng, &FORTRAN_LINES),
        ApplesoftBasic => source_code(size, &mut rng, &BASIC_LINES),
        LispScheme => source_code(size, &mut rng, &LISP_LINES),
        PythonScript => script(b"#!/usr/bin/env python\n", size, &mut rng, &PY_LINES),
        ShellScript => script(b"#!/bin/sh\n", size, &mut rng, &SH_LINES),
        RubyScript => script(b"#!/usr/bin/ruby\n", size, &mut rng, &RUBY_LINES),
        PerlScript => script(b"#!/usr/bin/perl\n", size, &mut rng, &PERL_LINES),
        PhpScript => script(b"#!/usr/bin/php\n", size, &mut rng, &PHP_LINES),
        Makefile => source_code(size, &mut rng, &MAKE_LINES),
        M4Macro => source_code(size, &mut rng, &M4_LINES),
        NodeScript => script(b"#!/usr/bin/env node\n", size, &mut rng, &JS_LINES),
        TclScript => script(b"#!/usr/bin/tclsh\n", size, &mut rng, &TCL_LINES),
        AwkScript => script(b"#!/usr/bin/awk -f\n", size, &mut rng, &AWK_LINES),
        OtherScript => script(b"#!/opt/tool/run\n", size, &mut rng, &SH_LINES),
        AsciiText => ascii_text(size, &mut rng),
        Utf8Text => utf8_text(size, &mut rng),
        Iso8859Text => iso8859_text(size, &mut rng),
        XmlHtml => xml_html(size, &mut rng),
        PdfPs => pre_compressed(b"%PDF-1.4\n%\xE2\xE3\xCF\xD3\n", size, &mut rng),
        LatexDoc => latex(size, &mut rng),
        OtherDocument => ascii_text(size, &mut rng),
        ZipGzip => pre_compressed(&[0x1F, 0x8B, 0x08, 0x00, 0, 0, 0, 0, 0, 0xFF], size, &mut rng),
        Bzip2 => pre_compressed(b"BZh91AY&SY", size, &mut rng),
        XzArchive => pre_compressed(&[0xFD, b'7', b'z', b'X', b'Z', 0x00, 0x00, 0x04], size, &mut rng),
        TarArchive => embedded_tar(size, &mut rng),
        OtherArchive => pre_compressed(&[0x1F, 0x8B, 0x08, 0x00], size, &mut rng),
        Png => pre_compressed(b"\x89PNG\r\n\x1a\n\x00\x00\x00\rIHDR", size, &mut rng),
        Jpeg => pre_compressed(&[0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10, b'J', b'F', b'I', b'F'], size, &mut rng),
        Svg => svg(size, &mut rng),
        Gif => pre_compressed(b"GIF89a", size, &mut rng),
        OtherImage => pre_compressed(b"\x89PNG\r\n\x1a\n", size, &mut rng),
        BerkeleyDb => berkeley_db(size, &mut rng),
        MysqlDb => db_pages(&[0xFE, 0xFE, 0x07, 0x01], size, 0.85, &mut rng),
        SqliteDb => db_pages(b"SQLite format 3\0", size, 0.9, &mut rng),
        OtherDb => db_pages(b"PGDMP\x01\x0e\x00", size, 0.8, &mut rng),
        Video => pre_compressed(b"RIFF\x00\x10\x00\x00AVI LIST", size, &mut rng),
        OtherBinary => binary_with_header(&[0x00, 0x01, 0x02, 0x03], size, 0.4, &mut rng),
        OtherEol => binary_with_header(&[0x7F, b'E', b'L', b'F', 1, 1, 1, 0], size, 0.5, &mut rng),
    }
}

/// Suggests a file name for prototype `index` of `kind` (the classifier
/// needs correct extensions for source/module types).
pub fn proto_name(kind: FileKind, index: usize) -> String {
    use FileKind::*;
    match kind {
        Elf => ["libfoo.so.6", "httpd", "usr_bin_tool", "libcrypt.so.1", "server"]
            .get(index % 5)
            .map(|b| format!("{b}.{index}"))
            .unwrap(),
        Coff => format!("obj_{index}.obj"),
        MachO => format!("tool_{index}"),
        PeExecutable => format!("setup_{index}.exe"),
        PythonBytecode => format!("module_{index}.pyc"),
        JavaClass => format!("Class{index}.class"),
        TerminfoCompiled => format!("xterm-{index}"),
        DebPackage => format!("pkg_{index}_amd64.deb"),
        RpmPackage => format!("pkg-{index}.x86_64.rpm"),
        Library => format!("lib{index}.a"),
        OtherEol => format!("bin_{index}"),
        CSource => format!("gtest_part_{index}.cc"),
        Perl5Module => format!("Module{index}.pm"),
        RubyModule => format!("model_{index}.rb"),
        PascalSource => format!("unit{index}.pas"),
        FortranSource => format!("solver{index}.f90"),
        ApplesoftBasic => format!("prog{index}.bas"),
        LispScheme => format!("core{index}.scm"),
        PythonScript => format!("tool_{index}.py"),
        AwkScript => format!("filter_{index}.awk"),
        RubyScript => format!("task_{index}"),
        PerlScript => format!("gen_{index}.pl"),
        PhpScript => format!("page_{index}.php"),
        Makefile => if index.is_multiple_of(3) { "Makefile".to_string() } else { format!("rules_{index}.mk") },
        M4Macro => format!("aclocal_{index}.m4"),
        NodeScript => format!("index_{index}.js"),
        TclScript => format!("setup_{index}.tcl"),
        ShellScript => format!("entrypoint_{index}.sh"),
        OtherScript => format!("hook_{index}"),
        AsciiText => ["README", "LICENSE", "ChangeLog", "NOTICE", "dependency_links.txt"]
            .get(index % 5)
            .map(|b| format!("{b}.{index}"))
            .unwrap(),
        Utf8Text => format!("notes_{index}.txt"),
        Iso8859Text => format!("legacy_{index}.txt"),
        XmlHtml => format!("page_{index}.html"),
        PdfPs => format!("doc_{index}.pdf"),
        LatexDoc => format!("paper_{index}.tex"),
        OtherDocument => format!("doc_{index}"),
        ZipGzip => format!("bundle_{index}.tar.gz"),
        Bzip2 => format!("data_{index}.tar.bz2"),
        XzArchive => format!("dist_{index}.tar.xz"),
        TarArchive => format!("backup_{index}.tar"),
        OtherArchive => format!("pack_{index}.gz"),
        Png => format!("icon_{index}.png"),
        Jpeg => format!("photo_{index}.jpg"),
        Svg => format!("logo_{index}.svg"),
        Gif => format!("anim_{index}.gif"),
        OtherImage => format!("img_{index}.png"),
        BerkeleyDb => format!("index_{index}.db"),
        MysqlDb => format!("table_{index}.MYI"),
        SqliteDb => format!("app_{index}.sqlite"),
        OtherDb => format!("dump_{index}.dump"),
        Video => format!("clip_{index}.avi"),
        OtherBinary => format!("blob_{index}.bin"),
        Empty => ["__init__.py", ".gitkeep", "lock", ".npmignore", "placeholder"]
            [index % 5]
            .to_string(),
    }
}

// --- Builders ---------------------------------------------------------------

/// A minimal but valid-looking 64-bit ELF header.
fn elf_header(rng: &mut Rng) -> Vec<u8> {
    let mut h = vec![0u8; 64];
    h[0..4].copy_from_slice(b"\x7fELF");
    h[4] = 2; // 64-bit
    h[5] = 1; // little endian
    h[6] = 1; // version
    h[16] = if rng.chance(0.5) { 3 } else { 2 }; // DYN or EXEC
    h[18] = 0x3E; // x86-64
    h
}

/// Header + body that is `pattern_frac` repetitive machine-code-like
/// patterns and the rest high-entropy — yielding ELF-like ratios (~2×).
fn binary_with_header(header: &[u8], size: usize, pattern_frac: f64, rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size.max(header.len()));
    out.extend_from_slice(header);
    // Instruction-like motifs repeated with small mutations.
    let mut motif = [0u8; 16];
    rng.fill_bytes(&mut motif);
    while out.len() < size {
        if rng.chance(pattern_frac) {
            out.extend_from_slice(&motif);
            // Occasional motif drift, as relocation targets vary.
            if rng.chance(0.1) {
                let i = rng.below(16) as usize;
                motif[i] = rng.next_u64() as u8;
            }
        } else {
            out.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
    }
    out.truncate(size.max(header.len()));
    out
}

/// Signature + incompressible body (for formats that are themselves
/// compressed).
fn pre_compressed(sig: &[u8], size: usize, rng: &mut Rng) -> Vec<u8> {
    let total = size.max(sig.len());
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(sig);
    let mut buf = vec![0u8; total - out.len()];
    rng.fill_bytes(&mut buf);
    out.extend_from_slice(&buf);
    out
}

/// DB file: page-structured, `zero_frac` of each page zeroed (sparse pages
/// compress enormously — the source of the paper's max ratio ~1026).
fn db_pages(sig: &[u8], size: usize, zero_frac: f64, rng: &mut Rng) -> Vec<u8> {
    let total = size.max(sig.len());
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(sig);
    const PAGE: usize = 4096;
    while out.len() < total {
        let page_end = (out.len() + PAGE).min(total);
        let data_bytes = ((page_end - out.len()) as f64 * (1.0 - zero_frac)) as usize;
        for _ in 0..data_bytes {
            out.push(rng.next_u64() as u8);
        }
        out.resize(page_end, 0);
    }
    out
}

/// Berkeley DB: magic at offset 12, then sparse pages.
fn berkeley_db(size: usize, rng: &mut Rng) -> Vec<u8> {
    let mut head = vec![0u8; 16];
    head[12..16].copy_from_slice(&0x0005_3162u32.to_le_bytes());
    let mut out = db_pages(&[], size.saturating_sub(16), 0.85, rng);
    head.append(&mut out);
    head
}

/// A small tar archive as file payload (files *inside* images are
/// sometimes tars, Fig. 20).
fn embedded_tar(size: usize, rng: &mut Rng) -> Vec<u8> {
    // One ustar header block then text-ish payload; rounded to 512.
    let mut out = vec![0u8; 512];
    // Unique member name per prototype so tiny tars stay distinct files.
    let name = format!("data/file-{:08x}\0", rng.next_u64() as u32);
    out[0..name.len()].copy_from_slice(name.as_bytes());
    out[257..262].copy_from_slice(b"ustar");
    out[156] = b'0';
    let body = ascii_text(size.saturating_sub(512), rng);
    out.extend_from_slice(&body);
    out
}

const WORDS: [&str; 32] = [
    "container", "registry", "layer", "image", "manifest", "storage", "deduplication", "docker",
    "file", "system", "analysis", "compression", "ratio", "pull", "push", "cache", "latency",
    "the", "of", "and", "for", "with", "data", "size", "count", "type", "distribution", "metadata",
    "archive", "snapshot", "popular", "daemon",
];

fn words_to(out: &mut Vec<u8>, size: usize, rng: &mut Rng) {
    while out.len() < size {
        out.extend_from_slice(rng.pick(&WORDS).as_bytes());
        out.push(if rng.chance(0.12) { b'\n' } else { b' ' });
    }
    out.truncate(size);
    if let Some(last) = out.last_mut() {
        *last = b'\n';
    }
}

/// Plain ASCII prose.
fn ascii_text(size: usize, rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    words_to(&mut out, size, rng);
    out
}

/// UTF-8 text with multibyte content.
fn utf8_text(size: usize, rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 4);
    out.extend_from_slice("Résumé — 概要\n".as_bytes());
    words_to(&mut out, size.max(20), rng);
    // Ensure no multi-byte sequence was cut.
    while std::str::from_utf8(&out).is_err() {
        out.pop();
    }
    out
}

/// ISO-8859-1 text: high bytes that are not valid UTF-8.
fn iso8859_text(size: usize, rng: &mut Rng) -> Vec<u8> {
    let mut out = ascii_text(size.max(8), rng);
    // Sprinkle latin-1 accents; 0xE9 alone is invalid UTF-8.
    let n = out.len();
    for i in (4..n).step_by(7) {
        out[i] = 0xE9;
    }
    out
}

/// XML/HTML document.
fn xml_html(size: usize, rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 64);
    // The document id keeps even header-only instances unique per
    // prototype; without it, every scaled-down XML file would dedup into
    // one identity and distort Fig. 24.
    out.extend_from_slice(
        format!("<?xml version=\"1.0\"?>\n<doc id=\"{:016x}\">\n", rng.next_u64()).as_bytes(),
    );
    while out.len() + 8 < size {
        out.extend_from_slice(b"  <item attr=\"");
        out.extend_from_slice(rng.pick(&WORDS).as_bytes());
        out.extend_from_slice(b"\">");
        out.extend_from_slice(rng.pick(&WORDS).as_bytes());
        out.extend_from_slice(b"</item>\n");
    }
    out.extend_from_slice(b"</doc>\n");
    out
}

/// SVG image (text-form).
fn svg(size: usize, rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 64);
    out.extend_from_slice(
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"64\" height=\"64\" id=\"g{:012x}\">\n",
            rng.next_u64() & 0xFFFF_FFFF_FFFF
        )
        .as_bytes(),
    );
    while out.len() + 8 < size {
        out.extend_from_slice(
            format!(
                "  <rect x=\"{}\" y=\"{}\" width=\"8\" height=\"8\"/>\n",
                rng.below(64),
                rng.below(64)
            )
            .as_bytes(),
        );
    }
    out.extend_from_slice(b"</svg>\n");
    out
}

/// LaTeX source.
fn latex(size: usize, rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 64);
    out.extend_from_slice(
        format!("\\documentclass{{article}}\n% doc {:016x}\n\\begin{{document}}\n", rng.next_u64())
            .as_bytes(),
    );
    words_to(&mut out, size.saturating_sub(16).max(48), rng);
    out.extend_from_slice(b"\n\\end{document}\n");
    out
}

/// Source file from template lines.
fn source_code(size: usize, rng: &mut Rng, lines: &[&str]) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 64);
    while out.len() < size {
        let line = rng.pick(lines);
        // Identifier variation so files differ while staying compressible.
        let id = rng.below(10_000);
        out.extend_from_slice(line.replace("{}", &format!("v{id}")).as_bytes());
        out.push(b'\n');
    }
    out.truncate(size.max(lines[0].len()));
    if let Some(last) = out.last_mut() {
        *last = b'\n';
    }
    out
}

/// Shebang + source body.
fn script(shebang: &[u8], size: usize, rng: &mut Rng, lines: &[&str]) -> Vec<u8> {
    let mut out = shebang.to_vec();
    let body = source_code(size.saturating_sub(shebang.len()).max(8), rng, lines);
    out.extend_from_slice(&body);
    out
}

const C_LINES: [&str; 6] = [
    "static int {}(const char *path, size_t len) {",
    "    return memcmp(buf_{}, expected, sizeof(expected));",
    "}",
    "#include <gtest/gtest_{}.h>",
    "TEST(RegistrySuite, Handles{}) { EXPECT_EQ(1, 1); }",
    "/* layer handling for {} */",
];
const PERL_LINES: [&str; 4] =
    ["package Dhub::{};", "sub run_{} { my ($self) = @_; return 1; }", "use strict;", "1;"];
const RUBY_LINES: [&str; 4] =
    ["class {}Worker", "  def perform_{}(args)", "  end", "end"];
const PASCAL_LINES: [&str; 3] = ["procedure {};", "begin", "end;"];
const FORTRAN_LINES: [&str; 3] = ["      SUBROUTINE {}(N)", "      INTEGER N", "      END"];
const BASIC_LINES: [&str; 3] = ["10 PRINT \"{}\"", "20 GOTO 10", "30 END"];
const LISP_LINES: [&str; 3] = ["(define ({} x) (+ x 1))", "(display {})", "(newline)"];
const PY_LINES: [&str; 5] = [
    "def handler_{}(request):",
    "    return dict(status=200, body='{}')",
    "import os, sys",
    "class Registry{}(object):",
    "    pass",
];
const SH_LINES: [&str; 4] =
    ["set -e", "export PATH=/usr/local/bin:$PATH # {}", "exec \"$@\" # {}", "echo starting {}"];
const PHP_LINES: [&str; 3] = ["<?php function f_{}() { return 1; } ?>", "$x_{} = 42;", "echo $x;"];
const MAKE_LINES: [&str; 3] = ["all: {}", "\t$(CC) -o {} main.c", ".PHONY: clean_{}"];
const M4_LINES: [&str; 2] = ["AC_DEFUN([{}], [AC_MSG_CHECKING([for {}])])", "m4_define([{}], [1])"];
const JS_LINES: [&str; 3] =
    ["module.exports.{} = function(req) { return 200; };", "const {} = require('fs');", "// {}"];
const TCL_LINES: [&str; 2] = ["proc {} {args} { return 1 }", "set var_{} 42"];
const AWK_LINES: [&str; 2] = ["/{}/ { count++ }", "END { print count_{} }"];

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_compress::{gzip_compress, gzip_decompress, CompressOptions};
    use dhub_magic::classify;

    /// The classifier must recover every kind the generator actually
    /// emits (catch-all kinds like `OtherEol` have no signature of their
    /// own and are not part of the mix).
    #[test]
    fn classifier_recovers_all_generated_kinds() {
        for spec in &crate::calibration::KIND_MIX {
            let kind = spec.kind;
            let size = if kind == FileKind::Empty { 0 } else { 6000 };
            let name = proto_name(kind, 3);
            let data = forge(kind, size, 42);
            let got = classify(&name, &data);
            assert_eq!(got, kind, "kind {kind:?} misclassified as {got:?} (name {name})");
        }
    }

    #[test]
    fn classifier_recovers_empty_and_special() {
        assert_eq!(classify(&proto_name(FileKind::Empty, 0), &forge(FileKind::Empty, 0, 1)), FileKind::Empty);
        assert_eq!(
            classify(&proto_name(FileKind::OtherBinary, 0), &forge(FileKind::OtherBinary, 100, 1)),
            FileKind::OtherBinary
        );
        assert_eq!(classify("clip.avi", &forge(FileKind::Video, 4096, 9)), FileKind::Video);
    }

    #[test]
    fn forging_is_deterministic() {
        assert_eq!(forge(FileKind::Elf, 5000, 7), forge(FileKind::Elf, 5000, 7));
        assert_ne!(forge(FileKind::Elf, 5000, 7), forge(FileKind::Elf, 5000, 8));
    }

    #[test]
    fn sizes_are_respected() {
        for kind in [FileKind::AsciiText, FileKind::Elf, FileKind::Png, FileKind::SqliteDb] {
            for size in [100u64, 4096, 100_000] {
                let data = forge(kind, size, 1);
                let ratio = data.len() as f64 / size as f64;
                assert!((0.9..1.3).contains(&ratio), "{kind:?} size {size} -> {}", data.len());
            }
        }
    }

    fn ratio_of(kind: FileKind, size: u64) -> f64 {
        let data = forge(kind, size, 11);
        let gz = gzip_compress(&data, &CompressOptions::default());
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
        data.len() as f64 / gz.len() as f64
    }

    #[test]
    fn text_compresses_well() {
        let r = ratio_of(FileKind::AsciiText, 100_000);
        assert!(r > 2.5, "ascii ratio {r}");
        let r = ratio_of(FileKind::CSource, 100_000);
        assert!(r > 2.5, "C source ratio {r}");
    }

    #[test]
    fn precompressed_does_not_compress() {
        for kind in [FileKind::Png, FileKind::ZipGzip, FileKind::XzArchive, FileKind::Jpeg] {
            let r = ratio_of(kind, 100_000);
            assert!(r < 1.1, "{kind:?} ratio {r}");
        }
    }

    #[test]
    fn elf_ratio_is_moderate() {
        let r = ratio_of(FileKind::Elf, 200_000);
        assert!((1.2..5.0).contains(&r), "ELF ratio {r}");
    }

    #[test]
    fn db_files_compress_enormously() {
        let r = ratio_of(FileKind::SqliteDb, 500_000);
        assert!(r > 5.0, "sqlite ratio {r}");
    }

    #[test]
    fn proto_names_have_stable_extensions() {
        assert!(proto_name(FileKind::CSource, 5).ends_with(".cc"));
        assert!(proto_name(FileKind::PythonBytecode, 1).ends_with(".pyc"));
        assert_eq!(proto_name(FileKind::Empty, 0), "__init__.py");
    }
}
