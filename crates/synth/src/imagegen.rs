//! Image assembly: layer stacks, base-chain sharing, popularity.

use crate::calibration::*;
use dhub_stats::{Categorical, LogNormal, Pareto, Rng};

/// Samples a layers-per-image count (Fig. 10: p50 8, p90 18, mode 8 via an
/// explicit boost, max 120, ~2 % single-layer images).
pub fn sample_layer_count(dist: &Categorical, rng: &mut Rng) -> usize {
    dist.sample(rng) + 1
}

/// Builds the layers-per-image pmf once (support 1..=120).
pub fn layer_count_dist() -> Categorical {
    let body = LogNormal::from_median_p90(LAYERS_PER_IMAGE_MEDIAN, LAYERS_PER_IMAGE_P90);
    let sigma = body.sigma;
    let mut weights = vec![0.0f64; LAYERS_PER_IMAGE_MAX];
    for (i, w) in weights.iter_mut().enumerate() {
        let k = (i + 1) as f64;
        // Log-normal density, discretized.
        let z = (k.ln() - body.mu) / sigma;
        *w = (-0.5 * z * z).exp() / k;
    }
    // Fig. 10b: a distinct spike at exactly 8 layers.
    weights[7] *= LAYERS_PER_IMAGE_MODE_BOOST;
    // ~2 % of images have a single layer.
    let total: f64 = weights.iter().skip(1).sum();
    weights[0] = total * SINGLE_LAYER_IMAGE_FRACTION / (1.0 - SINGLE_LAYER_IMAGE_FRACTION);
    Categorical::new(&weights)
}

/// Samples a repository pull count (Fig. 8: p50 ≈ 40, p90 ≈ 333, secondary
/// histogram peak near 37, heavy Pareto head).
pub fn sample_pull_count(rng: &mut Rng) -> u64 {
    let u = rng.next_f64();
    if u < PULLS_DORMANT_WEIGHT {
        // Dormant repos: the 0–5 pulls spike of Fig. 8b.
        rng.below(6)
    } else if u < PULLS_DORMANT_WEIGHT + PULLS_COMMUNITY_WEIGHT {
        let d = LogNormal { mu: PULLS_COMMUNITY_MEDIAN.ln(), sigma: PULLS_COMMUNITY_SIGMA };
        d.sample(rng).round() as u64
    } else {
        let d = Pareto { lo: PULLS_TAIL_LO, hi: PULLS_TAIL_HI, alpha: PULLS_TAIL_ALPHA };
        d.sample(rng).round() as u64
    }
}

/// What happened to a repository in the study (§III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepoFate {
    /// Has `latest`, anonymous pulls allowed — downloadable.
    Ok,
    /// Rejects anonymous pulls (13 % of failures).
    AuthRequired,
    /// No `latest` tag (87 % of failures).
    NoLatest,
}

/// Assigns a fate by configured fractions.
pub fn sample_fate(cfg: &SynthConfig, rng: &mut Rng) -> RepoFate {
    let u = rng.next_f64();
    if u < cfg.auth_fraction {
        RepoFate::AuthRequired
    } else if u < cfg.auth_fraction + cfg.no_latest_fraction {
        RepoFate::NoLatest
    } else {
        RepoFate::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_shape() {
        let dist = layer_count_dist();
        let mut rng = Rng::new(1);
        let mut counts = vec![0u32; LAYERS_PER_IMAGE_MAX + 1];
        let n = 100_000;
        for _ in 0..n {
            counts[sample_layer_count(&dist, &mut rng)] += 1;
        }
        // Mode at exactly 8.
        let mode = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(mode, 8, "mode {mode}");
        // Median near 8.
        let mut cum = 0u32;
        let mut median = 0;
        for (k, &c) in counts.iter().enumerate() {
            cum += c;
            if cum as f64 >= n as f64 / 2.0 {
                median = k;
                break;
            }
        }
        assert!((7..=9).contains(&median), "median {median}");
        // ~2 % single layer.
        let single = counts[1] as f64 / n as f64;
        assert!((0.01..0.035).contains(&single), "single-layer {single}");
        // p90 around 18.
        let mut cum = 0u32;
        let mut p90 = 0;
        for (k, &c) in counts.iter().enumerate() {
            cum += c;
            if cum as f64 >= n as f64 * 0.9 {
                p90 = k;
                break;
            }
        }
        assert!((14..=24).contains(&p90), "p90 {p90}");
        assert_eq!(counts[0], 0, "layer count 0 must not occur");
    }

    #[test]
    fn pull_count_shape() {
        let mut rng = Rng::new(2);
        let mut pulls: Vec<u64> = (0..100_000).map(|_| sample_pull_count(&mut rng)).collect();
        pulls.sort_unstable();
        let p50 = pulls[pulls.len() / 2];
        let p90 = pulls[(pulls.len() as f64 * 0.9) as usize];
        assert!((25..=60).contains(&p50), "p50 pulls {p50}");
        assert!((200..=600).contains(&p90), "p90 pulls {p90}");
        // Heavy skew: max far above median.
        assert!(*pulls.last().unwrap() > p50 * 1000);
        // The dormant spike exists.
        let dormant = pulls.iter().filter(|&&p| p <= 5).count() as f64 / pulls.len() as f64;
        assert!((0.12..0.25).contains(&dormant), "dormant {dormant}");
    }

    #[test]
    fn fate_fractions() {
        let cfg = SynthConfig::default_scale(3);
        let mut rng = Rng::new(3);
        let n = 100_000;
        let mut auth = 0;
        let mut nolatest = 0;
        for _ in 0..n {
            match sample_fate(&cfg, &mut rng) {
                RepoFate::AuthRequired => auth += 1,
                RepoFate::NoLatest => nolatest += 1,
                RepoFate::Ok => {}
            }
        }
        let auth_f = auth as f64 / n as f64;
        let nl_f = nolatest as f64 / n as f64;
        assert!((auth_f - cfg.auth_fraction).abs() < 0.005);
        assert!((nl_f - cfg.no_latest_fraction).abs() < 0.01);
        // Failure split ≈ 13 % / 87 % (§III-B).
        let auth_share = auth_f / (auth_f + nl_f);
        assert!((auth_share - 0.13).abs() < 0.03, "auth share of failures {auth_share}");
    }
}
