//! Directory-tree generation for layers.
//!
//! Layers get realistic filesystem shapes: directory counts track file
//! counts (Fig. 5 vs Fig. 6: ≈ 2.7 files/dir at the median), directory
//! depths are mode-3 with a thin deep tail (Fig. 7), and path components
//! come from a Unix-flavoured vocabulary so tar name/prefix handling gets
//! exercised realistically.

use crate::calibration::{DEPTH_WEIGHTS, FILES_PER_DIR};
use dhub_stats::{Categorical, Rng};

/// Common top-level and nested path components.
const ROOTS: [&str; 12] =
    ["usr", "etc", "var", "opt", "bin", "lib", "srv", "home", "tmp", "run", "sbin", "data"];
const MIDS: [&str; 16] = [
    "lib", "share", "local", "bin", "app", "src", "include", "config", "cache", "log", "python2.7",
    "site-packages", "node_modules", "vendor", "doc", "man",
];

/// A generated directory tree: paths plus an assignment distribution.
pub struct DirTree {
    /// Directory paths, no trailing slash, parents before children.
    pub dirs: Vec<String>,
    /// Zipf over directories for file placement (some dirs are hot,
    /// like `usr/lib`).
    placement: Categorical,
}

impl DirTree {
    /// Generates a tree sized for `nfiles` files.
    pub fn generate(nfiles: u64, rng: &mut Rng) -> DirTree {
        let target_dirs = ((nfiles as f64 / FILES_PER_DIR).round() as usize).max(1);
        let depth_dist = Categorical::new(&DEPTH_WEIGHTS);

        let mut dirs: Vec<String> = Vec::with_capacity(target_dirs);
        let mut seen = std::collections::HashSet::new();
        // Always have a root dir so every layer has ≥ 1 directory (Fig. 6
        // reports a minimum of one).
        let first = ROOTS[rng.below(ROOTS.len() as u64) as usize].to_string();
        seen.insert(first.clone());
        dirs.push(first);

        let mut attempts = 0usize;
        while dirs.len() < target_dirs && attempts < target_dirs * 8 {
            attempts += 1;
            let depth = depth_dist.sample(rng) + 1; // 1..=12
            let mut path = String::new();
            path.push_str(ROOTS[rng.below(ROOTS.len() as u64) as usize]);
            for d in 1..depth {
                path.push('/');
                // Numbered components keep deep trees from colliding.
                if d >= MIDS.len() || rng.chance(0.25) {
                    path.push_str(&format!("d{}", rng.below(1 + nfiles / 2 + 50)));
                } else {
                    path.push_str(MIDS[rng.below(MIDS.len() as u64) as usize]);
                }
            }
            // Insert all ancestors so the tree is closed under parents.
            let mut prefix = String::new();
            for comp in path.split('/') {
                if !prefix.is_empty() {
                    prefix.push('/');
                }
                prefix.push_str(comp);
                if seen.insert(prefix.clone()) {
                    dirs.push(prefix.clone());
                }
            }
        }
        // Hot-dir skew for placement.
        let weights: Vec<f64> = (0..dirs.len()).map(|i| 1.0 / (i as f64 + 1.0).powf(0.8)).collect();
        DirTree { dirs, placement: Categorical::new(&weights) }
    }

    /// Picks a directory for the next file.
    pub fn place(&self, rng: &mut Rng) -> &str {
        &self.dirs[self.placement.sample(rng)]
    }

    /// Maximum directory depth in the tree.
    pub fn max_depth(&self) -> u64 {
        self.dirs.iter().map(|d| d.split('/').count() as u64).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_closed_under_parents() {
        let mut rng = Rng::new(3);
        let tree = DirTree::generate(500, &mut rng);
        let set: std::collections::HashSet<&str> = tree.dirs.iter().map(|s| s.as_str()).collect();
        for d in &tree.dirs {
            if let Some((parent, _)) = d.rsplit_once('/') {
                assert!(set.contains(parent), "missing parent of {d}");
            }
        }
    }

    #[test]
    fn dir_count_tracks_files() {
        let mut rng = Rng::new(4);
        let tree = DirTree::generate(270, &mut rng);
        let ratio = 270.0 / tree.dirs.len() as f64;
        assert!((1.5..6.0).contains(&ratio), "files/dir {ratio} ({} dirs)", tree.dirs.len());
    }

    #[test]
    fn min_one_dir() {
        let mut rng = Rng::new(5);
        let tree = DirTree::generate(0, &mut rng);
        assert_eq!(tree.dirs.len(), 1);
        assert!(tree.max_depth() >= 1);
    }

    #[test]
    fn depths_mode_near_three() {
        let rng = Rng::new(6);
        let mut counts = std::collections::HashMap::new();
        for i in 0..200 {
            let tree = DirTree::generate(100, &mut rng.fork(i));
            for d in &tree.dirs {
                *counts.entry(d.split('/').count()).or_insert(0u32) += 1;
            }
        }
        let mode = counts.iter().max_by_key(|(_, &c)| c).map(|(&d, _)| d).unwrap();
        assert!((2..=4).contains(&mode), "depth mode {mode}, counts {counts:?}");
        let deep: u32 = counts.iter().filter(|(&d, _)| d > 10).map(|(_, &c)| c).sum();
        let total: u32 = counts.values().sum();
        assert!((deep as f64) < total as f64 * 0.05, "too many deep dirs");
    }

    #[test]
    fn placement_in_range() {
        let mut rng = Rng::new(7);
        let tree = DirTree::generate(50, &mut rng);
        for _ in 0..100 {
            let d = tree.place(&mut rng);
            assert!(tree.dirs.iter().any(|x| x == d));
        }
    }

    #[test]
    fn deterministic() {
        let t1 = DirTree::generate(100, &mut Rng::new(9));
        let t2 = DirTree::generate(100, &mut Rng::new(9));
        assert_eq!(t1.dirs, t2.dirs);
    }
}
