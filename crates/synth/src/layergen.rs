//! Layer assembly: prototypes + directory tree → tar → gzip blob.
//!
//! A layer is fully determined by its 64-bit seed: the seed drives the
//! file-count bucket, the pool draws, the directory tree, and file
//! placement. Two images that reference the same seed therefore produce
//! byte-identical blobs, which the registry's content addressing collapses
//! into one shared layer — the mechanism behind Fig. 23.

use crate::calibration::{LAYER_EMPTY_FRACTION, LAYER_FILES_CAP, LAYER_FILE_BUCKETS, LAYER_SINGLE_FILE_FRACTION};
use crate::paths::DirTree;
use crate::pool::FilePool;
use dhub_compress::{gzip_compress, CompressOptions};
use dhub_model::Digest;
use dhub_stats::{LogNormal, Rng};
use dhub_tar::{TarEntry, Writer};

/// A fully built layer blob.
#[derive(Clone, Debug)]
pub struct BuiltLayer {
    /// gzip-compressed tarball — what the registry stores (CLS bytes).
    pub blob: Vec<u8>,
    /// Content digest of `blob`.
    pub digest: Digest,
    /// Sum of contained file sizes (FLS).
    pub fls: u64,
    /// Regular files in the layer.
    pub file_count: u64,
}

impl BuiltLayer {
    /// Compressed layer size.
    pub fn cls(&self) -> u64 {
        self.blob.len() as u64
    }
}

/// Samples a file count for an app layer (Fig. 5 shape: 7 % empty, 27 %
/// single-file, log-normal mixture body).
pub fn sample_file_count(rng: &mut Rng) -> u64 {
    let u = rng.next_f64();
    if u < LAYER_EMPTY_FRACTION {
        return 0;
    }
    if u < LAYER_EMPTY_FRACTION + LAYER_SINGLE_FILE_FRACTION {
        return 1;
    }
    let mut pick = rng.next_f64();
    for &(w, median, sigma) in &LAYER_FILE_BUCKETS {
        if pick < w {
            let d = LogNormal { mu: median.ln(), sigma };
            return (d.sample(rng) as u64).clamp(2, LAYER_FILES_CAP);
        }
        pick -= w;
    }
    2
}

/// Builds an app layer entirely from its seed.
pub fn build_app_layer(pool: &FilePool, seed: u64) -> BuiltLayer {
    let mut rng = Rng::new(seed);
    let nfiles = sample_file_count(&mut rng);
    build_layer_with_files(pool, nfiles, &mut rng)
}

/// Builds a layer with an explicit file count (base chains use this).
pub fn build_layer_with_files(pool: &FilePool, nfiles: u64, rng: &mut Rng) -> BuiltLayer {
    let tree = DirTree::generate(nfiles, rng);
    let mut w = Writer::new();
    // Directories first, parents before children (lexicographic order
    // guarantees that because a parent is a strict prefix).
    let mut dirs = tree.dirs.clone();
    dirs.sort();
    for d in &dirs {
        let mut entry = TarEntry::dir(d);
        // Build timestamps vary between layers; this also keeps dir-only
        // ("empty") layers distinct blobs — in real images only the
        // no-entry layer is byte-identical across images (§V-A).
        entry.mtime = 1_490_000_000 + rng.below(10_000_000);
        w.append(&entry);
    }
    let mut used_paths = std::collections::HashSet::with_capacity(nfiles as usize);
    let mut fls = 0u64;
    // Whiteout entries: overlay-driver deletion markers (`.wh.<name>`,
    // empty files). Real RUN layers that delete files carry these; they are
    // one source of the paper's massively duplicated empty file (§V-B).
    if nfiles > 0 && rng.chance(0.08) {
        let n_wh = 1 + rng.below(2);
        for k in 0..n_wh {
            let dir = tree.place(rng);
            let path = format!("{dir}/.wh.removed-{k}");
            if used_paths.insert(path.clone()) {
                w.append(&TarEntry::file(&path, Vec::new()));
            }
        }
    }
    for i in 0..nfiles {
        let proto = pool.draw(rng);
        let dir = tree.place(rng);
        let mut path = format!("{dir}/{}", proto.name());
        if !used_paths.insert(path.clone()) {
            // Same prototype landed twice in one directory; disambiguate
            // the name (contents stay identical, so dedup still sees it).
            path = format!("{dir}/{}.{i}", proto.name());
            used_paths.insert(path.clone());
        }
        let content = proto.content();
        fls += content.len() as u64;
        let mut entry = TarEntry::file(&path, content);
        entry.mtime = 1_495_000_000 + (i % 1000); // May 2017, like the crawl
        entry.mode = if rng.chance(0.15) { 0o755 } else { 0o644 };
        w.append(&entry);
    }
    let tar = w.finish();
    let blob = gzip_compress(&tar, &CompressOptions::fast());
    let digest = Digest::of(&blob);
    BuiltLayer { blob, digest, fls, file_count: nfiles }
}

/// Builds the famous shared empty layer: a tar with no entries at all
/// (§V-A: one empty layer is referenced by 184,171 images).
pub fn build_empty_layer() -> BuiltLayer {
    let tar = Writer::new().finish();
    let blob = gzip_compress(&tar, &CompressOptions::fast());
    let digest = Digest::of(&blob);
    BuiltLayer { blob, digest, fls: 0, file_count: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::SynthConfig;
    use dhub_compress::gzip_decompress;
    use dhub_tar::read_archive;

    fn pool() -> FilePool {
        FilePool::build(&SynthConfig::tiny(1), 50_000)
    }

    #[test]
    fn layer_is_valid_gzip_tar() {
        let p = pool();
        let layer = build_app_layer(&p, 42);
        let tar = gzip_decompress(&layer.blob).unwrap();
        let entries = read_archive(&tar).unwrap();
        let files: u64 = entries.iter().filter(|e| e.is_file()).count() as u64;
        assert_eq!(files, layer.file_count);
        let fls: u64 = entries.iter().map(|e| e.data().len() as u64).sum();
        assert_eq!(fls, layer.fls);
    }

    #[test]
    fn same_seed_same_blob() {
        let p = pool();
        let a = build_app_layer(&p, 7);
        let b = build_app_layer(&p, 7);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.blob, b.blob);
        let c = build_app_layer(&p, 8);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn file_count_distribution_shape() {
        let mut rng = Rng::new(5);
        let counts: Vec<u64> = (0..20_000).map(|_| sample_file_count(&mut rng)).collect();
        let zero = counts.iter().filter(|&&c| c == 0).count() as f64 / counts.len() as f64;
        let one = counts.iter().filter(|&&c| c == 1).count() as f64 / counts.len() as f64;
        assert!((zero - 0.07).abs() < 0.01, "zero-file fraction {zero}");
        assert!((one - 0.27).abs() < 0.015, "single-file fraction {one}");
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let p50 = sorted[counts.len() / 2];
        assert!((10..60).contains(&p50), "p50 files {p50}");
        assert!(*sorted.last().unwrap() <= LAYER_FILES_CAP);
    }

    #[test]
    fn empty_layer_has_no_entries() {
        let e = build_empty_layer();
        assert_eq!(e.file_count, 0);
        assert_eq!(e.fls, 0);
        let tar = gzip_decompress(&e.blob).unwrap();
        assert!(read_archive(&tar).unwrap().is_empty());
        // Stable digest: every build of the empty layer is the same blob.
        assert_eq!(e.digest, build_empty_layer().digest);
    }

    #[test]
    fn zero_file_app_layer_still_has_dirs() {
        let p = pool();
        // Find a seed that samples 0 files.
        for seed in 0..200 {
            let l = build_app_layer(&p, seed);
            if l.file_count == 0 && l.cls() > 0 {
                let tar = gzip_decompress(&l.blob).unwrap();
                let entries = read_archive(&tar).unwrap();
                assert!(!entries.is_empty(), "dir-only layer expected");
                assert!(entries.iter().all(|e| !e.is_file()));
                return;
            }
        }
        panic!("no zero-file layer in 200 seeds");
    }

    #[test]
    fn duplicate_paths_resolved() {
        // Tiny pools force prototype collisions within a layer.
        let p = FilePool::build(&SynthConfig::tiny(2), 500);
        for seed in 0..20 {
            let layer = build_app_layer(&p, seed);
            let tar = gzip_decompress(&layer.blob).unwrap();
            let entries = read_archive(&tar).unwrap();
            let mut paths = std::collections::HashSet::new();
            for e in &entries {
                assert!(paths.insert(e.path.clone()), "duplicate path {}", e.path);
            }
        }
    }
}
