//! File prototype pools — the engine behind file-level duplication.
//!
//! The paper's central finding is that only ~3 % of files are unique
//! (§V-B): developers install the same packages, copy the same sources,
//! and rebuild the same artifacts. The pool model captures that directly:
//! each taxonomy kind has a finite pool of unique *prototypes*; every file
//! a layer needs is drawn from the kind's pool by Zipf popularity. Dedup
//! behaviour then emerges:
//!
//! * pool size = expected instances × (1 − target redundancy), so per-kind
//!   dedup ratios land on the Fig. 27–29 targets at full draw counts,
//! * Zipf popularity gives the repeat-count skew of Fig. 24 (few hot
//!   prototypes with huge copy counts, a body around a handful of copies),
//! * for sample sizes below the pool size the measured dedup ratio drops —
//!   reproducing the dataset-size growth of Fig. 25 for free.
//!
//! Prototypes are `(kind, size, seed)` triples; bytes are forged lazily so
//! the pool itself is tiny.

use crate::calibration::{kind_redundancy, KindSpec, SynthConfig, KIND_MIX, POOL_ZIPF_EXPONENT};
use crate::forge::{forge, proto_name};
use dhub_model::FileKind;
use dhub_stats::{Categorical, LogNormal, Rng, Zipf};

/// One unique file prototype.
#[derive(Clone, Copy, Debug)]
pub struct Prototype {
    pub kind: FileKind,
    /// Materialized (already scale-divided) size in bytes.
    pub size: u64,
    /// Forge seed — equal seeds ⇒ identical bytes ⇒ one dedup identity.
    pub seed: u64,
    /// Index within the kind pool (names derive from it).
    pub index: u32,
}

impl Prototype {
    /// Forges the prototype's content.
    pub fn content(&self) -> Vec<u8> {
        forge(self.kind, self.size, self.seed)
    }

    /// The prototype's canonical file name.
    pub fn name(&self) -> String {
        proto_name(self.kind, self.index as usize)
    }
}

struct KindPool {
    protos: Vec<Prototype>,
    zipf: Zipf,
}

/// All pools plus the kind-selection distribution.
pub struct FilePool {
    kinds: Vec<Option<KindPool>>,
    /// Selects a kind per file draw (count shares of Fig. 14).
    kind_dist: Categorical,
    /// Maps categorical index → FileKind.
    kind_order: Vec<FileKind>,
}

impl FilePool {
    /// Builds pools sized for `expected_files` total draws.
    pub fn build(cfg: &SynthConfig, expected_files: u64) -> FilePool {
        let mut rng = Rng::new(cfg.seed ^ 0x9E3779B97F4A7C15);
        let mut kinds: Vec<Option<KindPool>> = (0..FileKind::COUNT).map(|_| None).collect();
        let mut weights = Vec::with_capacity(KIND_MIX.len());
        let mut kind_order = Vec::with_capacity(KIND_MIX.len());

        for spec in KIND_MIX.iter() {
            weights.push(spec.count_share);
            kind_order.push(spec.kind);
            let pool = Self::build_kind_pool(cfg, spec, expected_files, &mut rng);
            kinds[spec.kind.index()] = Some(pool);
        }
        FilePool { kinds, kind_dist: Categorical::new(&weights), kind_order }
    }

    fn build_kind_pool(
        cfg: &SynthConfig,
        spec: &KindSpec,
        expected_files: u64,
        rng: &mut Rng,
    ) -> KindPool {
        let expected_instances = (expected_files as f64 * spec.count_share).max(1.0);
        let redundancy = kind_redundancy(spec.kind);
        let unique = ((expected_instances * (1.0 - redundancy)).round() as usize).max(1);
        let size_dist = if spec.median_size > 0.0 {
            Some(LogNormal::from_median_p90(spec.median_size, spec.p90_size.max(spec.median_size)))
        } else {
            None
        };
        let protos = (0..unique)
            .map(|i| {
                let size = match &size_dist {
                    None => 0,
                    Some(d) => {
                        let paper_size = d.sample(rng);
                        ((paper_size / cfg.size_scale as f64) as u64).max(32)
                    }
                };
                Prototype { kind: spec.kind, size, seed: rng.next_u64(), index: i as u32 }
            })
            .collect();
        KindPool { protos, zipf: Zipf::new(unique, POOL_ZIPF_EXPONENT) }
    }

    /// Draws one file: picks a kind by count share, then a prototype by
    /// Zipf popularity within the kind pool.
    pub fn draw(&self, rng: &mut Rng) -> Prototype {
        let kind = self.kind_order[self.kind_dist.sample(rng)];
        self.draw_of_kind(kind, rng)
    }

    /// Draws a prototype of a specific kind.
    pub fn draw_of_kind(&self, kind: FileKind, rng: &mut Rng) -> Prototype {
        let pool = self.kinds[kind.index()].as_ref().expect("kind not in mix");
        let rank = pool.zipf.sample(rng);
        pool.protos[rank - 1]
    }

    /// Number of unique prototypes of a kind.
    pub fn pool_size(&self, kind: FileKind) -> usize {
        self.kinds[kind.index()].as_ref().map(|p| p.protos.len()).unwrap_or(0)
    }

    /// Total unique prototypes across kinds.
    pub fn total_unique(&self) -> usize {
        self.kinds.iter().flatten().map(|p| p.protos.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::TypeGroup;

    fn pool() -> FilePool {
        FilePool::build(&SynthConfig::tiny(1), 100_000)
    }

    #[test]
    fn pool_sizes_match_redundancy_targets() {
        let p = pool();
        // C sources: 10.44 % of 100k files ≈ 10,440 instances at 96.8 %
        // redundancy → ~334 unique prototypes.
        let c = p.pool_size(FileKind::CSource);
        assert!((234..434).contains(&c), "C pool {c}");
        // The empty file pool is a single prototype.
        assert_eq!(p.pool_size(FileKind::Empty), 1);
        // Low-redundancy kinds keep relatively more uniques.
        let lib_ratio = p.pool_size(FileKind::Library) as f64 / (100_000.0 * 0.002);
        assert!((0.3..0.6).contains(&lib_ratio), "lib unique ratio {lib_ratio}");
    }

    #[test]
    fn draws_are_dominated_by_duplicates() {
        let p = pool();
        let mut rng = Rng::new(2);
        let n = 50_000;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let proto = p.draw(&mut rng);
            seen.insert(proto.seed);
        }
        let redundancy = 1.0 - seen.len() as f64 / n as f64;
        // Overall target ≈ 0.857 at full scale; at 50k draws the pools are
        // partially covered so redundancy is a bit lower but still high.
        assert!(redundancy > 0.75, "redundancy {redundancy}");
    }

    #[test]
    fn kind_shares_respected() {
        let p = pool();
        let mut rng = Rng::new(3);
        let n = 100_000;
        let mut doc = 0usize;
        for _ in 0..n {
            if p.draw(&mut rng).kind.group() == TypeGroup::Documents {
                doc += 1;
            }
        }
        let share = doc as f64 / n as f64;
        assert!((0.40..0.48).contains(&share), "doc share {share}");
    }

    #[test]
    fn same_prototype_same_content() {
        let p = pool();
        let mut rng = Rng::new(4);
        let proto = p.draw_of_kind(FileKind::CSource, &mut rng);
        assert_eq!(proto.content(), proto.content());
        assert!(!proto.content().is_empty());
    }

    #[test]
    fn sizes_scaled_down() {
        let p = pool();
        // ELF paper median 95 KB; at size_scale 4096 the scaled median is
        // ~23 bytes but the 32-byte floor applies.
        let mut rng = Rng::new(5);
        for _ in 0..50 {
            let proto = p.draw_of_kind(FileKind::Elf, &mut rng);
            assert!(proto.size >= 32);
            assert!(proto.size < 10_000_000);
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = FilePool::build(&SynthConfig::tiny(9), 10_000);
        let b = FilePool::build(&SynthConfig::tiny(9), 10_000);
        let mut ra = Rng::new(1);
        let mut rb = Rng::new(1);
        for _ in 0..100 {
            let pa = a.draw(&mut ra);
            let pb = b.draw(&mut rb);
            assert_eq!(pa.seed, pb.seed);
            assert_eq!(pa.kind, pb.kind);
        }
    }
}
