//! Top-level hub generation: registry + search index + ground truth.

use crate::calibration::*;
use crate::imagegen::{layer_count_dist, sample_fate, sample_layer_count, sample_pull_count, RepoFate};
use crate::layergen::{build_app_layer, build_empty_layer, build_layer_with_files, BuiltLayer};
use crate::pool::FilePool;
use dhub_model::{Digest, LayerRef, Manifest, RepoName};
use dhub_registry::{Registry, SearchIndex};
use dhub_stats::{Rng, Zipf};
use std::sync::Arc;

/// The generator's own bookkeeping, used by tests and reports to verify
/// what the measurement pipeline recovers.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Repositories with a pullable `latest`.
    pub ok_repos: Vec<RepoName>,
    /// Repositories rejecting anonymous pulls.
    pub auth_repos: Vec<RepoName>,
    /// Repositories without a `latest` tag.
    pub no_latest_repos: Vec<RepoName>,
    /// Digest of the shared empty layer.
    pub empty_layer_digest: Option<Digest>,
    /// Digests of all base-chain layers.
    pub base_layer_digests: Vec<Digest>,
    /// Number of images pushed (all fates, all tags).
    pub images_pushed: usize,
    /// Repositories carrying more than one version tag, with tag counts
    /// (the §VI multi-version extension).
    pub multi_tag_repos: Vec<(RepoName, usize)>,
}

impl GroundTruth {
    /// Total repositories.
    pub fn total_repos(&self) -> usize {
        self.ok_repos.len() + self.auth_repos.len() + self.no_latest_repos.len()
    }
}

/// A generated hub: the registry, its search front-end, and ground truth.
pub struct SyntheticHub {
    pub registry: Arc<Registry>,
    pub search: SearchIndex,
    pub truth: GroundTruth,
    pub config: SynthConfig,
}

/// Deterministic seed for app layer `j` of repo `i`.
fn app_seed(base: u64, repo: usize, j: usize) -> u64 {
    let mut x = base ^ (repo as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (j as u64) << 17;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

/// Well-known official repository names (first indices of the pool).
const OFFICIAL_NAMES: [&str; 20] = [
    "postgres", "mysql", "node", "golang", "python", "httpd", "mongo", "memcached", "alpine",
    "debian", "centos", "busybox", "java", "php", "rabbitmq", "haproxy", "tomcat", "wordpress",
    "elasticsearch", "jenkins",
];

/// One repository's full plan, built in parallel and pushed sequentially.
/// `images` holds every tagged version, oldest first; the paper's study
/// pulls only `latest`, but the version history exists for the §VI
/// extension analysis (multi-version layer reuse).
struct RepoPlan {
    name: RepoName,
    fate: RepoFate,
    pulls: u64,
    images: Vec<(String, Manifest, Vec<Vec<u8>>)>,
}

/// Generates the complete synthetic hub.
pub fn generate_hub(cfg: &SynthConfig) -> SyntheticHub {
    let root = Rng::new(cfg.seed);
    let ok_fraction = 1.0 - cfg.auth_fraction - cfg.no_latest_fraction;
    let expected_files = ((cfg.repos as f64) * ok_fraction * 6.0 * 700.0) as u64 + 200_000;
    let pool = FilePool::build(cfg, expected_files);

    let registry = Arc::new(Registry::new());

    // --- Shared layers: base chains and the empty layer -------------------
    let n_bases = base_pool_size(cfg.repos);
    let bases: Vec<Vec<BuiltLayer>> = dhub_par::par_map_range(cfg.threads, 0..n_bases, |b| {
        let spec = &BASE_ARCHETYPES[b % BASE_ARCHETYPES.len()];
        let mut rng = root.fork(0xBA5E_0000 + b as u64);
        // Front-load the chain: the first layer is the OS snapshot, later
        // layers are incremental additions.
        let mut remaining = spec.files;
        (0..spec.chain)
            .map(|pos| {
                let share = if pos == 0 { remaining * 6 / 10 } else { remaining / (spec.chain - pos) as u64 };
                let share = share.max(1).min(remaining.max(1));
                remaining = remaining.saturating_sub(share);
                build_layer_with_files(&pool, share, &mut rng)
            })
            .collect()
    });
    let empty = build_empty_layer();

    let mut truth = GroundTruth {
        empty_layer_digest: Some(empty.digest),
        ..GroundTruth::default()
    };
    // Pre-store shared blobs so manifests referencing them can be pushed.
    registry.blob_store().put(empty.blob.clone());
    for chain in &bases {
        for layer in chain {
            truth.base_layer_digests.push(layer.digest);
            registry.blob_store().put(layer.blob.clone());
        }
    }

    let layer_dist = layer_count_dist();
    let base_zipf = Zipf::new(n_bases, BASE_ZIPF_EXPONENT);
    let official_count = official_repo_count(cfg.repos).min(cfg.repos);

    // --- Repositories, planned in parallel chunks -------------------------
    const CHUNK: usize = 128;
    let mut idx = 0;
    while idx < cfg.repos {
        let hi = (idx + CHUNK).min(cfg.repos);
        let plans: Vec<RepoPlan> = dhub_par::par_map_range(cfg.threads, idx..hi, |i| {
            plan_repo(cfg, i, official_count, &pool, &bases, &empty, &layer_dist, &base_zipf, &root)
        });
        for plan in plans {
            let authed = plan.fate == RepoFate::AuthRequired;
            registry.create_repo(plan.name.clone(), authed);
            let tags = plan.images.len();
            for (tag, manifest, blobs) in plan.images {
                registry
                    .push_image(&plan.name, &tag, &manifest, blobs)
                    .expect("generator pushes are internally consistent");
                truth.images_pushed += 1;
            }
            registry.add_pulls(&plan.name, plan.pulls);
            if tags > 1 {
                truth.multi_tag_repos.push((plan.name.clone(), tags));
            }
            match plan.fate {
                RepoFate::Ok => truth.ok_repos.push(plan.name),
                RepoFate::AuthRequired => truth.auth_repos.push(plan.name),
                RepoFate::NoLatest => truth.no_latest_repos.push(plan.name),
            }
        }
        idx = hi;
    }

    let all_names: Vec<RepoName> = registry.repo_names();
    let search = SearchIndex::build(all_names, cfg.search_duplication, cfg.search_page_size);

    SyntheticHub { registry, search, truth, config: cfg.clone() }
}

#[allow(clippy::too_many_arguments)]
fn plan_repo(
    cfg: &SynthConfig,
    i: usize,
    official_count: usize,
    pool: &FilePool,
    bases: &[Vec<BuiltLayer>],
    empty: &BuiltLayer,
    layer_dist: &dhub_stats::Categorical,
    base_zipf: &Zipf,
    root: &Rng,
) -> RepoPlan {
    let mut rng = root.fork(0x4E90_0000 + i as u64);

    // Naming: famous first, then official pool, then user repos.
    let name = if i < FAMOUS_REPOS.len().min(cfg.repos) {
        RepoName::parse(FAMOUS_REPOS[i].0).unwrap()
    } else if i < official_count {
        let base = OFFICIAL_NAMES[(i - FAMOUS_REPOS.len()) % OFFICIAL_NAMES.len()];
        if i - FAMOUS_REPOS.len() < OFFICIAL_NAMES.len() {
            RepoName::official(base)
        } else {
            RepoName::official(&format!("{base}{i}"))
        }
    } else {
        let ns = format!("user{}", rng.below((cfg.repos as u64 / 3).max(1)));
        RepoName::user(&ns, &format!("app-{i}"))
    };

    // Officials are maintained: always pullable. Others roll the dice.
    let fate = if i < official_count { RepoFate::Ok } else { sample_fate(cfg, &mut rng) };
    let pulls = if i < FAMOUS_REPOS.len() { FAMOUS_REPOS[i].1 } else { sample_pull_count(&mut rng) };

    match fate {
        RepoFate::Ok => {
            let total_layers = sample_layer_count(layer_dist, &mut rng);
            let mut refs: Vec<LayerRef> = Vec::with_capacity(total_layers);
            let mut slots = total_layers;

            let use_empty = slots > 1 && rng.chance(EMPTY_LAYER_IMAGE_FRACTION);
            if use_empty {
                slots -= 1;
            }
            if slots > 1 && rng.chance(BASE_CHAIN_IMAGE_FRACTION) {
                let b = base_zipf.sample(&mut rng) - 1;
                let chain = &bases[b];
                let take = chain.len().min(slots - 1);
                for layer in &chain[..take] {
                    refs.push(LayerRef { digest: layer.digest, size: layer.cls() });
                }
                slots -= take;
            }
            let mut app_seeds: Vec<u64> = Vec::with_capacity(slots);
            for j in 0..slots {
                // Occasionally reuse a neighbour repo's app layer seed —
                // identical seed ⇒ identical blob ⇒ a shared (refcount 2+)
                // layer in the registry (Fig. 23's small sharing bucket).
                let seed = if i >= 16 && rng.chance(APP_LAYER_REUSE_PROB) {
                    let donor = i - 1 - rng.below(15) as usize;
                    app_seed(cfg.seed, donor, rng.below(2) as usize)
                } else {
                    app_seed(cfg.seed, i, j)
                };
                app_seeds.push(seed);
            }

            // Older tagged versions (§VI extension): each version differs
            // from its successor in the topmost app layer — the incremental
            // rebuild pattern real registries exhibit.
            let old_versions = if rng.chance(0.45) { 1 + rng.below(4) as usize } else { 0 };
            let mut images: Vec<(String, Manifest, Vec<Vec<u8>>)> = Vec::with_capacity(old_versions + 1);
            for v in 0..=old_versions {
                // v == old_versions is the newest (latest); lower v replaces
                // the last app layer with its era's build.
                let mut vrefs = refs.clone();
                let mut vblobs: Vec<Vec<u8>> = Vec::new();
                for (j, &seed) in app_seeds.iter().enumerate() {
                    let seed = if v < old_versions && j == app_seeds.len() - 1 {
                        app_seed(cfg.seed, i, 0x900 + v)
                    } else {
                        seed
                    };
                    let layer = build_app_layer(pool, seed);
                    vrefs.push(LayerRef { digest: layer.digest, size: layer.cls() });
                    vblobs.push(layer.blob);
                }
                if use_empty {
                    vrefs.push(LayerRef { digest: empty.digest, size: empty.blob.len() as u64 });
                }
                let tag = if v == old_versions { "latest".to_string() } else { format!("v{}", v + 1) };
                images.push((tag, Manifest::new(vrefs), vblobs));
            }
            RepoPlan { name, fate, pulls, images }
        }
        RepoFate::AuthRequired | RepoFate::NoLatest => {
            // Content exists but the study cannot (auth) or does not
            // (no latest) fetch it; keep it small.
            let layer = build_layer_with_files(pool, 3, &mut rng);
            let refs = vec![LayerRef { digest: layer.digest, size: layer.cls() }];
            let tag = if fate == RepoFate::NoLatest { "v1" } else { "latest" };
            RepoPlan {
                name,
                fate,
                pulls,
                images: vec![(tag.to_string(), Manifest::new(refs), vec![layer.blob])],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> &'static SyntheticHub {
        static HUB: std::sync::OnceLock<SyntheticHub> = std::sync::OnceLock::new();
        HUB.get_or_init(|| generate_hub(&SynthConfig::tiny(77)))
    }

    #[test]
    fn hub_has_expected_repo_population() {
        let h = hub();
        assert_eq!(h.truth.total_repos(), 90);
        assert_eq!(h.registry.stats().repositories, 90);
        // Every repo has ≥1 image; version histories push extra tags.
        assert!(h.truth.images_pushed >= 90, "{}", h.truth.images_pushed);
        // Fate split roughly matches configured fractions (tiny sample).
        assert!(h.truth.ok_repos.len() > 50, "ok repos {}", h.truth.ok_repos.len());
        assert!(!h.truth.no_latest_repos.is_empty());
    }

    #[test]
    fn famous_repos_exist_with_reported_pulls() {
        let h = hub();
        // The shared fixture's other tests may add a handful of test pulls
        // on top of the implanted counters.
        let nginx = RepoName::official("nginx");
        let n = h.registry.pull_count(&nginx).unwrap();
        assert!((650_000_000..650_001_000).contains(&n), "nginx pulls {n}");
        let cad = RepoName::user("google", "cadvisor");
        let c = h.registry.pull_count(&cad).unwrap();
        assert!((434_000_000..434_001_000).contains(&c), "cadvisor pulls {c}");
    }

    #[test]
    fn ok_repos_are_pullable_and_failures_fail_right() {
        let h = hub();
        for r in h.truth.ok_repos.iter().take(10) {
            let sess = h.registry.get_manifest(r, "latest", false).expect("latest pullable");
            assert!(!sess.manifest.layers.is_empty());
            for l in &sess.manifest.layers {
                assert!(h.registry.get_blob(&l.digest).is_ok(), "dangling layer");
            }
        }
        for r in h.truth.auth_repos.iter().take(5) {
            assert_eq!(
                h.registry.get_manifest(r, "latest", false).unwrap_err(),
                dhub_registry::ApiError::AuthRequired
            );
        }
        for r in h.truth.no_latest_repos.iter().take(5) {
            assert_eq!(
                h.registry.get_manifest(r, "latest", false).unwrap_err(),
                dhub_registry::ApiError::TagNotFound
            );
        }
    }

    #[test]
    fn empty_layer_widely_shared() {
        let h = hub();
        let empty = h.truth.empty_layer_digest.unwrap();
        let mut refs = 0;
        for r in &h.truth.ok_repos {
            let sess = h.registry.get_manifest(r, "latest", false).unwrap();
            if sess.manifest.layers.iter().any(|l| l.digest == empty) {
                refs += 1;
            }
        }
        let share = refs as f64 / h.truth.ok_repos.len() as f64;
        assert!((0.3..0.7).contains(&share), "empty-layer share {share}");
    }

    #[test]
    fn base_layers_shared_across_images() {
        let h = hub();
        let base_set: std::collections::HashSet<_> = h.truth.base_layer_digests.iter().collect();
        let mut base_refs = 0usize;
        for r in &h.truth.ok_repos {
            let sess = h.registry.get_manifest(r, "latest", false).unwrap();
            base_refs += sess.manifest.layers.iter().filter(|l| base_set.contains(&l.digest)).count();
        }
        // Many more references than unique base layers ⇒ real sharing.
        assert!(base_refs > base_set.len() * 2, "refs {base_refs} vs unique {}", base_set.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_hub(&SynthConfig::tiny(5).with_repos(20));
        let b = generate_hub(&SynthConfig::tiny(5).with_repos(20));
        assert_eq!(a.registry.stats(), b.registry.stats());
        let mut an = a.registry.repo_names();
        let mut bn = b.registry.repo_names();
        an.sort();
        bn.sort();
        assert_eq!(an, bn);
    }

    #[test]
    fn version_histories_share_layers() {
        let h = hub();
        assert!(!h.truth.multi_tag_repos.is_empty(), "some repos must carry version tags");
        let (repo, tags) = &h.truth.multi_tag_repos[0];
        assert!(*tags >= 2);
        let names = h.registry.tags(repo).unwrap();
        assert!(names.len() >= 2, "{names:?}");
        // Adjacent versions share all but ~one layer.
        let latest = h.registry.get_manifest(repo, "latest", true).unwrap().manifest;
        let v1 = h.registry.get_manifest(repo, "v1", true).unwrap().manifest;
        let set: std::collections::HashSet<_> = latest.layers.iter().map(|l| l.digest).collect();
        let shared = v1.layers.iter().filter(|l| set.contains(&l.digest)).count();
        assert!(shared + 1 >= v1.layers.len(), "versions must share most layers");
        assert!(shared >= 1);
    }

    #[test]
    fn search_index_covers_repos_with_duplication() {
        let h = hub();
        let ratio = h.search.result_count() as f64 / 90.0;
        assert!((1.25..1.55).contains(&ratio), "duplication {ratio}");
    }
}
