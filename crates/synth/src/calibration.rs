//! Calibration constants — every number here cites the paper statistic it
//! reproduces. EXPERIMENTS.md compares what the pipeline measures back
//! against these targets.

use dhub_model::{FileKind, TypeGroup};

/// Generator configuration. All sizes are *paper-scale bytes*; the
/// generator divides by `size_scale` when materializing content so a
/// 457k-repo / 167 TB population shape fits on a laptop.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// PRNG seed; the whole hub is a pure function of it.
    pub seed: u64,
    /// Number of distinct repositories (paper: 457,627).
    pub repos: usize,
    /// Divide all file sizes by this factor (1 = paper scale).
    pub size_scale: u64,
    /// Fraction of repos whose pulls require auth (paper: 13 % of the
    /// 111,384 failures ≈ 3.2 % of repos, §III-B).
    pub auth_fraction: f64,
    /// Fraction of repos without a `latest` tag (87 % of failures ≈ 21.1 %).
    pub no_latest_fraction: f64,
    /// Search-index duplication factor (634,412 hits / 457,627 repos).
    pub search_duplication: f64,
    /// Search page size for the crawler.
    pub search_page_size: usize,
    /// Threads for parallel generation.
    pub threads: usize,
}

impl SynthConfig {
    /// Default benchmark scale: big enough for stable distribution shapes,
    /// small enough to generate in seconds.
    pub fn default_scale(seed: u64) -> SynthConfig {
        SynthConfig {
            seed,
            repos: 800,
            size_scale: 128,
            auth_fraction: 0.032,
            no_latest_fraction: 0.211,
            search_duplication: 634_412.0 / 457_627.0,
            search_page_size: 25,
            threads: dhub_par::default_threads(),
        }
    }

    /// Tiny scale for unit/integration tests.
    pub fn tiny(seed: u64) -> SynthConfig {
        SynthConfig { repos: 90, size_scale: 1024, ..SynthConfig::default_scale(seed) }
    }

    /// Overrides the repository count.
    pub fn with_repos(mut self, repos: usize) -> SynthConfig {
        self.repos = repos;
        self
    }
}

// --- Layer-level anchors (Figs. 3–7) -------------------------------------

/// Median / p90 of files-in-layer size, uncompressed (Fig. 3a: 4 MB / 177 MB).
pub const LAYER_FLS_MEDIAN: f64 = 4.0e6;
pub const LAYER_FLS_P90: f64 = 177.0e6;

/// Fraction of layers with zero files (§IV-A: 7 %).
pub const LAYER_EMPTY_FRACTION: f64 = 0.07;
/// Fraction of layers with exactly one file (§IV-A: 27 %).
pub const LAYER_SINGLE_FILE_FRACTION: f64 = 0.27;

/// Files-per-layer body (conditional on ≥ 2 files): a three-bucket
/// log-normal mixture `(weight, median, sigma)` — small RUN layers, package
/// layers, and OS/stack layers — shaped for Fig. 5's p50 = 30 with a heavy
/// tail. The paper's extreme tail (p90 = 7,410; max 826,196) is truncated
/// at [`LAYER_FILES_CAP`] so a laptop can materialize the dataset;
/// EXPERIMENTS.md discusses the effect.
pub const LAYER_FILE_BUCKETS: [(f64, f64, f64); 3] =
    [(0.606, 30.0, 1.1), (0.273, 250.0, 1.0), (0.121, 3500.0, 0.7)];
/// Hard cap on files per generated layer.
pub const LAYER_FILES_CAP: u64 = 30_000;

/// Directories per file (Fig. 5 p50 30 files vs Fig. 6 p50 11 dirs ≈ 2.7).
pub const FILES_PER_DIR: f64 = 2.7;

/// Directory-depth weights for depths 1..=12; mode 3 (Fig. 7b), p50 < 4,
/// p90 < 10 (Fig. 7a).
pub const DEPTH_WEIGHTS: [f64; 12] =
    [0.12, 0.28, 0.51, 0.03, 0.020, 0.014, 0.010, 0.006, 0.004, 0.003, 0.002, 0.001];

// --- Image-level anchors (Figs. 9–12) ------------------------------------

/// Layers-per-image pmf support (Fig. 10: p50 8, p90 18, mode 8, max 120).
pub const LAYERS_PER_IMAGE_MAX: usize = 120;
/// Fraction of single-layer images (7,060 / 355,319 ≈ 2 %).
pub const SINGLE_LAYER_IMAGE_FRACTION: f64 = 0.02;
/// Log-normal body for layers/image before the mode boost.
pub const LAYERS_PER_IMAGE_MEDIAN: f64 = 8.0;
pub const LAYERS_PER_IMAGE_P90: f64 = 18.0;
/// Multiplier applied to the pmf at exactly 8 layers, reproducing the
/// distinct mode the paper observes (51,300 images with 8 layers).
pub const LAYERS_PER_IMAGE_MODE_BOOST: f64 = 1.6;

/// Probability an image contains the famous shared *empty layer*
/// (184,171 / 355,319 ≈ 52 %, §V-A).
pub const EMPTY_LAYER_IMAGE_FRACTION: f64 = 0.52;

/// Probability an image is built `FROM` a shared base chain (rather than
/// from scratch). Drives Fig. 23's layer-sharing head.
pub const BASE_CHAIN_IMAGE_FRACTION: f64 = 0.85;

/// Probability an app layer is reused from a neighbour image of the same
/// namespace (produces the refcount-2 bucket of Fig. 23: ~5 %).
pub const APP_LAYER_REUSE_PROB: f64 = 0.18;

// --- Base images ----------------------------------------------------------

/// One shared base image: a chain of layers many images build on.
pub struct BaseSpec {
    /// Total files across the chain (ubuntu:14.04 ≈ 3k, alpine ≈ 100).
    pub files: u64,
    /// Total FLS across the chain, paper-scale bytes.
    pub bytes: f64,
    /// Chain length in layers.
    pub chain: usize,
}

/// Archetypes mixed (cyclically) into the base pool; the pool is ranked by
/// Zipf popularity so alpine/debian-like bases dominate references.
pub const BASE_ARCHETYPES: [BaseSpec; 5] = [
    BaseSpec { files: 80, bytes: 5.0e6, chain: 1 },     // alpine-like
    BaseSpec { files: 450, bytes: 55.0e6, chain: 3 },   // debian-slim-like
    BaseSpec { files: 1500, bytes: 190.0e6, chain: 4 }, // ubuntu-like
    BaseSpec { files: 5000, bytes: 600.0e6, chain: 6 }, // language stack
    BaseSpec { files: 15000, bytes: 1.6e9, chain: 8 },  // anaconda-like
];

/// Number of distinct base images as a function of repo count.
pub fn base_pool_size(repos: usize) -> usize {
    (repos / 40).clamp(5, 400)
}

/// Zipf exponent over base-image popularity (drives the 29k–33k reference
/// counts of the top base layers in §V-A).
pub const BASE_ZIPF_EXPONENT: f64 = 1.05;

// --- File-type mix (Figs. 13–22) ------------------------------------------

/// Per-kind generation parameters: `(kind, count_share, median_size,
/// p90_size)` — sizes in paper-scale bytes. Count shares sum to 1.0 and are
/// chosen so the group-level count/capacity shares match Figs. 14–22 (see
/// DESIGN.md §4 for the arithmetic).
pub struct KindSpec {
    pub kind: FileKind,
    pub count_share: f64,
    pub median_size: f64,
    pub p90_size: f64,
}

/// The full kind mix.
pub const KIND_MIX: [KindSpec; 48] = [
    // EOL (11 % count, 37 % capacity; Fig. 16: IR 64 % / ELF 30 % of EOL).
    KindSpec { kind: FileKind::Elf, count_share: 0.033, median_size: 95_000.0, p90_size: 600_000.0 }, // avg ≈ 312 KB
    KindSpec { kind: FileKind::PythonBytecode, count_share: 0.0572, median_size: 4_500.0, p90_size: 20_000.0 }, // avg ≈ 9 KB
    KindSpec { kind: FileKind::JavaClass, count_share: 0.009, median_size: 3_000.0, p90_size: 15_000.0 },
    KindSpec { kind: FileKind::TerminfoCompiled, count_share: 0.004, median_size: 1_500.0, p90_size: 3_500.0 },
    KindSpec { kind: FileKind::PeExecutable, count_share: 0.0022, median_size: 60_000.0, p90_size: 500_000.0 },
    KindSpec { kind: FileKind::MachO, count_share: 0.00001, median_size: 80_000.0, p90_size: 400_000.0 },
    KindSpec { kind: FileKind::Coff, count_share: 0.0006, median_size: 20_000.0, p90_size: 120_000.0 },
    KindSpec { kind: FileKind::DebPackage, count_share: 0.0012, median_size: 90_000.0, p90_size: 900_000.0 },
    KindSpec { kind: FileKind::RpmPackage, count_share: 0.0008, median_size: 90_000.0, p90_size: 900_000.0 },
    KindSpec { kind: FileKind::Library, count_share: 0.002, median_size: 50_000.0, p90_size: 500_000.0 },
    // Source code (13 % count; Fig. 17: C/C++ 80.3 %, Perl 9 %, Ruby 8 %).
    KindSpec { kind: FileKind::CSource, count_share: 0.1044, median_size: 3_200.0, p90_size: 14_000.0 },
    KindSpec { kind: FileKind::Perl5Module, count_share: 0.0117, median_size: 4_400.0, p90_size: 19_000.0 },
    KindSpec { kind: FileKind::RubyModule, count_share: 0.0104, median_size: 1_300.0, p90_size: 5_000.0 },
    KindSpec { kind: FileKind::PascalSource, count_share: 0.0011, median_size: 3_000.0, p90_size: 12_000.0 },
    KindSpec { kind: FileKind::FortranSource, count_share: 0.0009, median_size: 3_000.0, p90_size: 12_000.0 },
    KindSpec { kind: FileKind::ApplesoftBasic, count_share: 0.0007, median_size: 2_000.0, p90_size: 8_000.0 },
    KindSpec { kind: FileKind::LispScheme, count_share: 0.0008, median_size: 2_500.0, p90_size: 10_000.0 },
    // Scripts (9 % count; Fig. 18: Python 53.5 %, shell 20 %, Ruby 10 %).
    KindSpec { kind: FileKind::PythonScript, count_share: 0.0482, median_size: 3_500.0, p90_size: 15_000.0 },
    KindSpec { kind: FileKind::ShellScript, count_share: 0.018, median_size: 550.0, p90_size: 1_700.0 },
    KindSpec { kind: FileKind::RubyScript, count_share: 0.009, median_size: 1_400.0, p90_size: 5_500.0 },
    KindSpec { kind: FileKind::PerlScript, count_share: 0.0045, median_size: 2_500.0, p90_size: 10_000.0 },
    KindSpec { kind: FileKind::PhpScript, count_share: 0.0035, median_size: 2_500.0, p90_size: 10_000.0 },
    KindSpec { kind: FileKind::Makefile, count_share: 0.0025, median_size: 1_500.0, p90_size: 6_000.0 },
    KindSpec { kind: FileKind::M4Macro, count_share: 0.0012, median_size: 2_000.0, p90_size: 8_000.0 },
    KindSpec { kind: FileKind::NodeScript, count_share: 0.0016, median_size: 2_000.0, p90_size: 9_000.0 },
    KindSpec { kind: FileKind::TclScript, count_share: 0.0008, median_size: 1_800.0, p90_size: 7_000.0 },
    KindSpec { kind: FileKind::AwkScript, count_share: 0.0007, median_size: 1_200.0, p90_size: 4_000.0 },
    // Documents (44 % count, 14 % capacity; Fig. 19: ASCII 80 %, XML/HTML 13 %).
    KindSpec { kind: FileKind::AsciiText, count_share: 0.352, median_size: 2_800.0, p90_size: 16_000.0 },
    KindSpec { kind: FileKind::Utf8Text, count_share: 0.022, median_size: 2_800.0, p90_size: 16_000.0 },
    KindSpec { kind: FileKind::Iso8859Text, count_share: 0.0018, median_size: 2_800.0, p90_size: 16_000.0 },
    KindSpec { kind: FileKind::XmlHtml, count_share: 0.0572, median_size: 4_800.0, p90_size: 26_000.0 },
    KindSpec { kind: FileKind::PdfPs, count_share: 0.004, median_size: 30_000.0, p90_size: 300_000.0 },
    KindSpec { kind: FileKind::LatexDoc, count_share: 0.003, median_size: 4_000.0, p90_size: 20_000.0 },
    // Archival (≈7 % count, 23 % capacity; Fig. 20 + §IV-C avg sizes).
    KindSpec { kind: FileKind::ZipGzip, count_share: 0.0674, median_size: 22_000.0, p90_size: 200_000.0 }, // avg ≈ 67 KB
    KindSpec { kind: FileKind::Bzip2, count_share: 0.00105, median_size: 65_000.0, p90_size: 480_000.0 },  // avg ≈ 199 KB
    KindSpec { kind: FileKind::TarArchive, count_share: 0.00105, median_size: 140_000.0, p90_size: 800_000.0 }, // avg ≈ 466 KB
    KindSpec { kind: FileKind::XzArchive, count_share: 0.0005, median_size: 160_000.0, p90_size: 950_000.0 },   // avg ≈ 534 KB
    // Image data (4 % count; Fig. 22: PNG 67 %, JPEG ≈ 15 %).
    KindSpec { kind: FileKind::Png, count_share: 0.0268, median_size: 5_000.0, p90_size: 30_000.0 },
    KindSpec { kind: FileKind::Jpeg, count_share: 0.006, median_size: 15_000.0, p90_size: 90_000.0 },
    KindSpec { kind: FileKind::Svg, count_share: 0.004, median_size: 3_000.0, p90_size: 15_000.0 },
    KindSpec { kind: FileKind::Gif, count_share: 0.0032, median_size: 5_000.0, p90_size: 30_000.0 },
    // Databases (0.3 % count, avg 978.8 KB; Fig. 21: BDB 33 %, MySQL 30 %,
    // SQLite 7 % count / 57 % capacity).
    KindSpec { kind: FileKind::BerkeleyDb, count_share: 0.00095, median_size: 120_000.0, p90_size: 900_000.0 },
    KindSpec { kind: FileKind::MysqlDb, count_share: 0.00085, median_size: 120_000.0, p90_size: 900_000.0 },
    KindSpec { kind: FileKind::SqliteDb, count_share: 0.00015, median_size: 2_500_000.0, p90_size: 18_000_000.0 },
    KindSpec { kind: FileKind::OtherDb, count_share: 0.00055, median_size: 200_000.0, p90_size: 1_500_000.0 },
    // Other: empty files (the most-duplicated object in the dataset) and
    // misc binary/video.
    KindSpec { kind: FileKind::Empty, count_share: 0.03, median_size: 0.0, p90_size: 0.0 },
    KindSpec { kind: FileKind::OtherBinary, count_share: 0.08719, median_size: 3_500.0, p90_size: 40_000.0 },
    KindSpec { kind: FileKind::Video, count_share: 0.0003, median_size: 800_000.0, p90_size: 8_000_000.0 },
];

/// Target per-group redundancy (fraction of file instances removable by
/// dedup) at full scale — Fig. 27: SC 96.8 %, Scr 98 %, Doc 92 %, EOL 86 %,
/// Arch 86 %, Img 86 %, DB 76 %.
pub fn group_redundancy(group: TypeGroup) -> f64 {
    match group {
        TypeGroup::SourceCode => 0.968,
        TypeGroup::Scripts => 0.98,
        TypeGroup::Documents => 0.92,
        TypeGroup::Eol => 0.86,
        TypeGroup::Archival => 0.86,
        TypeGroup::ImageData => 0.86,
        TypeGroup::Database => 0.76,
        TypeGroup::Other => 0.90,
    }
}

/// Per-kind redundancy overrides inside EOL/SC (Figs. 28–29): libraries
/// 53.5 %, COFF 61 %, ELF/IR/PE ≈ 87 %, Lisp/Scheme lower than other SC.
pub fn kind_redundancy(kind: FileKind) -> f64 {
    match kind {
        FileKind::Library => 0.535,
        FileKind::Coff => 0.61,
        FileKind::Elf | FileKind::PeExecutable => 0.87,
        FileKind::PythonBytecode | FileKind::JavaClass | FileKind::TerminfoCompiled => 0.87,
        FileKind::LispScheme => 0.72,
        FileKind::Empty => 0.99999, // one global empty file
        k => group_redundancy(k.group()),
    }
}

/// Zipf exponent over prototype popularity within a pool — shapes the
/// repeat-count CDF of Fig. 24 (p50 ≈ 4 copies, p90 ≤ 10, huge maximum).
pub const POOL_ZIPF_EXPONENT: f64 = 0.85;

// --- Popularity (Fig. 8) ---------------------------------------------------

/// Mixture weights for repository pull counts: dormant / community /
/// popular-tail. Tuned for p50 = 40, p90 = 333, secondary histogram peak
/// near 37, and extreme head skew.
pub const PULLS_DORMANT_WEIGHT: f64 = 0.18;
pub const PULLS_COMMUNITY_WEIGHT: f64 = 0.67;
/// Community component: log-normal with mode ≈ 31 (the "peak at 37").
pub const PULLS_COMMUNITY_MEDIAN: f64 = 45.0;
pub const PULLS_COMMUNITY_SIGMA: f64 = 0.6;
/// Popular tail: bounded Pareto.
pub const PULLS_TAIL_LO: f64 = 300.0;
pub const PULLS_TAIL_HI: f64 = 5.0e6;
pub const PULLS_TAIL_ALPHA: f64 = 0.85;

/// The famous repositories the paper names, with their reported pull
/// counts (§IV-B): nginx 650 M, cadvisor 434 M, redis 264 M,
/// registrator 212 M, ubuntu 28 M.
pub const FAMOUS_REPOS: [(&str, u64); 5] = [
    ("nginx", 650_000_000),
    ("google/cadvisor", 434_000_000),
    ("redis", 264_000_000),
    ("gliderlabs/registrator", 212_000_000),
    ("ubuntu", 28_000_000),
];

/// Number of official repositories (paper: "less than 200").
pub fn official_repo_count(repos: usize) -> usize {
    (repos / 60).clamp(3, 190)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_mix_shares_sum_to_one() {
        let total: f64 = KIND_MIX.iter().map(|k| k.count_share).sum();
        assert!((total - 1.0).abs() < 1e-6, "shares sum to {total}");
    }

    #[test]
    fn kind_mix_group_count_shares_match_fig14() {
        let mut by_group = std::collections::HashMap::new();
        for spec in &KIND_MIX {
            *by_group.entry(spec.kind.group()).or_insert(0.0) += spec.count_share;
        }
        // Fig. 14a: Doc 44 %, SC 13 %, EOL 11 %, Scr 9 %, Img 4 %.
        assert!((by_group[&TypeGroup::Documents] - 0.44).abs() < 0.01);
        assert!((by_group[&TypeGroup::SourceCode] - 0.13).abs() < 0.01);
        assert!((by_group[&TypeGroup::Eol] - 0.11).abs() < 0.01);
        assert!((by_group[&TypeGroup::Scripts] - 0.09).abs() < 0.01);
        assert!((by_group[&TypeGroup::ImageData] - 0.04).abs() < 0.005);
    }

    #[test]
    fn capacity_shares_match_fig14() {
        // Approximate per-kind mean as exp(mu + sigma^2/2) of the log-normal
        // implied by (median, p90).
        let mut total = 0.0;
        let mut by_group = std::collections::HashMap::new();
        for spec in &KIND_MIX {
            if spec.median_size == 0.0 {
                continue;
            }
            let sigma = (spec.p90_size / spec.median_size).ln() / 1.2816;
            let mean = spec.median_size * (sigma * sigma / 2.0).exp();
            let cap = spec.count_share * mean;
            total += cap;
            *by_group.entry(spec.kind.group()).or_insert(0.0) += cap;
        }
        let share = |g: TypeGroup| by_group.get(&g).copied().unwrap_or(0.0) / total;
        // Fig. 14b: EOL 37 %, Arch 23 %, Doc 14 %.
        assert!((share(TypeGroup::Eol) - 0.37).abs() < 0.06, "EOL {}", share(TypeGroup::Eol));
        assert!((share(TypeGroup::Archival) - 0.23).abs() < 0.05, "Arch {}", share(TypeGroup::Archival));
        assert!((share(TypeGroup::Documents) - 0.14).abs() < 0.05, "Doc {}", share(TypeGroup::Documents));
    }

    #[test]
    fn depth_weights_mode_is_three() {
        let max = DEPTH_WEIGHTS.iter().cloned().fold(0.0, f64::max);
        assert_eq!(DEPTH_WEIGHTS[2], max);
    }

    #[test]
    fn redundancy_targets_in_unit_interval() {
        for g in TypeGroup::ALL {
            let r = group_redundancy(g);
            assert!((0.0..1.0).contains(&r));
        }
        assert!(kind_redundancy(FileKind::Library) < kind_redundancy(FileKind::Elf));
    }

    #[test]
    fn configs_are_sane() {
        let c = SynthConfig::default_scale(1);
        assert!(c.repos > 500);
        assert!(c.auth_fraction + c.no_latest_fraction < 0.5);
        let t = SynthConfig::tiny(1);
        assert!(t.repos < c.repos);
        assert!(t.size_scale > c.size_scale);
    }
}
