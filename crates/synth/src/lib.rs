//! Calibrated synthetic Docker Hub generator.
//!
//! The paper measured a 47 TB crawl of the real Docker Hub; that snapshot
//! is not reproducible, so this crate builds the closest synthetic
//! equivalent: a registry whose *marginal distributions* match every
//! number the paper reports (see [`calibration`] for the full list with
//! citations), at laptop scale. The generator works bottom-up exactly like
//! real image builds do:
//!
//! * [`forge`] — fabricates file contents per taxonomy type with *valid
//!   magic signatures* and realistic compressibility, so the analyzer's
//!   classifier and the DEFLATE codec measure real properties rather than
//!   generator labels,
//! * [`pool`] — per-type pools of unique file prototypes with Zipf
//!   popularity; file-level duplication across layers (the paper's central
//!   finding) emerges from layers drawing from shared pools,
//! * [`layergen`] — assembles directory trees + files into tar layers and
//!   gzip-compresses them,
//! * [`imagegen`]/[`hubgen`] — stacks shared base chains, app layers, and
//!   the famous empty layer into images, pushes everything into a
//!   [`dhub_registry::Registry`], implants pull counts, and builds the
//!   search index the crawler will scrape.
//!
//! Everything is deterministic given `SynthConfig::seed`.

pub mod calibration;
pub mod forge;
pub mod hubgen;
pub mod imagegen;
pub mod layergen;
pub mod paths;
pub mod pool;

pub use calibration::SynthConfig;
pub use hubgen::{generate_hub, GroundTruth, SyntheticHub};
