//! Per-worker scratch arena for the layer-analysis hot path.
//!
//! Decompressing a layer needs a buffer as large as its unpacked tar;
//! allocating (and faulting in) a fresh one per layer dominates small-layer
//! analysis cost. A [`Scratch`] owns that buffer and hands it out cleared
//! but with capacity intact, so after a short warmup every layer a worker
//! touches decompresses into already-hot memory.
//!
//! Ownership rules:
//!
//! * [`Scratch::tar_buf`] clears the buffer and returns it; the borrow
//!   (and everything derived from it — `TarView` entries, file slices,
//!   digest inputs) must end before the next `tar_buf` call. The borrow
//!   checker enforces this; the fused analyze+ingest path threads the
//!   scratch lifetime through its entry sink for exactly this reason.
//! * Workers reach their arena through the thread-local [`with_scratch`];
//!   a `Scratch` is never shared across threads.
//! * [`ScratchStats`] counts acquires and capacity-growth events, which is
//!   how tests assert the no-allocation-after-warmup property without a
//!   global allocator hook.

use std::cell::RefCell;

/// Reuse statistics for one arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Times the buffer was handed out.
    pub acquires: u64,
    /// Times handing it out (or use since) found the capacity had to grow.
    /// After warmup this stops moving while `acquires` keeps counting.
    pub grows: u64,
    /// Current buffer capacity in bytes.
    pub capacity: usize,
}

/// Reusable per-worker buffers.
#[derive(Default)]
pub struct Scratch {
    tar: Vec<u8>,
    acquires: u64,
    grows: u64,
    /// Capacity observed at the last acquire; growth since then is charged
    /// to `grows` lazily (the consumer grows the buffer after we hand it
    /// out, so it can only be observed on the next call).
    last_cap: usize,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Hands out the decompression buffer, cleared but with capacity kept.
    #[allow(clippy::missing_panics_doc)]
    pub fn tar_buf(&mut self) -> &mut Vec<u8> {
        self.settle_growth();
        self.acquires += 1;
        self.tar.clear();
        &mut self.tar
    }

    /// Length of the buffer contents as of the last use (the decompressed
    /// tar size of the most recent layer).
    pub fn tar_len(&self) -> usize {
        self.tar.len()
    }

    /// Current reuse statistics.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            acquires: self.acquires,
            grows: self.grows + u64::from(self.tar.capacity() > self.last_cap),
            capacity: self.tar.capacity(),
        }
    }

    fn settle_growth(&mut self) {
        if self.tar.capacity() > self.last_cap {
            self.grows += 1;
            self.last_cap = self.tar.capacity();
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this thread's scratch arena.
///
/// Inside a [`par_map`](crate::par_map) worker the arena persists across
/// every item the worker processes in that call (and, on the caller
/// thread — e.g. `threads == 1` — across calls), which is what amortizes
/// the decompression buffer over a whole batch of layers.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_survives_acquires() {
        let mut s = Scratch::new();
        s.tar_buf().extend_from_slice(&[7u8; 10_000]);
        let cap = s.stats().capacity;
        assert!(cap >= 10_000);
        for _ in 0..5 {
            let b = s.tar_buf();
            assert!(b.is_empty(), "buffer must come back cleared");
            b.extend_from_slice(&[1u8; 8_000]);
        }
        assert_eq!(s.stats().capacity, cap, "no regrowth for smaller uses");
        assert_eq!(s.stats().acquires, 6);
    }

    #[test]
    fn grows_counts_growth_events_only() {
        let mut s = Scratch::new();
        s.tar_buf().extend_from_slice(&[0u8; 1000]);
        assert_eq!(s.stats().grows, 1);
        // Same-size reuse: warm.
        s.tar_buf().extend_from_slice(&[0u8; 1000]);
        assert_eq!(s.stats().grows, 1);
        // Bigger use: one more growth event.
        s.tar_buf().extend_from_slice(&[0u8; 50_000]);
        assert_eq!(s.stats().grows, 2);
        s.tar_buf().extend_from_slice(&[0u8; 40_000]);
        assert_eq!(s.stats().grows, 2);
    }

    #[test]
    fn tar_len_reports_last_use() {
        let mut s = Scratch::new();
        s.tar_buf().extend_from_slice(&[0u8; 123]);
        assert_eq!(s.tar_len(), 123);
    }

    #[test]
    fn thread_local_persists_on_same_thread() {
        let cap0 = with_scratch(|s| {
            s.tar_buf().extend_from_slice(&[0u8; 4096]);
            s.stats().capacity
        });
        let cap1 = with_scratch(|s| s.stats().capacity);
        assert_eq!(cap0, cap1);
    }
}
