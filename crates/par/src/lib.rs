//! Parallel execution substrate.
//!
//! The paper's pipeline is embarrassingly parallel at two grains: images
//! are downloaded/analyzed independently, and dedup counting aggregates
//! billions of per-file records. This crate provides exactly the three
//! primitives that workload needs, built on the in-repo `dhub-sync`
//! substrate (channels, scoped work crews, striped locks) so the default
//! workspace build has zero external dependencies:
//!
//! * [`par_map`]/[`par_for_each`] — data-parallel iteration over slices
//!   with dynamic chunk self-scheduling (scoped threads, no `'static`
//!   bounds),
//! * [`pipeline::stage`] — bounded multi-worker pipeline stages with
//!   backpressure, mirroring the crawl → download → analyze flow,
//! * [`sharded::ShardedMap`] — a lock-striped hash map for concurrent
//!   counting (the dedup index), with a single-lock variant used as the
//!   ablation baseline in the benches,
//! * [`scratch::Scratch`] — the thread-local per-worker buffer arena the
//!   fused layer-analysis path reuses across layers.

pub mod pipeline;
pub mod pool;
pub mod scratch;
pub mod sharded;

pub use pipeline::stage;
pub use pool::ThreadPool;
pub use scratch::{with_scratch, Scratch, ScratchStats};
pub use sharded::ShardedMap;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default parallelism: the number of available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Applies `f` to every element of `items` in parallel, preserving order of
/// results. Work is self-scheduled in chunks: each worker atomically claims
/// the next chunk, so skewed per-item costs (huge layers next to empty
/// ones) still balance.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    // Chunk size balances scheduling overhead against skew; aim for ~8
    // chunks per worker.
    let chunk = (n / (threads * 8)).max(1);
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());

    dhub_sync::work_crew(threads, |_| {
        // Rebind to capture the whole wrapper (not the raw-pointer field,
        // which edition-2021 disjoint capture would otherwise grab).
        let out_ptr = out_ptr;
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for (i, item) in items[start..end].iter().enumerate() {
                let r = f(item);
                // Safe: each index is written by exactly one worker
                // (disjoint chunks), and the Vec outlives the crew's scope.
                unsafe { *out_ptr.0.add(start + i) = Some(r) };
            }
        }
    });
    out.into_iter().map(|r| r.expect("all indices written")).collect()
}

/// Raw pointer wrapper so the scoped threads can share the output buffer.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Applies `f` to every element in parallel, discarding results.
pub fn par_for_each<T, F>(threads: usize, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let _ = par_map(threads, items, |t| f(t));
}

/// Parallel map over an index range (for generators that produce items
/// rather than consume them).
pub fn par_map_range<R, F>(threads: usize, range: std::ops::Range<usize>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = range.collect();
    par_map(threads, &indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 16] {
            assert_eq!(par_map(threads, &items, |&x| x * x), seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[42], |&x| x + 1), vec![43]);
    }

    #[test]
    fn par_map_preserves_order_under_skew() {
        // Make early items slow so late items finish first.
        let items: Vec<u64> = (0..200).collect();
        let out = par_map(8, &items, |&x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn par_for_each_visits_everything() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        let items: Vec<u64> = (1..=1000).collect();
        par_for_each(4, &items, |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn par_map_range_works() {
        assert_eq!(par_map_range(4, 0..5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }
}
