//! A small thread pool for fire-and-forget jobs.
//!
//! The downloader uses this for its long-lived worker crew: jobs are
//! `'static` closures pushed through an unbounded `dhub-sync` channel;
//! dropping the pool closes the channel and joins every worker.

use dhub_sync::{unbounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size worker pool.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("dhub-pool-{i}"))
                    .spawn(move || {
                        // Channel closure (all senders dropped) ends the loop.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool { tx: Some(tx), workers }
    }

    /// Enqueues a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool active")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Waits for all queued jobs to finish and shuts the pool down.
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.tx.take(); // close the channel
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(4);
        for _ in 0..100 {
            let c = counter.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jobs_run_concurrently() {
        use std::time::{Duration, Instant};
        let pool = ThreadPool::new(8);
        let start = Instant::now();
        for _ in 0..8 {
            pool.execute(|| std::thread::sleep(Duration::from_millis(50)));
        }
        pool.join();
        // 8 x 50 ms serially would take 400 ms; in parallel well under that.
        assert!(start.elapsed() < Duration::from_millis(300));
    }
}
