//! Bounded multi-stage pipelines.
//!
//! The study pipeline is crawl → download → extract → analyze. Each stage
//! has its own worker count (network-bound stages want more concurrency
//! than CPU-bound ones) and stages are connected by *bounded* channels so a
//! fast producer cannot buffer an unbounded amount of layer data in memory
//! — at paper scale that would be tens of terabytes.

use dhub_sync::{bounded, Receiver, Sender};

/// Spawns a pipeline stage: `workers` threads each pull items from `input`,
/// apply `f`, and push results downstream. Returns the output receiver.
///
/// The stage ends (and its output channel closes) when the input channel is
/// closed and drained. Items whose `f` returns `None` are dropped — stages
/// can filter (e.g. failed downloads).
pub fn stage<I, O, F>(input: Receiver<I>, workers: usize, capacity: usize, f: F) -> Receiver<O>
where
    I: Send + 'static,
    O: Send + 'static,
    F: Fn(I) -> Option<O> + Send + Sync + 'static,
{
    let workers = workers.max(1);
    let (tx, rx) = bounded::<O>(capacity.max(1));
    let f = std::sync::Arc::new(f);
    for i in 0..workers {
        let input = input.clone();
        let tx = tx.clone();
        let f = f.clone();
        std::thread::Builder::new()
            .name(format!("dhub-stage-{i}"))
            .spawn(move || {
                while let Ok(item) = input.recv() {
                    if let Some(out) = f(item) {
                        if tx.send(out).is_err() {
                            break; // downstream hung up
                        }
                    }
                }
            })
            .expect("spawn stage worker");
    }
    rx
}

/// Feeds an iterator into a new bounded channel from a producer thread.
pub fn source<I>(items: impl IntoIterator<Item = I> + Send + 'static, capacity: usize) -> Receiver<I>
where
    I: Send + 'static,
{
    let (tx, rx) = bounded::<I>(capacity.max(1));
    std::thread::Builder::new()
        .name("dhub-source".to_string())
        .spawn(move || {
            for item in items {
                if tx.send(item).is_err() {
                    break;
                }
            }
        })
        .expect("spawn source");
    rx
}

/// Collects a receiver to a Vec (drains until the channel closes).
pub fn sink<T>(rx: Receiver<T>) -> Vec<T> {
    rx.iter().collect()
}

/// Convenience: a sender/receiver pair with the given capacity, for callers
/// that feed a pipeline by hand.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    bounded(capacity.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn two_stage_pipeline() {
        let src = source(0..1000u64, 64);
        let doubled = stage(src, 4, 64, |x| Some(x * 2));
        let strings = stage(doubled, 2, 64, |x| Some(format!("v{x}")));
        let out = sink(strings);
        assert_eq!(out.len(), 1000);
        let set: HashSet<String> = out.into_iter().collect();
        assert!(set.contains("v0") && set.contains("v1998"));
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn filtering_stage_drops_items() {
        let src = source(0..100u32, 16);
        let evens = stage(src, 3, 16, |x| if x % 2 == 0 { Some(x) } else { None });
        let out = sink(evens);
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn empty_source_terminates() {
        let src = source(std::iter::empty::<u8>(), 4);
        let s = stage(src, 2, 4, Some);
        assert!(sink(s).is_empty());
    }

    #[test]
    fn backpressure_bounded_memory() {
        // A slow consumer must throttle the producer: with capacity 4 the
        // producer cannot run ahead more than the channel depth.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let produced = Arc::new(AtomicUsize::new(0));
        let p = produced.clone();
        let src = source(
            (0..1000usize).inspect(move |_| {
                p.fetch_add(1, Ordering::SeqCst);
            }),
            4,
        );
        // Pull two items, then check the producer has not raced far ahead.
        let first = src.recv().unwrap();
        let _ = src.recv().unwrap();
        assert_eq!(first, 0);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let ahead = produced.load(Ordering::SeqCst);
        assert!(ahead <= 8, "producer ran ahead: {ahead}");
        drop(src); // hang up; producer thread exits
    }

    #[test]
    fn downstream_hangup_stops_workers() {
        let src = source(0..100_000u64, 8);
        let s = stage(src, 2, 8, Some);
        let first = s.recv().unwrap();
        assert!(first < 100_000);
        drop(s);
        // Workers should exit; nothing to assert beyond "no deadlock/panic".
    }
}
