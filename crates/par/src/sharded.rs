//! Lock-striped concurrent hash map for high-throughput counting.
//!
//! The file-level dedup index maps `file digest → (copies, bytes)` and is
//! updated once per file record — billions of times at paper scale. A
//! single mutex-protected map serializes every update; striping the key
//! space across shards lets updates proceed in parallel with conflicts only
//! on same-shard keys. `bench_sharded` quantifies the difference.

use dhub_sync::{Mutex, Striped};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// FxHash-style mixer for shard selection and map hashing (fast, non-DoS
/// resistant; keys here are content digests).
#[derive(Clone, Copy, Default)]
pub struct ShardHasher {
    hash: u64,
}

impl Hasher for ShardHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type Shard<K, V> = HashMap<K, V, BuildHasherDefault<ShardHasher>>;

/// A hash map striped over `2^k` shards, each behind its own cache-padded
/// mutex ([`dhub_sync::Striped`] does the stripe selection and padding).
pub struct ShardedMap<K, V> {
    shards: Striped<Shard<K, V>>,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Creates a map with `shards` stripes (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        ShardedMap { shards: Striped::new(shards, HashMap::default) }
    }

    #[inline]
    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = ShardHasher::default();
        key.hash(&mut h);
        // Striped selects by the hash's high bits so the map's in-shard
        // bucketing (low bits) stays decorrelated.
        self.shards.stripe(h.finish())
    }

    /// Applies `f` to the value for `key`, inserting `V::default()` first if
    /// absent.
    pub fn update(&self, key: K, f: impl FnOnce(&mut V))
    where
        V: Default,
    {
        let mut shard = self.shard_for(&key).lock();
        f(shard.entry(key).or_default());
    }

    /// Inserts a value, returning the previous one if present.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).lock().insert(key, value)
    }

    /// Clones the value for `key`.
    pub fn get_clone(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard_for(key).lock().get(key).cloned()
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shard_for(key).lock().contains_key(key)
    }

    /// Total entries across shards (takes each lock briefly).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.stripe_count()
    }

    /// Consumes the map, yielding all entries.
    pub fn into_entries(self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in self.shards.into_values() {
            out.extend(shard);
        }
        out
    }

    /// Folds every entry into an accumulator (takes each lock briefly).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &K, &V) -> A) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            let guard = shard.lock();
            for (k, v) in guard.iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }
}

/// Single-mutex map with the same interface — the ablation baseline for
/// `bench_sharded`.
pub struct CoarseMap<K, V> {
    inner: Mutex<HashMap<K, V, BuildHasherDefault<ShardHasher>>>,
}

impl<K: Hash + Eq, V> CoarseMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        CoarseMap { inner: Mutex::new(HashMap::default()) }
    }

    /// Same contract as [`ShardedMap::update`].
    pub fn update(&self, key: K, f: impl FnOnce(&mut V))
    where
        V: Default,
    {
        let mut m = self.inner.lock();
        f(m.entry(key).or_default());
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq, V> Default for CoarseMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par_for_each;

    #[test]
    fn concurrent_counting_is_exact() {
        let map: ShardedMap<u64, u64> = ShardedMap::new(16);
        let keys: Vec<u64> = (0..100_000).map(|i| i % 1000).collect();
        par_for_each(8, &keys, |&k| map.update(k, |v| *v += 1));
        assert_eq!(map.len(), 1000);
        let total = map.fold(0u64, |acc, _, v| acc + v);
        assert_eq!(total, 100_000);
        assert_eq!(map.get_clone(&0), Some(100));
    }

    #[test]
    fn matches_hashmap_semantics() {
        let map: ShardedMap<String, u32> = ShardedMap::new(4);
        assert!(map.insert("a".into(), 1).is_none());
        assert_eq!(map.insert("a".into(), 2), Some(1));
        assert!(map.contains(&"a".to_string()));
        assert!(!map.contains(&"b".to_string()));
        assert_eq!(map.len(), 1);
        let entries = map.into_entries();
        assert_eq!(entries, vec![("a".to_string(), 2)]);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedMap<u8, u8> = ShardedMap::new(5);
        assert_eq!(m.shard_count(), 8);
        let m: ShardedMap<u8, u8> = ShardedMap::new(0);
        assert_eq!(m.shard_count(), 1);
    }

    #[test]
    fn coarse_map_counts_too() {
        let map: CoarseMap<u64, u64> = CoarseMap::new();
        let keys: Vec<u64> = (0..10_000).collect();
        par_for_each(4, &keys, |&k| map.update(k % 100, |v| *v += 1));
        assert_eq!(map.len(), 100);
    }

    #[test]
    fn entries_spread_across_shards() {
        let map: ShardedMap<u64, ()> = ShardedMap::new(16);
        for i in 0..10_000u64 {
            map.insert(i, ());
        }
        let mut used = 0;
        for s in map.shards.iter() {
            if !s.lock().is_empty() {
                used += 1;
            }
        }
        assert_eq!(used, 16, "keys should hit every shard");
    }
}
