//! Property and interoperability tests for the DEFLATE/gzip codec.

#![cfg(feature = "proptest")]

use dhub_compress::{deflate, gzip_compress, gzip_decompress, inflate, CompressOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// inflate(deflate(x)) == x for arbitrary bytes.
    #[test]
    fn deflate_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = deflate(&data, &CompressOptions::default());
        prop_assert_eq!(inflate(&c).unwrap(), data);
    }

    /// Same for highly repetitive input (exercises long matches and RLE).
    #[test]
    fn deflate_roundtrip_repetitive(byte in any::<u8>(), n in 0usize..50_000, period in 1usize..64) {
        let data: Vec<u8> = (0..n).map(|i| byte.wrapping_add((i % period) as u8)).collect();
        let c = deflate(&data, &CompressOptions::default());
        prop_assert_eq!(inflate(&c).unwrap(), data);
    }

    /// gzip framing roundtrip with integrity checks intact.
    #[test]
    fn gzip_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..10_000)) {
        let gz = gzip_compress(&data, &CompressOptions::fast());
        prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    /// The decoder never panics on arbitrary garbage.
    #[test]
    fn inflate_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2_000)) {
        let _ = inflate(&data);
        let _ = gzip_decompress(&data);
    }
}

/// Interop: our gzip output must be readable by an independent
/// implementation (python zlib) and vice versa. Skipped when python3 is not
/// on PATH so the suite stays hermetic.
#[test]
fn interop_with_system_zlib() {
    use std::io::Write;
    use std::process::{Command, Stdio};
    let probe = Command::new("python3").arg("-c").arg("import zlib").status();
    if !probe.map(|s| s.success()).unwrap_or(false) {
        eprintln!("python3/zlib unavailable; skipping interop test");
        return;
    }
    let payload: Vec<u8> = b"etc/apt/sources.list usr/lib/libc.so.6 var/lib/dpkg/status "
        .repeat(300);

    // Ours -> theirs.
    let gz = gzip_compress(&payload, &CompressOptions::default());
    let mut child = Command::new("python3")
        .args(["-c", "import sys,gzip; sys.stdout.buffer.write(gzip.decompress(sys.stdin.buffer.read()))"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&gz).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(out.stdout, payload, "python could not read our gzip output");

    // Theirs -> ours.
    let mut child = Command::new("python3")
        .args(["-c", "import sys,gzip; sys.stdout.buffer.write(gzip.compress(sys.stdin.buffer.read(), 6))"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&payload).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(gzip_decompress(&out.stdout).unwrap(), payload, "we could not read python gzip output");
}
