//! Equivalence properties for the table-driven inflate fast path.
//!
//! Unlike `tests/props.rs` this suite is NOT feature-gated: the fast path
//! is what every layer in the study flows through, and its golden model —
//! the original bit-by-bit decoder, kept as `inflate_reference` — must
//! agree with it on every stream, valid or garbage. Replayable via
//! `PROPTEST_SEED` like every other property suite in the workspace.

use dhub_compress::{
    deflate, gzip_compress, gzip_decompress, gzip_decompress_reference, inflate, inflate_into,
    inflate_reference, CompressOptions,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast inflate round-trips our own deflate output on arbitrary bytes.
    #[test]
    fn fast_roundtrips_deflate(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = deflate(&data, &CompressOptions::default());
        let fast = inflate(&c).unwrap();
        prop_assert_eq!(&fast, &data);
        prop_assert_eq!(inflate_reference(&c).unwrap(), fast);
    }

    /// Repetitive input: long overlapping matches hit the chunked
    /// `extend_from_within` copy at every distance class.
    #[test]
    fn fast_roundtrips_repetitive(byte in any::<u8>(), n in 0usize..50_000, period in 1usize..64) {
        let data: Vec<u8> = (0..n).map(|i| byte.wrapping_add((i % period) as u8)).collect();
        let c = deflate(&data, &CompressOptions::default());
        let fast = inflate(&c).unwrap();
        prop_assert_eq!(&fast, &data);
        prop_assert_eq!(inflate_reference(&c).unwrap(), fast);
    }

    /// `inflate_into` with a wrong-but-plausible size hint changes only
    /// allocation behavior, never bytes.
    #[test]
    fn size_hint_is_advisory(data in proptest::collection::vec(any::<u8>(), 0..8_000), hint in 0usize..65_536) {
        let c = deflate(&data, &CompressOptions::fast());
        let mut out = Vec::new();
        inflate_into(&c, &mut out, Some(hint)).unwrap();
        prop_assert_eq!(out, data);
    }

    /// On arbitrary garbage the fast path and the reference agree: both
    /// accept with identical bytes or both reject.
    #[test]
    fn fast_matches_reference_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..2_000)) {
        let fast = inflate(&data);
        let slow = inflate_reference(&data);
        match (fast, slow) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "fast={:?} reference={:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Same agreement at the gzip framing layer (ISIZE pre-size, CRC check).
    #[test]
    fn gzip_fast_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        let gz = gzip_compress(&data, &CompressOptions::fast());
        let fast = gzip_decompress(&gz).unwrap();
        prop_assert_eq!(&fast, &data);
        prop_assert_eq!(gzip_decompress_reference(&gz).unwrap(), fast);
    }

    /// Corrupting one byte anywhere in a member never panics either path,
    /// and acceptance agrees (a flipped bit that still decodes must decode
    /// to the same bytes).
    #[test]
    fn corrupted_member_agreement(data in proptest::collection::vec(any::<u8>(), 1..4_000), at in any::<u16>(), mask in any::<u8>()) {
        let mut gz = gzip_compress(&data, &CompressOptions::fast());
        let i = at as usize % gz.len();
        gz[i] ^= mask | 1;
        let fast = gzip_decompress(&gz);
        let slow = gzip_decompress_reference(&gz);
        match (fast, slow) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "fast={:?} reference={:?}", a.is_ok(), b.is_ok()),
        }
    }
}
