//! zlib container (RFC 1950) with Adler-32 integrity.
//!
//! Docker's ecosystem mostly uses gzip framing for layers, but manifests
//! pushed by some clients and many embedded payloads (PNG IDAT, git
//! objects) use the zlib container instead. Supporting it makes the codec
//! substrate complete: [`zlib_compress`]/[`zlib_decompress`] wrap the same
//! DEFLATE core with the 2-byte header and Adler-32 trailer.

use crate::deflate::{deflate, CompressOptions};
use crate::inflate::{inflate, InflateError};

/// Errors for malformed zlib streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZlibError {
    /// Shorter than header + trailer.
    Truncated,
    /// CMF/FLG header invalid (method, window size, or check bits).
    BadHeader,
    /// A preset dictionary is required (not supported, as in zlib's own
    /// default mode).
    NeedsDictionary,
    /// Embedded DEFLATE stream invalid.
    Deflate(InflateError),
    /// Adler-32 trailer mismatch.
    BadChecksum,
}

impl std::fmt::Display for ZlibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZlibError::Truncated => f.write_str("truncated zlib stream"),
            ZlibError::BadHeader => f.write_str("bad zlib header"),
            ZlibError::NeedsDictionary => f.write_str("preset dictionary not supported"),
            ZlibError::Deflate(e) => write!(f, "deflate error: {e}"),
            ZlibError::BadChecksum => f.write_str("adler-32 mismatch"),
        }
    }
}

impl std::error::Error for ZlibError {}

/// Adler-32 checksum (RFC 1950 §8).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    // Process in chunks small enough that the sums cannot overflow u32
    // before reduction (5552 is the classic zlib bound).
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Compresses into a zlib stream (CM=8, 32 KiB window, default FLEVEL).
pub fn zlib_compress(data: &[u8], opts: &CompressOptions) -> Vec<u8> {
    let body = deflate(data, opts);
    let mut out = Vec::with_capacity(body.len() + 6);
    let cmf: u8 = 0x78; // CM=8 (deflate), CINFO=7 (32 KiB window)
    let mut flg: u8 = 0x80; // FLEVEL=2 (default), FDICT=0
    // FCHECK: make (cmf*256 + flg) divisible by 31.
    let rem = ((cmf as u16) * 256 + flg as u16) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    out.push(cmf);
    out.push(flg);
    out.extend_from_slice(&body);
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompresses a zlib stream, verifying header check bits and Adler-32.
pub fn zlib_decompress(data: &[u8]) -> Result<Vec<u8>, ZlibError> {
    if data.len() < 6 {
        return Err(ZlibError::Truncated);
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0F != 8 || (cmf >> 4) > 7 {
        return Err(ZlibError::BadHeader);
    }
    if !((cmf as u16) * 256 + flg as u16).is_multiple_of(31) {
        return Err(ZlibError::BadHeader);
    }
    if flg & 0x20 != 0 {
        return Err(ZlibError::NeedsDictionary);
    }
    let body = &data[2..data.len() - 4];
    let out = inflate(body).map_err(ZlibError::Deflate)?;
    let want = u32::from_be_bytes(data[data.len() - 4..].try_into().unwrap());
    if adler32(&out) != want {
        return Err(ZlibError::BadChecksum);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_vectors() {
        // RFC 1950 reference values.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x00620062);
        assert_eq!(adler32(b"abc"), 0x024D0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E60398);
    }

    #[test]
    fn adler32_long_input_reduction() {
        // Exercise the chunked modular reduction path.
        let data = vec![0xFFu8; 100_000];
        let direct = adler32(&data);
        // Naive u64 reference.
        let (mut a, mut b) = (1u64, 0u64);
        for &x in &data {
            a = (a + x as u64) % 65_521;
            b = (b + a) % 65_521;
        }
        assert_eq!(direct, ((b as u32) << 16) | a as u32);
    }

    #[test]
    fn roundtrip() {
        let data = b"zlib container roundtrip test ".repeat(100);
        let z = zlib_compress(&data, &CompressOptions::default());
        assert_eq!(zlib_decompress(&z).unwrap(), data);
    }

    #[test]
    fn empty_roundtrip() {
        let z = zlib_compress(b"", &CompressOptions::default());
        assert_eq!(zlib_decompress(&z).unwrap(), b"");
    }

    #[test]
    fn header_check_bits_valid() {
        let z = zlib_compress(b"x", &CompressOptions::default());
        assert_eq!(((z[0] as u16) * 256 + z[1] as u16) % 31, 0);
        assert_eq!(z[0] & 0x0F, 8);
    }

    #[test]
    fn rejects_bad_header() {
        let mut z = zlib_compress(b"data", &CompressOptions::default());
        z[0] = 0x79; // CM=9
        assert!(matches!(zlib_decompress(&z).unwrap_err(), ZlibError::BadHeader));
    }

    #[test]
    fn rejects_checksum_mismatch() {
        let mut z = zlib_compress(b"data data", &CompressOptions::default());
        let n = z.len();
        z[n - 1] ^= 1;
        assert_eq!(zlib_decompress(&z).unwrap_err(), ZlibError::BadChecksum);
    }

    #[test]
    fn rejects_dictionary_flag() {
        let mut z = zlib_compress(b"data", &CompressOptions::default());
        z[1] |= 0x20;
        // Repair FCHECK so only FDICT differs.
        z[1] &= !0x1F;
        let rem = ((z[0] as u16) * 256 + z[1] as u16) % 31;
        if rem != 0 {
            z[1] += (31 - rem) as u8;
        }
        assert_eq!(zlib_decompress(&z).unwrap_err(), ZlibError::NeedsDictionary);
    }

    #[test]
    fn interop_with_python_zlib() {
        use std::io::Write as _;
        use std::process::{Command, Stdio};
        let probe = Command::new("python3").arg("-c").arg("import zlib").status();
        if !probe.map(|s| s.success()).unwrap_or(false) {
            eprintln!("python3 unavailable; skipping");
            return;
        }
        let payload = b"registry layer manifest ".repeat(200);
        let z = zlib_compress(&payload, &CompressOptions::default());
        let mut child = Command::new("python3")
            .args(["-c", "import sys,zlib; sys.stdout.buffer.write(zlib.decompress(sys.stdin.buffer.read()))"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(&z).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        assert_eq!(out.stdout, payload);
    }
}
