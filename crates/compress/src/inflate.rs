//! DEFLATE decoder (RFC 1951).
//!
//! Two implementations share one error type and must agree bit-for-bit:
//!
//! * the **fast path** ([`inflate`] / [`inflate_into`]) — table-driven
//!   Huffman decode ([`TableDecoder`]) over a u64-refill [`BitReader`],
//!   overlap-safe chunked match copies, and output pre-sizing from a
//!   caller-provided hint (the gzip ISIZE footer);
//! * the **reference path** ([`inflate_reference`]) — the original
//!   bit-by-bit decoder, kept verbatim as the golden model for the
//!   equivalence property suite and the before/after benchmarks.

use crate::bitio::{BitReader, OutOfBits};
use crate::huffman::{Decoder, HuffError, TableDecoder};
use crate::tables::{fixed_dist_lengths, fixed_lit_lengths, CLCL_ORDER, DIST_CODES, LENGTH_CODES};
use std::sync::OnceLock;

/// Errors raised on malformed DEFLATE streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InflateError {
    /// Stream ended mid-element.
    Truncated,
    /// Reserved block type 11.
    BadBlockType,
    /// Stored block LEN/NLEN mismatch.
    BadStoredLength,
    /// Invalid Huffman table description.
    BadHuffmanTable,
    /// A symbol decoded to an impossible value.
    BadSymbol,
    /// Back-reference before the start of output.
    DistanceTooFar,
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            InflateError::Truncated => "truncated deflate stream",
            InflateError::BadBlockType => "reserved block type",
            InflateError::BadStoredLength => "stored block length check failed",
            InflateError::BadHuffmanTable => "invalid huffman table",
            InflateError::BadSymbol => "invalid symbol",
            InflateError::DistanceTooFar => "back-reference beyond output start",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InflateError {}

impl From<OutOfBits> for InflateError {
    fn from(_: OutOfBits) -> Self {
        InflateError::Truncated
    }
}

impl From<HuffError> for InflateError {
    fn from(e: HuffError) -> Self {
        match e {
            HuffError::Truncated => InflateError::Truncated,
            _ => InflateError::BadHuffmanTable,
        }
    }
}

/// Decompresses a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut out = Vec::new();
    inflate_into(data, &mut out, None)?;
    Ok(out)
}

/// Decompresses into `out`, which is cleared first (its capacity is kept,
/// so a reused buffer pays no allocation once warm). `size_hint` pre-sizes
/// the output — gzip callers pass the trailer ISIZE; `None` falls back to
/// the 3× heuristic.
pub fn inflate_into(
    data: &[u8],
    out: &mut Vec<u8>,
    size_hint: Option<usize>,
) -> Result<(), InflateError> {
    out.clear();
    out.reserve(size_hint.unwrap_or_else(|| data.len().saturating_mul(3)));
    let mut r = BitReader::new(data);
    loop {
        let last = r.read_bit()? == 1;
        match r.read_bits(2)? {
            0b00 => stored_block_fast(&mut r, out)?,
            0b01 => huffman_block_fast(&mut r, out, fixed_lit_table(), fixed_dist_table())?,
            0b10 => {
                let (lit, dist) = dynamic_tables_fast(&mut r)?;
                huffman_block_fast(&mut r, out, &lit, &dist)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if last {
            return Ok(());
        }
    }
}

fn fixed_lit_table() -> &'static TableDecoder {
    static T: OnceLock<TableDecoder> = OnceLock::new();
    T.get_or_init(|| TableDecoder::new(&fixed_lit_lengths()).expect("fixed table"))
}

fn fixed_dist_table() -> &'static TableDecoder {
    static T: OnceLock<TableDecoder> = OnceLock::new();
    T.get_or_init(|| TableDecoder::new(&fixed_dist_lengths()).expect("fixed table"))
}

fn stored_block_fast(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), InflateError> {
    r.align_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        return Err(InflateError::BadStoredLength);
    }
    r.read_slice_into(len as usize, out).map_err(|_| InflateError::Truncated)
}

/// Parses the HLIT/HDIST/HCLEN header and code-length stream into one
/// lengths vector plus the literal-table width. Shared by both paths so
/// they cannot diverge on header validation.
fn dynamic_lengths(r: &mut BitReader<'_>) -> Result<(Vec<u8>, usize), InflateError> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::BadHuffmanTable);
    }
    let mut cl_lens = [0u8; 19];
    for &sym in CLCL_ORDER.iter().take(hclen) {
        cl_lens[sym] = r.read_bits(3)? as u8;
    }
    let cl_dec = Decoder::new(&cl_lens)?;

    let mut lens = Vec::with_capacity(hlit + hdist);
    while lens.len() < hlit + hdist {
        match cl_dec.decode(r)? {
            s @ 0..=15 => lens.push(s as u8),
            16 => {
                let &prev = lens.last().ok_or(InflateError::BadHuffmanTable)?;
                let n = r.read_bits(2)? + 3;
                lens.extend(std::iter::repeat_n(prev, n as usize));
            }
            17 => {
                let n = r.read_bits(3)? + 3;
                lens.extend(std::iter::repeat_n(0, n as usize));
            }
            18 => {
                let n = r.read_bits(7)? + 11;
                lens.extend(std::iter::repeat_n(0, n as usize));
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
    if lens.len() != hlit + hdist {
        // A repeat ran past the boundary between the two tables.
        return Err(InflateError::BadHuffmanTable);
    }
    Ok((lens, hlit))
}

fn dynamic_tables_fast(
    r: &mut BitReader<'_>,
) -> Result<(TableDecoder, TableDecoder), InflateError> {
    let (lens, hlit) = dynamic_lengths(r)?;
    let lit = TableDecoder::new(&lens[..hlit])?;
    let dist = TableDecoder::new(&lens[hlit..])?;
    Ok((lit, dist))
}

fn huffman_block_fast(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &TableDecoder,
    dist: &TableDecoder,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)?;
        if sym < 256 {
            out.push(sym as u8);
            continue;
        }
        if sym == 256 {
            return Ok(());
        }
        if sym > 285 {
            return Err(InflateError::BadSymbol);
        }
        let (base, extra) = LENGTH_CODES[sym as usize - 257];
        let len = base as usize + r.read_bits(extra as u32)? as usize;
        let dsym = dist.decode(r)?;
        if dsym as usize >= DIST_CODES.len() {
            return Err(InflateError::BadSymbol);
        }
        let (dbase, dextra) = DIST_CODES[dsym as usize];
        let d = dbase as usize + r.read_bits(dextra as u32)? as usize;
        if d > out.len() {
            return Err(InflateError::DistanceTooFar);
        }
        copy_match(out, d, len);
    }
}

/// Appends `len` bytes starting `d` back from the end of `out`. Handles the
/// overlapping case (`d < len`) without a per-byte loop: each
/// `extend_from_within` doubles the available source window, so the copy
/// finishes in O(log(len/d)) memcpys.
#[inline]
fn copy_match(out: &mut Vec<u8>, d: usize, len: usize) {
    let start = out.len() - d;
    if d >= len {
        out.extend_from_within(start..start + len);
    } else if d == 1 {
        let b = out[out.len() - 1];
        out.resize(out.len() + len, b);
    } else {
        let mut remaining = len;
        while remaining > 0 {
            let chunk = (out.len() - start).min(remaining);
            out.extend_from_within(start..start + chunk);
            remaining -= chunk;
        }
    }
}

/// The pre-fusion bit-by-bit decoder, kept as the golden model the fast
/// path is property-tested against.
pub fn inflate_reference(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(data.len() * 3);
    loop {
        let last = r.read_bit()? == 1;
        match r.read_bits(2)? {
            0b00 => stored_block(&mut r, &mut out)?,
            0b01 => {
                let lit = Decoder::new(&fixed_lit_lengths()).expect("fixed table");
                let dist = Decoder::new(&fixed_dist_lengths()).expect("fixed table");
                huffman_block(&mut r, &mut out, &lit, &dist)?;
            }
            0b10 => {
                let (lit, dist) = dynamic_tables(&mut r)?;
                huffman_block(&mut r, &mut out, &lit, &dist)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if last {
            return Ok(out);
        }
    }
}

fn stored_block(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), InflateError> {
    r.align_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        return Err(InflateError::BadStoredLength);
    }
    let bytes = r.read_bytes(len as usize).map_err(|_| InflateError::Truncated)?;
    out.extend_from_slice(&bytes);
    Ok(())
}

fn dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), InflateError> {
    let (lens, hlit) = dynamic_lengths(r)?;
    let lit = Decoder::new(&lens[..hlit])?;
    let dist = Decoder::new(&lens[hlit..])?;
    Ok((lit, dist))
}

fn huffman_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Decoder,
    dist: &Decoder,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LENGTH_CODES[sym as usize - 257];
                let len = base as usize + r.read_bits(extra as u32)? as usize;
                let dsym = dist.decode(r)?;
                if dsym as usize >= DIST_CODES.len() {
                    return Err(InflateError::BadSymbol);
                }
                let (dbase, dextra) = DIST_CODES[dsym as usize];
                let d = dbase as usize + r.read_bits(dextra as u32)? as usize;
                if d > out.len() {
                    return Err(InflateError::DistanceTooFar);
                }
                let start = out.len() - d;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    #[test]
    fn stored_roundtrip_manual() {
        // Hand-built stored block: BFINAL=1, BTYPE=00.
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_byte();
        w.write_bytes(&5u16.to_le_bytes());
        w.write_bytes(&(!5u16).to_le_bytes());
        w.write_bytes(b"hello");
        assert_eq!(inflate(&w.finish()).unwrap(), b"hello");
    }

    #[test]
    fn fixed_block_known_bytes() {
        // `echo -n abc | pigz -z`-style check: deflate of "abc" with fixed
        // codes produced by zlib is 4b 4c 4a 06 00.
        assert_eq!(inflate(&[0x4b, 0x4c, 0x4a, 0x06, 0x00]).unwrap(), b"abc");
    }

    #[test]
    fn zlib_dynamic_stream() {
        // Raw deflate of 'aaaaabbbbbcccccdddddeeeee\n' emitted by zlib
        // level 9, captured from python `zlib.compressobj(9, DEFLATED, -15)`.
        let raw: &[u8] = &[
            0x4b, 0x4c, 0x04, 0x82, 0x24, 0x10, 0x48, 0x06, 0x81, 0x14, 0x10, 0x48, 0x05, 0x01,
            0x2e, 0x00,
        ];
        assert_eq!(inflate(raw).unwrap(), b"aaaaabbbbbcccccdddddeeeee\n");
    }

    #[test]
    fn zlib_repeated_text_stream() {
        // zlib level 6 raw deflate of 20 copies of the fox sentence. The
        // sentence repeats at distance 45 with match lengths well past it,
        // so this exercises the overlapping chunked copy.
        let raw: Vec<u8> = {
            let hex = "2bc94855282ccd4cce56482aca2fcf5348cbaf50c82acd2d2856c82f4b2d5228014ae72456552aa4e4a7eb8179a38a47158f2aa6aa6200";
            (0..hex.len()).step_by(2).map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap()).collect()
        };
        let expect: Vec<u8> = b"the quick brown fox jumps over the lazy dog. ".repeat(20);
        assert_eq!(inflate(&raw).unwrap(), expect);
        assert_eq!(inflate_reference(&raw).unwrap(), expect);
    }

    #[test]
    fn bad_block_type() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b11, 2);
        assert_eq!(inflate(&w.finish()).unwrap_err(), InflateError::BadBlockType);
    }

    #[test]
    fn stored_length_mismatch() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_byte();
        w.write_bytes(&5u16.to_le_bytes());
        w.write_bytes(&0u16.to_le_bytes()); // wrong NLEN
        w.write_bytes(b"hello");
        assert_eq!(inflate(&w.finish()).unwrap_err(), InflateError::BadStoredLength);
    }

    #[test]
    fn truncated_stream() {
        assert_eq!(inflate(&[]).unwrap_err(), InflateError::Truncated);
        assert_eq!(inflate(&[0x4b]).unwrap_err(), InflateError::Truncated);
        assert_eq!(inflate_reference(&[]).unwrap_err(), InflateError::Truncated);
        assert_eq!(inflate_reference(&[0x4b]).unwrap_err(), InflateError::Truncated);
    }

    #[test]
    fn distance_too_far() {
        // Fixed block: immediately emit a match referencing d=1 with no
        // output yet. Symbol 257 (len 3) = code 0000001 (7 bits), dist 0 =
        // 00000 (5 bits).
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        // Symbol 257 has fixed code length 7, canonical code 1 → reversed.
        let lens = crate::tables::fixed_lit_lengths();
        let codes = crate::huffman::canonical_codes(&lens);
        w.write_bits(codes[257] as u32, lens[257] as u32);
        // Distance code 0, 5 bits, code value 0.
        w.write_bits(0, 5);
        assert_eq!(inflate(&w.finish()).unwrap_err(), InflateError::DistanceTooFar);
    }

    #[test]
    fn inflate_into_reuses_capacity() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_byte();
        w.write_bytes(&5u16.to_le_bytes());
        w.write_bytes(&(!5u16).to_le_bytes());
        w.write_bytes(b"hello");
        let stream = w.finish();
        let mut out = Vec::with_capacity(4096);
        let ptr = out.as_ptr();
        inflate_into(&stream, &mut out, Some(5)).unwrap();
        assert_eq!(out, b"hello");
        assert_eq!(out.as_ptr(), ptr, "warm buffer must not reallocate");
        out.push(b'!'); // dirty it; the next call must clear
        inflate_into(&stream, &mut out, Some(5)).unwrap();
        assert_eq!(out, b"hello");
    }

    #[test]
    fn fast_matches_reference_on_deflate_output() {
        use crate::deflate::{deflate, CompressOptions};
        let mut data = Vec::new();
        for i in 0..50_000u32 {
            data.push((i % 251) as u8);
            if i % 7 == 0 {
                data.extend_from_slice(b"docker layer payload ");
            }
        }
        let stream = deflate(&data, &CompressOptions::default());
        let fast = inflate(&stream).unwrap();
        let slow = inflate_reference(&stream).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast, data);
    }
}
