//! DEFLATE length/distance code tables (RFC 1951 §3.2.5).

/// Length codes 257..=285: `(base_length, extra_bits)`.
pub const LENGTH_CODES: [(u16, u8); 29] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
];

/// Distance codes 0..=29: `(base_distance, extra_bits)`.
pub const DIST_CODES: [(u16, u8); 30] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1),
    (9, 2), (13, 2),
    (17, 3), (25, 3),
    (33, 4), (49, 4),
    (65, 5), (97, 5),
    (129, 6), (193, 6),
    (257, 7), (385, 7),
    (513, 8), (769, 8),
    (1025, 9), (1537, 9),
    (2049, 10), (3073, 10),
    (4097, 11), (6145, 11),
    (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
];

/// Order in which code-length-code lengths are transmitted (§3.2.7).
pub const CLCL_ORDER: [usize; 19] = [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

/// Maps a match length (3..=258) to `(code_index, extra_bits, extra_value)`
/// where `code_index` is relative to symbol 257.
#[inline]
pub fn length_to_code(len: u16) -> (usize, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    // Linear scan from the top; 29 entries, often hit early. A 256-entry
    // lookup table would be faster; clarity wins here and the encoder
    // amortizes this over full blocks.
    for i in (0..LENGTH_CODES.len()).rev() {
        let (base, extra) = LENGTH_CODES[i];
        if len >= base {
            // Code 285 (index 28) encodes exactly 258 with 0 extra bits, but
            // base 258 also matches lengths < 258 via earlier entries.
            if i == 28 && len != 258 {
                continue;
            }
            return (i, extra, len - base);
        }
    }
    unreachable!("length out of range")
}

/// Maps a distance (1..=32768) to `(code, extra_bits, extra_value)`.
#[inline]
pub fn dist_to_code(dist: u16) -> (usize, u8, u16) {
    debug_assert!(dist >= 1);
    for i in (0..DIST_CODES.len()).rev() {
        let (base, extra) = DIST_CODES[i];
        if dist >= base {
            return (i, extra, dist - base);
        }
    }
    unreachable!("distance out of range")
}

/// Fixed literal/length code lengths (§3.2.6).
pub fn fixed_lit_lengths() -> [u8; 288] {
    let mut l = [0u8; 288];
    for (i, item) in l.iter_mut().enumerate() {
        *item = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    l
}

/// Fixed distance code lengths: 5 bits for all 32 codes. Codes 30 and 31
/// never occur in valid data but participate in the code space (§3.2.6),
/// which keeps the table Kraft-complete.
pub fn fixed_dist_lengths() -> [u8; 32] {
    [5u8; 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_code_roundtrip() {
        for len in 3..=258u16 {
            let (idx, extra, val) = length_to_code(len);
            let (base, ebits) = LENGTH_CODES[idx];
            assert_eq!(extra, ebits);
            assert_eq!(base + val, len, "len {len}");
            assert!(val < (1 << extra) || extra == 0 && val == 0);
        }
    }

    #[test]
    fn length_258_uses_code_285() {
        assert_eq!(length_to_code(258), (28, 0, 0));
        // 257 must use code 284 (base 227, 5 extra bits), not 285.
        assert_eq!(length_to_code(257), (27, 5, 30));
    }

    #[test]
    fn dist_code_roundtrip() {
        for dist in 1..=32768u32 {
            let (idx, extra, val) = dist_to_code(dist as u16);
            let (base, ebits) = DIST_CODES[idx];
            assert_eq!(extra, ebits);
            assert_eq!(base as u32 + val as u32, dist);
        }
    }

    #[test]
    fn fixed_tables_shape() {
        let l = fixed_lit_lengths();
        assert_eq!(l[0], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[280], 8);
        assert_eq!(fixed_dist_lengths(), [5u8; 32]);
    }
}
