//! LZ77 match finding over the 32 KiB DEFLATE window.
//!
//! Hash-chain design as in zlib: 3-byte prefixes are hashed into a head
//! table; chains of previous positions with the same hash are walked to find
//! the longest match, bounded by a configurable chain depth. One-step lazy
//! matching (emit a literal and take the next position's match when it is
//! strictly longer) recovers most of the ratio gap to optimal parsing at a
//! small cost.

/// Maximum backward distance DEFLATE can express.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum/maximum match lengths DEFLATE can express.
pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match { len: u16, dist: u16 },
}

/// Tuning knobs for the match finder.
#[derive(Clone, Copy, Debug)]
pub struct Lz77Options {
    /// Maximum hash-chain positions examined per match attempt.
    pub max_chain: usize,
    /// Enable one-step lazy matching.
    pub lazy: bool,
    /// Stop searching when a match at least this long is found.
    pub good_enough: usize,
}

impl Default for Lz77Options {
    fn default() -> Self {
        Lz77Options { max_chain: 128, lazy: true, good_enough: 64 }
    }
}

impl Lz77Options {
    /// Fast profile: shallow chains, greedy parse.
    pub fn fast() -> Self {
        Lz77Options { max_chain: 16, lazy: false, good_enough: 16 }
    }

    /// Thorough profile: deep chains.
    pub fn best() -> Self {
        Lz77Options { max_chain: 1024, lazy: true, good_enough: 258 }
    }
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], 0]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Tokenizes `data` into literals and matches.
pub fn tokenize(data: &[u8], opts: &Lz77Options) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h (+1; 0 = empty).
    // prev[pos % WINDOW] = previous position with the same hash (+1).
    let mut head = vec![0u32; HASH_SIZE];
    let mut prev = vec![0u32; WINDOW_SIZE];

    let insert = |head: &mut [u32], prev: &mut [u32], data: &[u8], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            prev[pos % WINDOW_SIZE] = head[h];
            head[h] = pos as u32 + 1;
        }
    };

    let find_match = |head: &[u32], prev: &[u32], pos: usize, min_len: usize| -> Option<(usize, usize)> {
        if pos + MIN_MATCH > n {
            return None;
        }
        let max_len = MAX_MATCH.min(n - pos);
        if max_len < MIN_MATCH {
            return None;
        }
        let h = hash3(data, pos);
        let mut cand = head[h];
        let mut best_len = min_len.max(MIN_MATCH - 1);
        let mut best_dist = 0usize;
        let mut chain = opts.max_chain;
        while cand != 0 && chain > 0 {
            let cpos = (cand - 1) as usize;
            if cpos >= pos || pos - cpos > WINDOW_SIZE {
                break;
            }
            // Quick reject: compare the byte that would extend the best match.
            if best_dist == 0 || data[cpos + best_len.min(max_len - 1)] == data[pos + best_len.min(max_len - 1)] {
                let mut l = 0usize;
                while l < max_len && data[cpos + l] == data[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = pos - cpos;
                    if l >= opts.good_enough || l == max_len {
                        break;
                    }
                }
            }
            cand = prev[cpos % WINDOW_SIZE];
            chain -= 1;
        }
        if best_dist > 0 && best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    let mut pos = 0usize;
    while pos < n {
        let cur = find_match(&head, &prev, pos, 0);
        match cur {
            None => {
                tokens.push(Token::Literal(data[pos]));
                insert(&mut head, &mut prev, data, pos);
                pos += 1;
            }
            Some((len, dist)) => {
                // Lazy evaluation: if the next position has a strictly longer
                // match, emit a literal here instead.
                if opts.lazy && len < opts.good_enough && pos + 1 < n {
                    insert(&mut head, &mut prev, data, pos);
                    if let Some((nlen, _)) = find_match(&head, &prev, pos + 1, len) {
                        if nlen > len {
                            tokens.push(Token::Literal(data[pos]));
                            pos += 1;
                            continue;
                        }
                    }
                    // Keep the current match; position `pos` is already inserted.
                    tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
                    for p in pos + 1..pos + len {
                        insert(&mut head, &mut prev, data, p);
                    }
                    pos += len;
                } else {
                    tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
                    for p in pos..pos + len {
                        insert(&mut head, &mut prev, data, p);
                    }
                    pos += len;
                }
            }
        }
    }
    tokens
}

/// Expands tokens back into bytes (the reference decoder for tests and a
/// building block for [`crate::inflate`]).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                // Byte-by-byte: overlapping copies (dist < len) must replicate.
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], opts: &Lz77Options) {
        let tokens = tokenize(data, opts);
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            roundtrip(data, &Lz77Options::default());
        }
    }

    #[test]
    fn repetitive_input_compresses() {
        let data = b"abcabcabcabcabcabcabcabcabc".to_vec();
        let tokens = tokenize(&data, &Lz77Options::default());
        assert!(tokens.len() < data.len() / 2, "{tokens:?}");
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn overlapping_match_rle() {
        // "aaaa..." must produce dist=1 matches with len > dist.
        let data = vec![b'a'; 1000];
        let tokens = tokenize(&data, &Lz77Options::default());
        assert!(tokens.len() <= 8, "run-length should collapse: {}", tokens.len());
        assert_eq!(expand(&tokens), data);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { dist: 1, .. })));
    }

    #[test]
    fn incompressible_input() {
        // A pseudo-random byte stream: almost all literals, still correct.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        roundtrip(&data, &Lz77Options::default());
    }

    #[test]
    fn long_range_match_within_window() {
        let mut data = vec![0u8; 0];
        data.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        data.extend(std::iter::repeat_n(b'.', 20_000));
        data.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        let tokens = tokenize(&data, &Lz77Options::best());
        assert_eq!(expand(&tokens), data);
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist, .. } if *dist as usize > 10_000)));
    }

    #[test]
    fn no_match_beyond_window() {
        let mut data = Vec::new();
        data.extend_from_slice(b"unique-prefix-string-xyz");
        // Push the prefix out of the 32 KiB window with incompressible noise.
        let mut x = 7u64;
        data.extend((0..WINDOW_SIZE + 100).map(|_| {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (x >> 33) as u8
        }));
        data.extend_from_slice(b"unique-prefix-string-xyz");
        let tokens = tokenize(&data, &Lz77Options::best());
        assert_eq!(expand(&tokens), data);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) <= WINDOW_SIZE);
            }
        }
    }

    #[test]
    fn all_profiles_roundtrip() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| (i % 97).to_le_bytes()).collect();
        for opts in [Lz77Options::fast(), Lz77Options::default(), Lz77Options::best()] {
            roundtrip(&data, &opts);
        }
    }

    #[test]
    fn max_match_length_respected() {
        let data = vec![b'z'; 5000];
        let tokens = tokenize(&data, &Lz77Options::default());
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!((*len as usize) <= MAX_MATCH);
                assert!((*len as usize) >= MIN_MATCH);
            }
        }
        assert_eq!(expand(&tokens), data);
    }
}
