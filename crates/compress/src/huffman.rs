//! Canonical, length-limited Huffman codes.
//!
//! DEFLATE transmits only code *lengths*; both sides derive the canonical
//! codes from them (RFC 1951 §3.2.2). The encoder assigns optimal
//! length-limited lengths with the package-merge algorithm (alphabet sizes
//! here are ≤ 288 and limits ≤ 15, so the O(n·L) cost is negligible), and
//! the decoder walks the canonical first-code/count tables bit by bit.

use crate::bitio::{BitReader, OutOfBits};

/// Assigns optimal code lengths for `freqs` limited to `max_len` bits.
///
/// Returns a length per symbol (0 for unused symbols). Symbols with nonzero
/// frequency always receive a nonzero length. Panics if the alphabet cannot
/// fit in `max_len` bits (needs `2^max_len` ≥ used symbols).
pub fn limited_code_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    let used: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        n => assert!((1usize << max_len) >= n, "alphabet too large for length limit"),
    }

    // Package-merge. Each coin is (weight, symbols-it-contains).
    #[derive(Clone)]
    struct Coin {
        weight: u64,
        syms: Vec<u16>,
    }
    let mut base: Vec<Coin> = used
        .iter()
        .map(|&s| Coin { weight: freqs[s], syms: vec![s as u16] })
        .collect();
    base.sort_by_key(|c| c.weight);

    let mut row = base.clone();
    for _ in 1..max_len {
        // Package: pair up adjacent coins of the previous row.
        let mut packaged: Vec<Coin> = Vec::with_capacity(row.len() / 2);
        let mut it = row.chunks_exact(2);
        for pair in &mut it {
            let mut syms = pair[0].syms.clone();
            syms.extend_from_slice(&pair[1].syms);
            packaged.push(Coin { weight: pair[0].weight + pair[1].weight, syms });
        }
        // Merge with the base coins, keeping sorted order.
        let mut merged = Vec::with_capacity(base.len() + packaged.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() || j < packaged.len() {
            let take_base = j >= packaged.len()
                || (i < base.len() && base[i].weight <= packaged[j].weight);
            if take_base {
                merged.push(base[i].clone());
                i += 1;
            } else {
                merged.push(packaged[j].clone());
                j += 1;
            }
        }
        row = merged;
    }

    // The first 2n-2 coins of the final row determine the lengths: a
    // symbol's code length is the number of coins containing it.
    for coin in row.iter().take(2 * used.len() - 2) {
        for &s in &coin.syms {
            lengths[s as usize] += 1;
        }
    }
    lengths
}

/// Derives canonical codes from lengths (§3.2.2). `codes[i]` holds the code
/// for symbol `i`, already **bit-reversed** so it can be written LSB-first
/// by [`crate::bitio::BitWriter::write_bits`].
pub fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u16; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u16; max_len + 2];
    let mut code = 0u16;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                reverse_bits(c, l)
            }
        })
        .collect()
}

/// Reverses the low `n` bits of `v`.
#[inline]
pub fn reverse_bits(v: u16, n: u8) -> u16 {
    let mut r = 0u16;
    let mut v = v;
    for _ in 0..n {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    r
}

/// Error for invalid Huffman tables or streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HuffError {
    /// The code-length set over- or under-subscribes the code space.
    InvalidLengths,
    /// Ran out of input while decoding.
    Truncated,
    /// A code was read that no symbol maps to.
    BadCode,
}

impl From<OutOfBits> for HuffError {
    fn from(_: OutOfBits) -> Self {
        HuffError::Truncated
    }
}

/// Canonical Huffman decoder (puff-style counts/offsets walk).
#[derive(Debug)]
pub struct Decoder {
    /// count[l] = number of codes of length l.
    count: Vec<u16>,
    /// Symbols sorted by (length, symbol order).
    symbols: Vec<u16>,
    max_len: u8,
}

impl Decoder {
    /// Builds a decoder from code lengths.
    ///
    /// Accepts complete codes and the degenerate one-symbol code. An
    /// over-subscribed set (Kraft sum > 1) is rejected; an incomplete set is
    /// also rejected, except for the single-code case DEFLATE allows for
    /// distance trees.
    pub fn new(lengths: &[u8]) -> Result<Decoder, HuffError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(HuffError::InvalidLengths);
        }
        let mut count = vec![0u16; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Kraft check.
        let mut left: i64 = 1;
        for &c in &count[1..=max_len as usize] {
            left <<= 1;
            left -= c as i64;
            if left < 0 {
                return Err(HuffError::InvalidLengths);
            }
        }
        let total: u32 = count.iter().map(|&c| c as u32).sum();
        if left > 0 && total != 1 {
            // Incomplete code with more than one symbol: reject. (The
            // single-symbol case arises from our own encoder for degenerate
            // distance trees and is tolerated like zlib does.)
            return Err(HuffError::InvalidLengths);
        }

        // offsets[l] = index of first symbol of length l in `symbols`.
        let mut offsets = vec![0u16; max_len as usize + 2];
        for l in 1..=max_len as usize {
            offsets[l + 1] = offsets[l] + count[l];
        }
        let mut symbols = vec![0u16; total as usize];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[offsets[l as usize + 1] as usize - count[l as usize] as usize] = sym as u16;
                count[l as usize] -= 1;
            }
        }
        // `count` was consumed as a cursor; rebuild it.
        let mut count = vec![0u16; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        Ok(Decoder { count, symbols, max_len })
    }

    /// Decodes one symbol from `r`.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, HuffError> {
        let mut code: u32 = 0;
        let mut first: u32 = 0;
        let mut index: u32 = 0;
        for len in 1..=self.max_len as usize {
            code |= r.read_bit()?;
            let cnt = self.count[len] as u32;
            if code < first + cnt {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += cnt;
            first = (first + cnt) << 1;
            code <<= 1;
        }
        Err(HuffError::BadCode)
    }
}

/// Root-table width for [`TableDecoder`]. Codes up to this length decode in
/// a single lookup; longer codes chain through one subtable.
const PRIMARY_BITS: u32 = 10;

/// Flag bit marking a primary entry as a link to a subtable.
const LINK: u32 = 0x8000_0000;

/// Table-driven canonical Huffman decoder: a `1 << PRIMARY_BITS` root table
/// plus second-level subtables for codes longer than [`PRIMARY_BITS`].
///
/// Entries are `u32`s: a direct entry packs `(symbol << 16) | code_len`; a
/// link entry sets [`LINK`] and packs `(subtable_base << 8) | subtable_bits`.
/// Unreachable patterns (holes in incomplete codes) stay zero and decode to
/// [`HuffError::BadCode`]. Accepts exactly the length sets [`Decoder::new`]
/// accepts and returns the same error kinds [`Decoder::decode`] would, so
/// the two are interchangeable; this one trades build cost for a decode
/// that touches at most two table entries instead of one branch per bit.
#[derive(Debug)]
pub struct TableDecoder {
    primary: Vec<u32>,
    sub: Vec<u32>,
    max_len: u8,
}

impl TableDecoder {
    /// Builds the lookup tables from code lengths. Validation is identical
    /// to [`Decoder::new`]: over-subscribed sets and incomplete sets (other
    /// than the single-symbol degenerate code) are rejected.
    pub fn new(lengths: &[u8]) -> Result<TableDecoder, HuffError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(HuffError::InvalidLengths);
        }
        let mut count = vec![0u32; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut left: i64 = 1;
        for &c in &count[1..=max_len as usize] {
            left <<= 1;
            left -= c as i64;
            if left < 0 {
                return Err(HuffError::InvalidLengths);
            }
        }
        let total: u32 = count.iter().sum();
        if left > 0 && total != 1 {
            return Err(HuffError::InvalidLengths);
        }

        let codes = canonical_codes(lengths);
        let mut primary = vec![0u32; 1 << PRIMARY_BITS];
        let mut sub: Vec<u32> = Vec::new();

        // Short codes stride-fill the root table directly.
        for (sym, &len) in lengths.iter().enumerate() {
            let len = len as u32;
            if len == 0 || len > PRIMARY_BITS {
                continue;
            }
            let entry = ((sym as u32) << 16) | len;
            let mut idx = codes[sym] as usize;
            while idx < (1 << PRIMARY_BITS) {
                primary[idx] = entry;
                idx += 1 << len;
            }
        }

        if max_len as u32 > PRIMARY_BITS {
            // Long codes: group by their low PRIMARY_BITS (the first bits on
            // the wire — `canonical_codes` is already LSB-first), size each
            // prefix's subtable by its deepest code, then stride-fill.
            let mut sub_max = vec![0u8; 1 << PRIMARY_BITS];
            for (sym, &len) in lengths.iter().enumerate() {
                if (len as u32) > PRIMARY_BITS {
                    let prefix = (codes[sym] as usize) & ((1 << PRIMARY_BITS) - 1);
                    sub_max[prefix] = sub_max[prefix].max(len);
                }
            }
            let mut base = vec![0u32; 1 << PRIMARY_BITS];
            for prefix in 0..1usize << PRIMARY_BITS {
                if sub_max[prefix] == 0 {
                    continue;
                }
                let sub_bits = sub_max[prefix] as u32 - PRIMARY_BITS;
                base[prefix] = sub.len() as u32;
                sub.resize(sub.len() + (1 << sub_bits), 0);
                primary[prefix] = LINK | (base[prefix] << 8) | sub_bits;
            }
            for (sym, &len) in lengths.iter().enumerate() {
                let len = len as u32;
                if len <= PRIMARY_BITS {
                    continue;
                }
                let prefix = (codes[sym] as usize) & ((1 << PRIMARY_BITS) - 1);
                let sub_bits = sub_max[prefix] as u32 - PRIMARY_BITS;
                let entry = ((sym as u32) << 16) | len;
                let mut idx = (codes[sym] as usize) >> PRIMARY_BITS;
                while idx < (1 << sub_bits) {
                    sub[base[prefix] as usize + idx] = entry;
                    idx += 1 << (len - PRIMARY_BITS);
                }
            }
        }

        Ok(TableDecoder { primary, sub, max_len })
    }

    /// Decodes one symbol from `r` via zero-padded lookahead.
    ///
    /// Error mapping matches the bit-by-bit walk exactly: a valid entry
    /// whose code length exceeds the remaining input is `Truncated`; a hole
    /// is `BadCode` only when a full `max_len` bits were actually available
    /// (otherwise the walk would have run dry first).
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, HuffError> {
        r.ensure(self.max_len as u32);
        let mut entry = self.primary[r.peek(PRIMARY_BITS) as usize];
        if entry & LINK != 0 {
            let sub_bits = entry & 0xff;
            let base = (entry >> 8) & 0x7fff;
            let idx = r.peek(PRIMARY_BITS + sub_bits) >> PRIMARY_BITS;
            entry = self.sub[(base + idx) as usize];
        }
        if entry == 0 {
            return if r.available() < self.max_len as u32 {
                Err(HuffError::Truncated)
            } else {
                Err(HuffError::BadCode)
            };
        }
        let len = entry & 0x1f;
        if len > r.available() {
            return Err(HuffError::Truncated);
        }
        r.consume(len);
        Ok((entry >> 16) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    #[test]
    fn lengths_satisfy_kraft() {
        let freqs = [10u64, 1, 1, 1, 1, 30, 7, 0, 2];
        let lens = limited_code_lengths(&freqs, 15);
        let kraft: f64 = lens.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
        assert_eq!(lens[7], 0, "zero-frequency symbol must get no code");
        for (i, &l) in lens.iter().enumerate() {
            if freqs[i] > 0 {
                assert!(l > 0);
            }
        }
    }

    #[test]
    fn lengths_are_optimal_for_dyadic_input() {
        // Frequencies 8,4,2,1,1 → optimal lengths 1,2,3,4,4.
        let lens = limited_code_lengths(&[8, 4, 2, 1, 1], 15);
        assert_eq!(lens, vec![1, 2, 3, 4, 4]);
    }

    #[test]
    fn limit_is_enforced() {
        // Fibonacci-like frequencies force deep trees in unlimited Huffman.
        let freqs: Vec<u64> = (0..30).map(|i| 1u64 << i.min(40)).collect();
        let lens = limited_code_lengths(&freqs, 15);
        assert!(lens.iter().all(|&l| l <= 15));
        let kraft: f64 = lens.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9);
    }

    #[test]
    fn single_symbol_gets_length_one() {
        let lens = limited_code_lengths(&[0, 5, 0], 15);
        assert_eq!(lens, vec![0, 1, 0]);
    }

    #[test]
    fn empty_alphabet() {
        assert_eq!(limited_code_lengths(&[0, 0], 15), vec![0, 0]);
    }

    #[test]
    fn canonical_code_values() {
        // RFC 1951 §3.2.2 worked example: lengths (3,3,3,3,3,2,4,4)
        // → codes 010,011,100,101,110,00,1110,1111 (before bit reversal).
        let lens = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lens);
        let expect = [0b010u16, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(codes[i], reverse_bits(e, lens[i]), "symbol {i}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let freqs: Vec<u64> = (1..=40u64).map(|i| i * i % 17 + 1).collect();
        let lens = limited_code_lengths(&freqs, 15);
        let codes = canonical_codes(&lens);
        let dec = Decoder::new(&lens).unwrap();
        let msg: Vec<u16> = (0..1000u32).map(|i| (i * 7 % 40) as u16).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            w.write_bits(codes[s as usize] as u32, lens[s as usize] as u32);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn oversubscribed_rejected() {
        assert_eq!(Decoder::new(&[1, 1, 1]).unwrap_err(), HuffError::InvalidLengths);
    }

    #[test]
    fn incomplete_rejected() {
        assert_eq!(Decoder::new(&[2, 2, 2]).unwrap_err(), HuffError::InvalidLengths);
    }

    #[test]
    fn single_code_tolerated() {
        let dec = Decoder::new(&[0, 1, 0]).unwrap();
        let mut w = BitWriter::new();
        w.write_bits(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
    }

    #[test]
    fn table_decoder_matches_bitwise_decoder() {
        // Deep, skewed tree: forces codes past PRIMARY_BITS so both the
        // root table and the subtable path are exercised.
        let freqs: Vec<u64> = (0..40).map(|i| 1u64 << (i / 3).min(13)).collect();
        let lens = limited_code_lengths(&freqs, 15);
        assert!(lens.iter().any(|&l| l as u32 > super::PRIMARY_BITS), "want long codes");
        let codes = canonical_codes(&lens);
        let bitwise = Decoder::new(&lens).unwrap();
        let table = TableDecoder::new(&lens).unwrap();
        let msg: Vec<u16> = (0..2000u32).map(|i| (i * 13 % 40) as u16).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            w.write_bits(codes[s as usize] as u32, lens[s as usize] as u32);
        }
        let bytes = w.finish();
        let (mut r1, mut r2) = (BitReader::new(&bytes), BitReader::new(&bytes));
        for &s in &msg {
            assert_eq!(bitwise.decode(&mut r1).unwrap(), s);
            assert_eq!(table.decode(&mut r2).unwrap(), s);
        }
    }

    #[test]
    fn table_decoder_validation_matches() {
        assert_eq!(TableDecoder::new(&[1, 1, 1]).unwrap_err(), HuffError::InvalidLengths);
        assert_eq!(TableDecoder::new(&[2, 2, 2]).unwrap_err(), HuffError::InvalidLengths);
        assert_eq!(TableDecoder::new(&[0, 0]).unwrap_err(), HuffError::InvalidLengths);
        assert!(TableDecoder::new(&[0, 1, 0]).is_ok());
    }

    #[test]
    fn table_decoder_single_code_and_hole() {
        let dec = TableDecoder::new(&[0, 1, 0]).unwrap();
        let mut w = BitWriter::new();
        w.write_bits(0, 1);
        w.write_bits(1, 1); // the unassigned half of the code space
        for _ in 0..14 {
            w.write_bits(1, 1); // pad so max_len bits are available
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
        r.consume(0); // no-op; next decode peeks the hole
        assert_eq!(dec.decode(&mut r).unwrap_err(), HuffError::BadCode);
    }

    #[test]
    fn table_decoder_truncated() {
        let lens = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let dec = TableDecoder::new(&lens).unwrap();
        let mut r = BitReader::new(&[]);
        assert_eq!(dec.decode(&mut r).unwrap_err(), HuffError::Truncated);
    }

    #[test]
    fn reverse_bits_cases() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b10000000, 8), 0b1);
        assert_eq!(reverse_bits(0, 15), 0);
    }
}
