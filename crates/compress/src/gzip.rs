//! gzip member framing (RFC 1952).
//!
//! Docker registries transfer layers as gzip-compressed tarballs; this
//! module wraps the raw DEFLATE codec in the gzip container: a 10-byte
//! header, the compressed stream, then CRC-32 and ISIZE trailers which the
//! decoder verifies.

use crate::deflate::{deflate, CompressOptions};
use crate::inflate::{inflate_into, inflate_reference, InflateError};
use dhub_digest::crc32;

/// gzip magic bytes.
const MAGIC: [u8; 2] = [0x1f, 0x8b];
/// Compression method 8 = DEFLATE.
const CM_DEFLATE: u8 = 8;
/// OS byte 255 = unknown.
const OS_UNKNOWN: u8 = 255;

/// Errors raised on malformed gzip members.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GzipError {
    /// Input shorter than the fixed header + trailer.
    Truncated,
    /// Magic bytes or compression method wrong.
    BadHeader,
    /// An optional header field (FEXTRA/FNAME/FCOMMENT/FHCRC) is malformed.
    BadOptionalField,
    /// The embedded DEFLATE stream is invalid.
    Deflate(InflateError),
    /// CRC-32 trailer mismatch: the trailer claimed `want`, the payload
    /// hashed to `got`.
    BadCrc { want: u32, got: u32 },
    /// ISIZE trailer mismatch: the trailer claimed `want` bytes, the payload
    /// decompressed to `got`.
    BadLength { want: u32, got: u32 },
}

impl std::fmt::Display for GzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GzipError::Truncated => f.write_str("truncated gzip member"),
            GzipError::BadHeader => f.write_str("bad gzip header"),
            GzipError::BadOptionalField => f.write_str("malformed optional gzip header field"),
            GzipError::Deflate(e) => write!(f, "deflate error: {e}"),
            GzipError::BadCrc { want, got } => {
                write!(f, "gzip crc mismatch (trailer 0x{want:08x}, payload 0x{got:08x})")
            }
            GzipError::BadLength { want, got } => {
                write!(f, "gzip isize mismatch (trailer {want}, payload {got})")
            }
        }
    }
}

impl std::error::Error for GzipError {}

/// Compresses `data` into a single gzip member.
pub fn gzip_compress(data: &[u8], opts: &CompressOptions) -> Vec<u8> {
    let body = deflate(data, opts);
    let mut out = Vec::with_capacity(body.len() + 18);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no optional fields
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME = 0 for reproducible bytes
    out.push(0); // XFL
    out.push(OS_UNKNOWN);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Parses the header, returning `(body, want_crc, want_len)`.
fn gzip_frame(data: &[u8]) -> Result<(&[u8], u32, u32), GzipError> {
    if data.len() < 18 {
        return Err(GzipError::Truncated);
    }
    if data[0..2] != MAGIC || data[2] != CM_DEFLATE {
        return Err(GzipError::BadHeader);
    }
    let flg = data[3];
    if flg & 0xE0 != 0 {
        // Reserved flag bits must be zero.
        return Err(GzipError::BadHeader);
    }
    let mut pos = 10usize;
    if flg & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > data.len() {
            return Err(GzipError::BadOptionalField);
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flg & flag != 0 {
            let end = data[pos..].iter().position(|&b| b == 0).ok_or(GzipError::BadOptionalField)?;
            pos += end + 1;
        }
    }
    if flg & 0x02 != 0 {
        // FHCRC
        pos += 2;
    }
    if pos + 8 > data.len() {
        return Err(GzipError::BadOptionalField);
    }
    let body = &data[pos..data.len() - 8];
    let want_crc = u32::from_le_bytes(data[data.len() - 8..data.len() - 4].try_into().unwrap());
    let want_len = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    Ok((body, want_crc, want_len))
}

/// Output pre-size from the ISIZE footer. The footer is advisory until the
/// CRC check passes, so an implausible value (smaller than half the
/// compressed body, or past the 1032:1 DEFLATE expansion bound) falls back
/// to the old 3× heuristic / the bound — a corrupt footer must not drive a
/// multi-gigabyte reserve.
fn isize_hint(body_len: usize, want_len: u32) -> usize {
    let hint = want_len as usize;
    if hint < body_len / 2 {
        body_len.saturating_mul(3)
    } else {
        hint.min(body_len.saturating_mul(1032).max(4096))
    }
}

/// Decompresses a single gzip member, verifying CRC-32 and ISIZE.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    let mut out = Vec::new();
    gzip_decompress_into(data, &mut out)?;
    Ok(out)
}

/// Decompresses into `out` (cleared first, capacity kept), pre-sizing from
/// the trailer ISIZE. The reusable-buffer form the fused analysis path
/// feeds from its per-worker scratch arena.
pub fn gzip_decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), GzipError> {
    let (body, want_crc, want_len) = gzip_frame(data)?;
    inflate_into(body, out, Some(isize_hint(body.len(), want_len)))
        .map_err(GzipError::Deflate)?;
    let got_crc = crc32(out);
    if got_crc != want_crc {
        return Err(GzipError::BadCrc { want: want_crc, got: got_crc });
    }
    if out.len() as u32 != want_len {
        return Err(GzipError::BadLength { want: want_len, got: out.len() as u32 });
    }
    Ok(())
}

/// Pre-fusion golden model: same framing checks over [`inflate_reference`].
pub fn gzip_decompress_reference(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    let (body, want_crc, want_len) = gzip_frame(data)?;
    let out = inflate_reference(body).map_err(GzipError::Deflate)?;
    let got_crc = crc32(&out);
    if got_crc != want_crc {
        return Err(GzipError::BadCrc { want: want_crc, got: got_crc });
    }
    if out.len() as u32 != want_len {
        return Err(GzipError::BadLength { want: want_len, got: out.len() as u32 });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = b"FROM ubuntu:14.04\nRUN apt-get update\n".repeat(50);
        let gz = gzip_compress(&data, &CompressOptions::default());
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn empty_payload() {
        let gz = gzip_compress(b"", &CompressOptions::default());
        assert_eq!(gzip_decompress(&gz).unwrap(), b"");
    }

    #[test]
    fn header_bytes() {
        let gz = gzip_compress(b"x", &CompressOptions::default());
        assert_eq!(&gz[0..2], &[0x1f, 0x8b]);
        assert_eq!(gz[2], 8);
    }

    #[test]
    fn deterministic_output() {
        // MTIME pinned to zero: identical input → identical bytes, which the
        // registry relies on for stable layer digests.
        let a = gzip_compress(b"layer content", &CompressOptions::default());
        let b = gzip_compress(b"layer content", &CompressOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut gz = gzip_compress(b"data", &CompressOptions::default());
        gz[0] = 0;
        assert_eq!(gzip_decompress(&gz).unwrap_err(), GzipError::BadHeader);
    }

    #[test]
    fn rejects_corrupt_crc() {
        let payload = b"data data data";
        let mut gz = gzip_compress(payload, &CompressOptions::default());
        let n = gz.len();
        gz[n - 5] ^= 0xff;
        // The error must carry both sides of the mismatch: the (corrupted)
        // trailer value and the CRC of the actual payload.
        let err = gzip_decompress(&gz).unwrap_err();
        let good = crc32(payload);
        assert_eq!(err, GzipError::BadCrc { want: good ^ 0xff00_0000, got: good });
        assert!(err.to_string().contains("crc mismatch"), "{err}");
        assert_eq!(gzip_decompress_reference(&gz).unwrap_err(), err);
    }

    #[test]
    fn rejects_corrupt_isize() {
        let payload = b"data data data";
        let mut gz = gzip_compress(payload, &CompressOptions::default());
        let n = gz.len();
        gz[n - 1] ^= 0xff;
        // A corrupt ISIZE also feeds the decoder a bogus pre-size hint; the
        // plausibility clamp must keep that from mattering.
        let want = payload.len() as u32 | 0xff00_0000;
        let err = gzip_decompress(&gz).unwrap_err();
        assert_eq!(err, GzipError::BadLength { want, got: payload.len() as u32 });
        assert_eq!(gzip_decompress_reference(&gz).unwrap_err(), err);
    }

    #[test]
    fn isize_hint_plausibility() {
        // Exact footer: trusted.
        assert_eq!(isize_hint(1000, 2500), 2500);
        // Footer implausibly small (corrupt): 3× heuristic.
        assert_eq!(isize_hint(1000, 3), 3000);
        // Footer implausibly large (corrupt): clamped to the DEFLATE
        // expansion bound, never a runaway reserve.
        assert_eq!(isize_hint(1000, u32::MAX), 1_032_000);
    }

    #[test]
    fn into_matches_owned_and_reference() {
        let data = b"FROM ubuntu\nADD . /srv\n".repeat(200);
        let gz = gzip_compress(&data, &CompressOptions::default());
        let mut buf = Vec::new();
        gzip_decompress_into(&gz, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
        assert_eq!(gzip_decompress_reference(&gz).unwrap(), data);
    }

    #[test]
    fn rejects_truncation() {
        let gz = gzip_compress(b"data", &CompressOptions::default());
        assert_eq!(gzip_decompress(&gz[..10]).unwrap_err(), GzipError::Truncated);
    }

    #[test]
    fn tolerates_fname_field() {
        // Build a member with FNAME set, as real docker layers sometimes have.
        let mut gz = gzip_compress(b"payload", &CompressOptions::default());
        let body: Vec<u8> = gz.split_off(10);
        gz[3] |= 0x08;
        gz.extend_from_slice(b"layer.tar\0");
        gz.extend_from_slice(&body);
        assert_eq!(gzip_decompress(&gz).unwrap(), b"payload");
    }
}
