//! gzip member framing (RFC 1952).
//!
//! Docker registries transfer layers as gzip-compressed tarballs; this
//! module wraps the raw DEFLATE codec in the gzip container: a 10-byte
//! header, the compressed stream, then CRC-32 and ISIZE trailers which the
//! decoder verifies.

use crate::deflate::{deflate, CompressOptions};
use crate::inflate::{inflate, InflateError};
use dhub_digest::crc32;

/// gzip magic bytes.
const MAGIC: [u8; 2] = [0x1f, 0x8b];
/// Compression method 8 = DEFLATE.
const CM_DEFLATE: u8 = 8;
/// OS byte 255 = unknown.
const OS_UNKNOWN: u8 = 255;

/// Errors raised on malformed gzip members.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GzipError {
    /// Input shorter than the fixed header + trailer.
    Truncated,
    /// Magic bytes or compression method wrong.
    BadHeader,
    /// An optional header field (FEXTRA/FNAME/FCOMMENT/FHCRC) is malformed.
    BadOptionalField,
    /// The embedded DEFLATE stream is invalid.
    Deflate(InflateError),
    /// CRC-32 trailer mismatch.
    BadCrc,
    /// ISIZE trailer mismatch.
    BadLength,
}

impl std::fmt::Display for GzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GzipError::Truncated => f.write_str("truncated gzip member"),
            GzipError::BadHeader => f.write_str("bad gzip header"),
            GzipError::BadOptionalField => f.write_str("malformed optional gzip header field"),
            GzipError::Deflate(e) => write!(f, "deflate error: {e}"),
            GzipError::BadCrc => f.write_str("gzip crc mismatch"),
            GzipError::BadLength => f.write_str("gzip isize mismatch"),
        }
    }
}

impl std::error::Error for GzipError {}

/// Compresses `data` into a single gzip member.
pub fn gzip_compress(data: &[u8], opts: &CompressOptions) -> Vec<u8> {
    let body = deflate(data, opts);
    let mut out = Vec::with_capacity(body.len() + 18);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no optional fields
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME = 0 for reproducible bytes
    out.push(0); // XFL
    out.push(OS_UNKNOWN);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompresses a single gzip member, verifying CRC-32 and ISIZE.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    if data.len() < 18 {
        return Err(GzipError::Truncated);
    }
    if data[0..2] != MAGIC || data[2] != CM_DEFLATE {
        return Err(GzipError::BadHeader);
    }
    let flg = data[3];
    if flg & 0xE0 != 0 {
        // Reserved flag bits must be zero.
        return Err(GzipError::BadHeader);
    }
    let mut pos = 10usize;
    if flg & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > data.len() {
            return Err(GzipError::BadOptionalField);
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flg & flag != 0 {
            let end = data[pos..].iter().position(|&b| b == 0).ok_or(GzipError::BadOptionalField)?;
            pos += end + 1;
        }
    }
    if flg & 0x02 != 0 {
        // FHCRC
        pos += 2;
    }
    if pos + 8 > data.len() {
        return Err(GzipError::BadOptionalField);
    }
    let body = &data[pos..data.len() - 8];
    let out = inflate(body).map_err(GzipError::Deflate)?;
    let want_crc = u32::from_le_bytes(data[data.len() - 8..data.len() - 4].try_into().unwrap());
    let want_len = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(&out) != want_crc {
        return Err(GzipError::BadCrc);
    }
    if out.len() as u32 != want_len {
        return Err(GzipError::BadLength);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = b"FROM ubuntu:14.04\nRUN apt-get update\n".repeat(50);
        let gz = gzip_compress(&data, &CompressOptions::default());
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn empty_payload() {
        let gz = gzip_compress(b"", &CompressOptions::default());
        assert_eq!(gzip_decompress(&gz).unwrap(), b"");
    }

    #[test]
    fn header_bytes() {
        let gz = gzip_compress(b"x", &CompressOptions::default());
        assert_eq!(&gz[0..2], &[0x1f, 0x8b]);
        assert_eq!(gz[2], 8);
    }

    #[test]
    fn deterministic_output() {
        // MTIME pinned to zero: identical input → identical bytes, which the
        // registry relies on for stable layer digests.
        let a = gzip_compress(b"layer content", &CompressOptions::default());
        let b = gzip_compress(b"layer content", &CompressOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut gz = gzip_compress(b"data", &CompressOptions::default());
        gz[0] = 0;
        assert_eq!(gzip_decompress(&gz).unwrap_err(), GzipError::BadHeader);
    }

    #[test]
    fn rejects_corrupt_crc() {
        let mut gz = gzip_compress(b"data data data", &CompressOptions::default());
        let n = gz.len();
        gz[n - 5] ^= 0xff;
        assert_eq!(gzip_decompress(&gz).unwrap_err(), GzipError::BadCrc);
    }

    #[test]
    fn rejects_corrupt_isize() {
        let mut gz = gzip_compress(b"data data data", &CompressOptions::default());
        let n = gz.len();
        gz[n - 1] ^= 0xff;
        assert_eq!(gzip_decompress(&gz).unwrap_err(), GzipError::BadLength);
    }

    #[test]
    fn rejects_truncation() {
        let gz = gzip_compress(b"data", &CompressOptions::default());
        assert_eq!(gzip_decompress(&gz[..10]).unwrap_err(), GzipError::Truncated);
    }

    #[test]
    fn tolerates_fname_field() {
        // Build a member with FNAME set, as real docker layers sometimes have.
        let mut gz = gzip_compress(b"payload", &CompressOptions::default());
        let body: Vec<u8> = gz.split_off(10);
        gz[3] |= 0x08;
        gz.extend_from_slice(b"layer.tar\0");
        gz.extend_from_slice(&body);
        assert_eq!(gzip_decompress(&gz).unwrap(), b"payload");
    }
}
