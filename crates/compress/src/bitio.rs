//! LSB-first bit I/O as DEFLATE requires (RFC 1951 §3.1.1).
//!
//! Data elements are packed starting from the least significant bit of each
//! byte. Huffman codes are written most-significant-bit first *of the code*,
//! which callers achieve by reversing the code bits before calling
//! [`BitWriter::write_bits`].

/// Accumulates bits into a byte vector.
#[derive(Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bit accumulator; bits fill from the LSB.
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_bytes`).
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `n` bits of `value` (LSB first). `n` must be ≤ 32.
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || (value as u64) < (1u64 << n));
        self.acc |= (value as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Pads with zero bits to the next byte boundary (used before stored
    /// blocks and at stream end).
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends raw bytes; caller must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.nbits, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of complete bytes emitted so far plus any partial byte.
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }

    /// Finishes the stream (byte-aligns) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

/// Error produced when a reader runs past the end of input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfBits;

/// Reads bits LSB-first from a byte slice.
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, acc: 0, nbits: 0 }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `n` bits (n ≤ 32), LSB-first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32, OutOfBits> {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(OutOfBits);
            }
        }
        let v = (self.acc & ((1u64 << n) - 1)) as u32;
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, OutOfBits> {
        self.read_bits(1)
    }

    /// Discards bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Reads `n` raw bytes; requires byte alignment.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, OutOfBits> {
        debug_assert_eq!(self.nbits % 8, 0);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.read_bits(8)? as u8);
        }
        Ok(out)
    }

    /// True when all input (including buffered bits) has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.nbits == 0 && self.pos >= self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bit_patterns() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b10, 2);
        w.write_bits(0b10110, 5);
        w.write_bits(0xABCD, 16);
        w.write_bits(0x3FFFFFFF, 30);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
        assert_eq!(r.read_bits(5).unwrap(), 0b10110);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.read_bits(30).unwrap(), 0x3FFFFFFF);
    }

    #[test]
    fn lsb_first_packing() {
        // RFC 1951: first bit written lands in the LSB of the first byte.
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // bit0 = 1
        w.write_bits(0, 1); // bit1 = 0
        w.write_bits(1, 1); // bit2 = 1
        assert_eq!(w.finish(), vec![0b0000_0101]);
    }

    #[test]
    fn align_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bytes(&[0xDE, 0xAD]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b11, 0xDE, 0xAD]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xDE, 0xAD]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn out_of_bits() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1), Err(OutOfBits));
    }

    #[test]
    fn zero_bit_read() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn bit_len_tracks_partial() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 11);
    }
}
