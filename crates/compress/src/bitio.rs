//! LSB-first bit I/O as DEFLATE requires (RFC 1951 §3.1.1).
//!
//! Data elements are packed starting from the least significant bit of each
//! byte. Huffman codes are written most-significant-bit first *of the code*,
//! which callers achieve by reversing the code bits before calling
//! [`BitWriter::write_bits`].

/// Accumulates bits into a byte vector.
#[derive(Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bit accumulator; bits fill from the LSB.
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_bytes`).
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `n` bits of `value` (LSB first). `n` must be ≤ 32.
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || (value as u64) < (1u64 << n));
        self.acc |= (value as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Pads with zero bits to the next byte boundary (used before stored
    /// blocks and at stream end).
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends raw bytes; caller must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.nbits, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of complete bytes emitted so far plus any partial byte.
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }

    /// Finishes the stream (byte-aligns) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

/// Error produced when a reader runs past the end of input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfBits;

/// Reads bits LSB-first from a byte slice.
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, acc: 0, nbits: 0 }
    }

    #[inline]
    fn refill(&mut self) {
        if self.pos + 8 <= self.data.len() {
            // Word path: one unaligned load, then take as many whole bytes
            // as fit. Masking (rather than OR-ing the full word) preserves
            // the invariant that bits above `nbits` in `acc` are zero, which
            // `peek` relies on for zero-padded lookahead at stream end.
            let take = ((63 - self.nbits) >> 3) as usize;
            if take > 0 {
                let w = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
                self.acc |= (w & ((1u64 << (8 * take)) - 1)) << self.nbits;
                self.pos += take;
                self.nbits += 8 * take as u32;
            }
        } else {
            while self.nbits <= 56 && self.pos < self.data.len() {
                self.acc |= (self.data[self.pos] as u64) << self.nbits;
                self.pos += 1;
                self.nbits += 8;
            }
        }
    }

    /// Refills if fewer than `n` bits are buffered; returns whether at
    /// least `n` bits are now available. Unlike [`read_bits`](Self::read_bits)
    /// this never errors — near stream end callers may go on to [`peek`]
    /// (zero-padded) and decide for themselves.
    ///
    /// [`peek`]: Self::peek
    #[inline]
    pub fn ensure(&mut self, n: u32) -> bool {
        if self.nbits < n {
            self.refill();
        }
        self.nbits >= n
    }

    /// Returns the next `n` bits (n ≤ 32) without consuming them. Bits past
    /// the end of input read as zero; callers use [`available`](Self::available)
    /// to tell padding from data.
    #[inline]
    pub fn peek(&self, n: u32) -> u32 {
        debug_assert!(n <= 32);
        (self.acc & ((1u64 << n) - 1)) as u32
    }

    /// Discards `n` buffered bits. `n` must not exceed [`available`](Self::available).
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.nbits);
        self.acc >>= n;
        self.nbits -= n;
    }

    /// Number of bits currently buffered (without refilling).
    #[inline]
    pub fn available(&self) -> u32 {
        self.nbits
    }

    /// Appends `n` raw bytes to `out` in one bulk copy; requires byte
    /// alignment. The fast-path equivalent of [`read_bytes`](Self::read_bytes)
    /// for stored DEFLATE blocks.
    pub fn read_slice_into(&mut self, n: usize, out: &mut Vec<u8>) -> Result<(), OutOfBits> {
        debug_assert_eq!(self.nbits % 8, 0);
        let mut n = n;
        out.reserve(n);
        while n > 0 && self.nbits > 0 {
            out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
            n -= 1;
        }
        if n > self.data.len() - self.pos {
            return Err(OutOfBits);
        }
        out.extend_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(())
    }

    /// Reads `n` bits (n ≤ 32), LSB-first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32, OutOfBits> {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(OutOfBits);
            }
        }
        let v = (self.acc & ((1u64 << n) - 1)) as u32;
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, OutOfBits> {
        self.read_bits(1)
    }

    /// Discards bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Reads `n` raw bytes; requires byte alignment.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, OutOfBits> {
        debug_assert_eq!(self.nbits % 8, 0);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.read_bits(8)? as u8);
        }
        Ok(out)
    }

    /// True when all input (including buffered bits) has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.nbits == 0 && self.pos >= self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bit_patterns() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b10, 2);
        w.write_bits(0b10110, 5);
        w.write_bits(0xABCD, 16);
        w.write_bits(0x3FFFFFFF, 30);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
        assert_eq!(r.read_bits(5).unwrap(), 0b10110);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.read_bits(30).unwrap(), 0x3FFFFFFF);
    }

    #[test]
    fn lsb_first_packing() {
        // RFC 1951: first bit written lands in the LSB of the first byte.
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // bit0 = 1
        w.write_bits(0, 1); // bit1 = 0
        w.write_bits(1, 1); // bit2 = 1
        assert_eq!(w.finish(), vec![0b0000_0101]);
    }

    #[test]
    fn align_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bytes(&[0xDE, 0xAD]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b11, 0xDE, 0xAD]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xDE, 0xAD]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn out_of_bits() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1), Err(OutOfBits));
    }

    #[test]
    fn zero_bit_read() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn peek_consume_matches_read_bits() {
        let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        let mut a = BitReader::new(&data);
        let mut b = BitReader::new(&data);
        for n in [1u32, 3, 7, 8, 13, 16, 25, 32, 5, 2] {
            assert!(a.ensure(n));
            let peeked = a.peek(n);
            a.consume(n);
            assert_eq!(peeked, b.read_bits(n).unwrap());
        }
    }

    #[test]
    fn peek_zero_pads_past_end() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(!r.ensure(16));
        assert_eq!(r.available(), 8);
        // High 8 bits of the peek are padding zeros, not data.
        assert_eq!(r.peek(16), 0x00FF);
    }

    #[test]
    fn read_slice_into_bulk_and_buffered() {
        let data: Vec<u8> = (0..40u32).map(|i| i as u8).collect();
        let mut r = BitReader::new(&data);
        // Force bytes into the accumulator first, then byte-align.
        assert_eq!(r.read_bits(8).unwrap(), 0);
        assert!(r.ensure(32));
        let mut out = vec![0xEE];
        r.read_slice_into(30, &mut out).unwrap();
        assert_eq!(out[0], 0xEE);
        assert_eq!(&out[1..], &data[1..31]);
        r.read_slice_into(9, &mut out).unwrap();
        assert_eq!(&out[31..], &data[31..40]);
        assert!(r.is_exhausted());
        assert_eq!(r.read_slice_into(1, &mut out), Err(OutOfBits));
    }

    #[test]
    fn bit_len_tracks_partial() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 11);
    }
}
