//! From-scratch DEFLATE (RFC 1951) and gzip (RFC 1952).
//!
//! Docker registries store layers as gzip-compressed tarballs, and the
//! paper's compression-ratio analysis (Fig. 4) measures exactly the
//! FLS-to-CLS ratio this codec produces. The implementation is complete and
//! self-contained:
//!
//! * [`bitio`] — LSB-first bit reader/writer used by the format,
//! * [`huffman`] — length-limited (package-merge) canonical Huffman codes
//!   and their decoder,
//! * [`lz77`] — hash-chain match finder over a 32 KiB window with lazy
//!   matching,
//! * [`deflate`]/[`inflate`] — block encoder (stored/fixed/dynamic) and the
//!   corresponding decoder,
//! * [`gzip`] — the gzip member framing with CRC-32 and ISIZE checking.
//!
//! The encoder picks, per block, whichever of stored/fixed/dynamic encodes
//! smallest, so incompressible inputs cost only the stored-block overhead —
//! which matters for the paper's observation that half of all layers are
//! small and barely compressible.

pub mod bitio;
pub mod deflate;
pub mod gzip;
pub mod huffman;
pub mod inflate;
pub mod lz77;
pub mod zlib;
mod tables;

pub use deflate::{deflate, CompressOptions};
pub use gzip::{
    gzip_compress, gzip_decompress, gzip_decompress_into, gzip_decompress_reference, GzipError,
};
pub use inflate::{inflate, inflate_into, inflate_reference, InflateError};
pub use zlib::{adler32, zlib_compress, zlib_decompress, ZlibError};
