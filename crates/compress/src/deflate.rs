//! DEFLATE block encoder (RFC 1951).
//!
//! Input is tokenized once by [`crate::lz77`], split into blocks, and each
//! block is emitted in whichever representation is smallest: stored, fixed
//! Huffman, or dynamic Huffman. This mirrors the trade-off the paper
//! observes in Fig. 4 — small or already-compressed layers gain nothing from
//! entropy coding, and the stored path keeps their overhead to 5 bytes per
//! 64 KiB.

use crate::bitio::BitWriter;
use crate::huffman::{canonical_codes, limited_code_lengths};
use crate::lz77::{tokenize, Lz77Options, Token};
use crate::tables::{
    dist_to_code, fixed_dist_lengths, fixed_lit_lengths, length_to_code, CLCL_ORDER,
};

/// End-of-block symbol in the literal/length alphabet.
const END_OF_BLOCK: usize = 256;

/// Encoder configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompressOptions {
    /// Match-finder tuning.
    pub lz77: Lz77Options,
}

impl CompressOptions {
    /// Fast, lower-ratio profile.
    pub fn fast() -> Self {
        CompressOptions { lz77: Lz77Options::fast() }
    }

    /// Slow, higher-ratio profile.
    pub fn best() -> Self {
        CompressOptions { lz77: Lz77Options::best() }
    }
}

/// Compresses `data` into a raw DEFLATE stream.
pub fn deflate(data: &[u8], opts: &CompressOptions) -> Vec<u8> {
    let tokens = tokenize(data, &opts.lz77);
    let mut w = BitWriter::new();
    // Token-count-bounded blocks: each block re-derives Huffman tables, so
    // heterogeneous files (tar archives!) get locally adapted codes.
    const BLOCK_TOKENS: usize = 1 << 16;
    if tokens.is_empty() {
        write_block(&mut w, data, &[], true);
        return w.finish();
    }
    let mut consumed_bytes = 0usize;
    let nblocks = tokens.len().div_ceil(BLOCK_TOKENS);
    for (bi, chunk) in tokens.chunks(BLOCK_TOKENS).enumerate() {
        let block_bytes: usize = chunk
            .iter()
            .map(|t| match t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => *len as usize,
            })
            .sum();
        let raw = &data[consumed_bytes..consumed_bytes + block_bytes];
        write_block(&mut w, raw, chunk, bi == nblocks - 1);
        consumed_bytes += block_bytes;
    }
    w.finish()
}

/// Writes one block, choosing the cheapest of stored/fixed/dynamic.
fn write_block(w: &mut BitWriter, raw: &[u8], tokens: &[Token], last: bool) {
    // Gather symbol frequencies (including the mandatory end-of-block).
    let mut lit_freq = [0u64; 286];
    let mut dist_freq = [0u64; 30];
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lc, _, _) = length_to_code(len);
                lit_freq[257 + lc] += 1;
                let (dc, _, _) = dist_to_code(dist);
                dist_freq[dc] += 1;
            }
        }
    }
    lit_freq[END_OF_BLOCK] += 1;

    let dyn_lit_lens = limited_code_lengths(&lit_freq, 15);
    let mut dyn_dist_lens = limited_code_lengths(&dist_freq, 15);
    // DEFLATE requires HDIST ≥ 1 code length; if the block has no matches,
    // transmit one dummy length-1 distance code.
    if dyn_dist_lens.iter().all(|&l| l == 0) {
        dyn_dist_lens[0] = 1;
    }

    let fixed_lit = fixed_lit_lengths();
    let fixed_dist = fixed_dist_lengths();

    let body_cost = |lit_lens: &[u8], dist_lens: &[u8]| -> u64 {
        let mut bits = 0u64;
        for t in tokens {
            match *t {
                Token::Literal(b) => bits += lit_lens[b as usize] as u64,
                Token::Match { len, dist } => {
                    let (lc, le, _) = length_to_code(len);
                    bits += lit_lens[257 + lc] as u64 + le as u64;
                    let (dc, de, _) = dist_to_code(dist);
                    bits += dist_lens[dc] as u64 + de as u64;
                }
            }
        }
        bits + lit_lens[END_OF_BLOCK] as u64
    };

    let (header, cl_syms) = dynamic_header(&dyn_lit_lens, &dyn_dist_lens);
    let dyn_cost = header + body_cost(&dyn_lit_lens, &dyn_dist_lens);
    let fixed_cost = body_cost(&fixed_lit, &fixed_dist);
    // Stored: byte alignment (≤7) + per-64K 32-bit len/nlen + payload.
    let stored_cost = 7 + (raw.len().div_ceil(0xFFFF).max(1) as u64) * 32 + raw.len() as u64 * 8;

    if stored_cost <= dyn_cost.min(fixed_cost) {
        write_stored(w, raw, last);
    } else if fixed_cost <= dyn_cost {
        w.write_bits(last as u32, 1);
        w.write_bits(0b01, 2);
        write_body(w, tokens, &fixed_lit, &fixed_dist);
    } else {
        w.write_bits(last as u32, 1);
        w.write_bits(0b10, 2);
        write_dynamic_header(w, &dyn_lit_lens, &dyn_dist_lens, &cl_syms);
        write_body(w, tokens, &dyn_lit_lens, &dyn_dist_lens);
    }
}

fn write_stored(w: &mut BitWriter, raw: &[u8], last: bool) {
    let chunks: Vec<&[u8]> = if raw.is_empty() { vec![&[][..]] } else { raw.chunks(0xFFFF).collect() };
    let n = chunks.len();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let is_last = last && i == n - 1;
        w.write_bits(is_last as u32, 1);
        w.write_bits(0b00, 2);
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(chunk);
    }
}

fn write_body(w: &mut BitWriter, tokens: &[Token], lit_lens: &[u8], dist_lens: &[u8]) {
    let lit_codes = canonical_codes(lit_lens);
    let dist_codes = canonical_codes(dist_lens);
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                w.write_bits(lit_codes[b as usize] as u32, lit_lens[b as usize] as u32);
            }
            Token::Match { len, dist } => {
                let (lc, le, lv) = length_to_code(len);
                let sym = 257 + lc;
                w.write_bits(lit_codes[sym] as u32, lit_lens[sym] as u32);
                if le > 0 {
                    w.write_bits(lv as u32, le as u32);
                }
                let (dc, de, dv) = dist_to_code(dist);
                w.write_bits(dist_codes[dc] as u32, dist_lens[dc] as u32);
                if de > 0 {
                    w.write_bits(dv as u32, de as u32);
                }
            }
        }
    }
    w.write_bits(lit_codes[END_OF_BLOCK] as u32, lit_lens[END_OF_BLOCK] as u32);
}

/// A code-length-alphabet symbol with its extra-bits payload.
#[derive(Clone, Copy)]
struct ClSym {
    sym: u8,
    extra_bits: u8,
    extra_val: u8,
}

/// Run-length encodes the literal+distance code lengths into the
/// code-length alphabet (symbols 0-18) per §3.2.7.
fn rle_code_lengths(lens: &[u8]) -> Vec<ClSym> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lens.len() {
        let v = lens[i];
        let mut run = 1;
        while i + run < lens.len() && lens[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut rem = run;
            while rem >= 11 {
                let take = rem.min(138);
                out.push(ClSym { sym: 18, extra_bits: 7, extra_val: (take - 11) as u8 });
                rem -= take;
            }
            if rem >= 3 {
                out.push(ClSym { sym: 17, extra_bits: 3, extra_val: (rem - 3) as u8 });
                rem = 0;
            }
            for _ in 0..rem {
                out.push(ClSym { sym: 0, extra_bits: 0, extra_val: 0 });
            }
        } else {
            out.push(ClSym { sym: v, extra_bits: 0, extra_val: 0 });
            let mut rem = run - 1;
            while rem >= 3 {
                let take = rem.min(6);
                out.push(ClSym { sym: 16, extra_bits: 2, extra_val: (take - 3) as u8 });
                rem -= take;
            }
            for _ in 0..rem {
                out.push(ClSym { sym: v, extra_bits: 0, extra_val: 0 });
            }
        }
        i += run;
    }
    out
}

/// Computes the dynamic header cost in bits and the RLE symbol stream.
fn dynamic_header(lit_lens: &[u8], dist_lens: &[u8]) -> (u64, Vec<ClSym>) {
    let hlit = trimmed_len(lit_lens, 257);
    let hdist = trimmed_len(dist_lens, 1);
    let mut all = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lens[..hlit]);
    all.extend_from_slice(&dist_lens[..hdist]);
    let syms = rle_code_lengths(&all);
    let mut cl_freq = [0u64; 19];
    for s in &syms {
        cl_freq[s.sym as usize] += 1;
    }
    let cl_lens = limited_code_lengths(&cl_freq, 7);
    let hclen = CLCL_ORDER
        .iter()
        .rposition(|&s| cl_lens[s] != 0)
        .map(|p| p + 1)
        .unwrap_or(4)
        .max(4);
    let mut bits = 5 + 5 + 4 + hclen as u64 * 3;
    for s in &syms {
        bits += cl_lens[s.sym as usize] as u64 + s.extra_bits as u64;
    }
    (bits, syms)
}

fn trimmed_len(lens: &[u8], min: usize) -> usize {
    lens.iter()
        .rposition(|&l| l != 0)
        .map(|p| p + 1)
        .unwrap_or(0)
        .max(min)
}

fn write_dynamic_header(w: &mut BitWriter, lit_lens: &[u8], dist_lens: &[u8], syms: &[ClSym]) {
    let hlit = trimmed_len(lit_lens, 257);
    let hdist = trimmed_len(dist_lens, 1);
    let mut cl_freq = [0u64; 19];
    for s in syms {
        cl_freq[s.sym as usize] += 1;
    }
    let cl_lens = limited_code_lengths(&cl_freq, 7);
    let cl_codes = canonical_codes(&cl_lens);
    let hclen = CLCL_ORDER
        .iter()
        .rposition(|&s| cl_lens[s] != 0)
        .map(|p| p + 1)
        .unwrap_or(4)
        .max(4);

    w.write_bits((hlit - 257) as u32, 5);
    w.write_bits((hdist - 1) as u32, 5);
    w.write_bits((hclen - 4) as u32, 4);
    for &s in CLCL_ORDER.iter().take(hclen) {
        w.write_bits(cl_lens[s] as u32, 3);
    }
    for s in syms {
        w.write_bits(cl_codes[s.sym as usize] as u32, cl_lens[s.sym as usize] as u32);
        if s.extra_bits > 0 {
            w.write_bits(s.extra_val as u32, s.extra_bits as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let compressed = deflate(data, &CompressOptions::default());
        let back = inflate(&compressed).expect("inflate");
        assert_eq!(back, data, "roundtrip mismatch ({} bytes)", data.len());
        compressed
    }

    #[test]
    fn empty_input() {
        roundtrip(b"");
    }

    #[test]
    fn small_inputs() {
        for data in [&b"a"[..], b"ab", b"abc", b"hello world"] {
            roundtrip(data);
        }
    }

    #[test]
    fn text_compresses_well() {
        let text = "The Docker registry is a platform for storing and sharing container images. "
            .repeat(200);
        let c = roundtrip(text.as_bytes());
        assert!(c.len() * 5 < text.len(), "ratio too low: {} -> {}", text.len(), c.len());
    }

    #[test]
    fn incompressible_stays_near_original() {
        let mut x = 0xdeadbeefu64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let c = roundtrip(&data);
        // Stored blocks bound the expansion to ~5 bytes / 64 KiB + 1.
        assert!(c.len() < data.len() + 64, "expanded too much: {}", c.len());
    }

    #[test]
    fn rle_heavy_input() {
        let mut data = Vec::new();
        for b in 0..=255u8 {
            data.extend(std::iter::repeat_n(b, 517));
        }
        let c = roundtrip(&data);
        assert!(c.len() * 20 < data.len());
    }

    #[test]
    fn multi_block_input() {
        // Enough tokens to force several blocks.
        let data: Vec<u8> = (0..700_000u32).map(|i| (i % 254) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn all_profiles() {
        let text = "pull push layer manifest registry image ".repeat(500);
        for opts in [CompressOptions::fast(), CompressOptions::default(), CompressOptions::best()] {
            let c = deflate(text.as_bytes(), &opts);
            assert_eq!(inflate(&c).unwrap(), text.as_bytes());
        }
    }

    #[test]
    fn rle_code_lengths_reconstruct() {
        let lens = [0u8, 0, 0, 0, 0, 3, 3, 3, 3, 3, 3, 3, 3, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2];
        let syms = rle_code_lengths(&lens);
        // Re-expand.
        let mut out = Vec::new();
        for s in &syms {
            match s.sym {
                16 => {
                    let v = *out.last().unwrap();
                    for _ in 0..s.extra_val + 3 {
                        out.push(v);
                    }
                }
                17 => out.extend(std::iter::repeat_n(0, s.extra_val as usize + 3)),
                18 => out.extend(std::iter::repeat_n(0, s.extra_val as usize + 11)),
                v => out.push(v),
            }
        }
        assert_eq!(out, lens);
    }
}
