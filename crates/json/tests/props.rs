//! Property tests: print→parse is the identity on the value model.

#![cfg(feature = "proptest")]

use dhub_json::{parse, Json};
use proptest::prelude::*;

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite doubles that survive text round-trip exactly.
        (-1.0e15f64..1.0e15).prop_map(|n| Json::Num((n * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 /_.:\\\\\"\n\t\u{e9}\u{4e2d}-]{0,32}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|pairs| {
                // Deduplicate keys: objects with repeated keys do not round-trip
                // through the insertion-order model.
                let mut seen = std::collections::HashSet::new();
                Json::Obj(pairs.into_iter().filter(|(k, _)| seen.insert(k.clone())).collect())
            }),
        ]
    })
}

proptest! {
    #[test]
    fn print_parse_roundtrip(v in arb_json()) {
        let text = v.to_string();
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }
}
