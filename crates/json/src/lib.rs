//! Minimal JSON support for Docker image manifests.
//!
//! Docker stores image manifests as JSON documents; the registry substrate
//! serializes and parses them through this crate. It is a small, complete
//! implementation of RFC 8259: a [`Json`] value model, a recursive-descent
//! [`parse`], and a deterministic writer (`Json::to_string` via `Display`) that emits
//! object keys in insertion order so manifest bytes (and therefore their
//! sha256 digests) are stable.

mod parse;
mod value;
mod write;

pub use parse::{parse, ParseError};
pub use value::Json;
