//! The JSON value model.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs rather than a map):
/// manifests are small, lookups are linear but cheap, and the serialized
/// byte sequence — hence the manifest digest — is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// JSON numbers are kept as f64; manifest fields (sizes, counts) fit
    /// losslessly below 2^53.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(pairs) => {
                if let Some(p) = pairs.iter_mut().find(|(k, _)| k == key) {
                    p.1 = value.into();
                } else {
                    pairs.push((key.to_string(), value.into()));
                }
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// Returns the array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the bool payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::write::to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let mut m = Json::obj();
        m.set("name", "nginx").set("size", 1234u64).set("ok", true);
        assert_eq!(m.get("name").unwrap().as_str(), Some("nginx"));
        assert_eq!(m.get("size").unwrap().as_u64(), Some(1234));
        assert_eq!(m.get("ok").unwrap().as_bool(), Some(true));
        assert!(m.get("missing").is_none());
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut m = Json::obj();
        m.set("k", 1u64);
        m.set("k", 2u64);
        assert_eq!(m.get("k").unwrap().as_u64(), Some(2));
        if let Json::Obj(pairs) = &m {
            assert_eq!(pairs.len(), 1);
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }

    #[test]
    fn from_vec() {
        let j: Json = vec!["a", "b"].into();
        assert_eq!(j.as_arr().unwrap().len(), 2);
    }
}
