//! Recursive-descent JSON parser (RFC 8259).

use crate::Json;

/// Error raised when parsing malformed JSON, with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Nesting limit: manifests are shallow; this guards against stack overflow
/// on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
        self.depth -= 1;
        Ok(Json::Obj(pairs))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
        self.depth -= 1;
        Ok(Json::Arr(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: must be followed by \uDC00..DFFF.
                            self.expect(b'\\', "expected low surrogate")?;
                            self.expect(b'u', "expected low surrogate")?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            s.push(char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?);
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            s.push(char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input &str is already valid UTF-8,
                    // so decode the remaining bytes of the scalar directly.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    // Safe: source was a &str.
                    let ch = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    s.push(ch);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn nested_structure() {
        let j = parse(r#"{"layers":[{"digest":"sha256:ab","size":12}],"tag":"latest"}"#).unwrap();
        let layers = j.get("layers").unwrap().as_arr().unwrap();
        assert_eq!(layers[0].get("size").unwrap().as_u64(), Some(12));
        assert_eq!(j.get("tag").unwrap().as_str(), Some("latest"));
    }

    #[test]
    fn whitespace_tolerated() {
        let j = parse(" {\n\t\"a\" : [ 1 , 2 ] \r}\n").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn escapes() {
        let j = parse(r#""a\nb\t\"\\Aé""#).unwrap();
        assert_eq!(j.as_str(), Some("a\nb\t\"\\Aé"));
    }

    #[test]
    fn surrogate_pair() {
        let j = parse(r#""😀""#).unwrap();
        assert_eq!(j.as_str(), Some("😀"));
    }

    #[test]
    fn unpaired_surrogate_rejected() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn raw_utf8_passthrough() {
        let j = parse("\"naïve — 日本語\"").unwrap();
        assert_eq!(j.as_str(), Some("naïve — 日本語"));
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("\"\x01\"").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("true false").is_err());
    }

    #[test]
    fn deep_nesting_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("{\"a\" 1}").unwrap_err();
        assert_eq!(e.at, 5);
        assert!(e.to_string().contains("byte 5"));
    }
}
