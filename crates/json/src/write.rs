//! Deterministic JSON serialization.

use crate::Json;
use std::fmt::Write as _;

/// Serializes a value to compact JSON (no extra whitespace).
///
/// Object keys are written in insertion order, which keeps manifest bytes —
/// and therefore their sha256 digests — reproducible across runs.
pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; manifests never produce them, emit null
        // rather than invalid output.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_output() {
        let mut m = Json::obj();
        m.set("a", 1u64).set("b", vec!["x", "y"]);
        assert_eq!(to_string(&m), r#"{"a":1,"b":["x","y"]}"#);
    }

    #[test]
    fn integers_without_fraction() {
        assert_eq!(to_string(&Json::Num(5.0)), "5");
        assert_eq!(to_string(&Json::Num(5.5)), "5.5");
        assert_eq!(to_string(&Json::Num(-0.0)), "0");
    }

    #[test]
    fn string_escaping() {
        let got = to_string(&Json::Str("a\"b\\c\nd\u{1}".into()));
        assert_eq!(got, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn unicode_passthrough() {
        let s = Json::Str("日本語 😀".into());
        let encoded = to_string(&s);
        assert_eq!(parse(&encoded).unwrap(), s);
    }

    #[test]
    fn roundtrip_fixpoint() {
        // parse(print(v)) == v and print is a fix-point after one iteration.
        let src = r#"{"schemaVersion":2,"layers":[{"digest":"sha256:e3b0","size":0},{"digest":"sha256:ffff","size":123456789}],"config":null,"ok":true}"#;
        let v = parse(src).unwrap();
        let printed = to_string(&v);
        assert_eq!(parse(&printed).unwrap(), v);
        assert_eq!(to_string(&parse(&printed).unwrap()), printed);
    }

    #[test]
    fn key_order_preserved() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(to_string(&v), r#"{"z":1,"a":2,"m":3}"#);
    }
}
