//! The Docker Hub crawler (§III-A of the paper).
//!
//! Docker Hub offers no list-all-repositories API. The paper's crawler
//! exploited the naming scheme instead: every non-official repository name
//! contains a `/`, so searching for `"/"` returns all of them; the crawler
//! then pages through the HTML results, parses out repository names, and
//! deduplicates (the real index returned 634,412 rows for 457,627 distinct
//! repositories). This crate does exactly that against the simulated
//! search front-end, plus the short known list of official repositories.

mod parse;

pub use parse::{parse_results_page, PageError, PageInfo, ParsedPage};

use dhub_faults::{fault_key, FaultInjector, FaultKind, FaultOp, RetryPolicy};
use dhub_model::RepoName;
use dhub_obs::{DeltaCounter, MetricsRegistry};
use dhub_registry::SearchIndex;
use std::collections::BTreeSet;
use std::time::Duration;

/// Crawl statistics, mirroring the paper's reported numbers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrawlReport {
    /// Rows seen across all result pages (duplicates included) — the
    /// paper's 634,412.
    pub raw_results: usize,
    /// Distinct repositories after dedup — the paper's 457,627.
    pub distinct_repos: usize,
    /// Pages fetched.
    pub pages_fetched: usize,
    /// Page fetches re-issued after a transient failure.
    pub page_retries: usize,
    /// Pages abandoned after the retry budget ran out (their rows are
    /// simply missing, as they would be from a real crawl).
    pub pages_gave_up: usize,
    /// Result rows that deduplicated onto an already-seen repository
    /// (`raw_results` minus first sightings).
    pub dedup_hits: usize,
    /// Time lost to retry backoff (deterministic scheduled delays).
    pub backoff_sleep: Duration,
}

/// Crawl outcome: the deduplicated repository list plus statistics.
#[derive(Clone, Debug)]
pub struct CrawlResult {
    pub repos: Vec<RepoName>,
    pub report: CrawlReport,
}

/// Crawls the search index: pages through the `"/"` query, parses each
/// HTML page, dedups, and appends `known_official` (the paper hardcodes
/// the <200 official repositories, which the slash trick cannot find).
pub fn crawl(search: &SearchIndex, known_official: &[RepoName]) -> CrawlResult {
    crawl_with(search, known_official, None, &RetryPolicy::default())
}

/// Fault kinds a search-page fetch can experience. Body damage is not
/// modeled here — the parser rejects malformed pages outright.
const SEARCH_FAULTS: [FaultKind; 4] =
    [FaultKind::Drop, FaultKind::RateLimit, FaultKind::ServerError, FaultKind::SlowLink];

/// What fetching one search page did: the parsed page (or `None` after
/// the retry budget ran out) plus the retry accounting the caller folds
/// into its counters.
pub struct PageFetch {
    pub parsed: Option<ParsedPage>,
    pub retries: u32,
    pub backoff: Duration,
}

/// Fetches and parses one search-results page under the crawl's fault
/// model: each attempt consults `faults` (op [`FaultOp::Search`], keyed
/// by the page number), slow links stall and proceed, and transient
/// failures back off under `policy`. This is the single per-page fetch
/// path — the sequential [`crawl_obs`] loop and the queue's distributed
/// page jobs both go through it, so their fault streams are identical.
pub fn fetch_search_page(
    search: &SearchIndex,
    page: usize,
    faults: Option<&FaultInjector>,
    policy: &RetryPolicy,
) -> PageFetch {
    let key = fault_key(format!("search:{page}").as_bytes());
    let mut retries = 0u32;
    let mut backoff = Duration::ZERO;
    let mut attempt = 0u32;
    let parsed = loop {
        let fault = faults.and_then(|inj| {
            match inj.decide(FaultOp::Search, key, &SEARCH_FAULTS) {
                Some(FaultKind::SlowLink) => {
                    // Stalled, not failed: wait it out and proceed.
                    std::thread::sleep(inj.slow_link());
                    None
                }
                f => f,
            }
        });
        match fault {
            None => {
                let result = search.search("/", page);
                break Some(
                    parse_results_page(&result.html).expect("hub returned malformed page"),
                );
            }
            Some(_) if attempt < policy.max_retries => {
                retries += 1;
                backoff += policy.sleep(key, attempt);
                attempt += 1;
            }
            Some(_) => break None,
        }
    };
    PageFetch { parsed, retries, backoff }
}

/// [`crawl`] against a faulty search front-end: each page fetch consults
/// `faults` first, and transient failures back off and retry under
/// `policy`. A page whose budget runs out is abandoned (its rows go
/// missing); if the *first* page never loads the crawl aborts, since
/// pagination depth is unknown without it.
pub fn crawl_with(
    search: &SearchIndex,
    known_official: &[RepoName],
    faults: Option<&FaultInjector>,
    policy: &RetryPolicy,
) -> CrawlResult {
    crawl_obs(search, known_official, faults, policy, &MetricsRegistry::new())
}

/// Per-run crawl counters, attached to `dhub_crawl_*` metrics. The final
/// [`CrawlReport`] is *derived from* these deltas, so a `/metrics` scrape
/// and the report reconcile exactly.
struct CrawlCounters {
    pages_fetched: DeltaCounter,
    page_retries: DeltaCounter,
    pages_gave_up: DeltaCounter,
    raw_results: DeltaCounter,
    dedup_hits: DeltaCounter,
    backoff_ns: DeltaCounter,
}

impl CrawlCounters {
    fn on(reg: &MetricsRegistry) -> Self {
        Self {
            pages_fetched: DeltaCounter::on(reg, "dhub_crawl_pages_fetched_total"),
            page_retries: DeltaCounter::on(reg, "dhub_crawl_page_retries_total"),
            pages_gave_up: DeltaCounter::on(reg, "dhub_crawl_pages_gave_up_total"),
            raw_results: DeltaCounter::on(reg, "dhub_crawl_raw_results_total"),
            dedup_hits: DeltaCounter::on(reg, "dhub_crawl_dedup_hits_total"),
            backoff_ns: DeltaCounter::on(reg, "dhub_crawl_backoff_ns_total"),
        }
    }

    fn report(&self, distinct_repos: usize) -> CrawlReport {
        CrawlReport {
            raw_results: self.raw_results.delta() as usize,
            distinct_repos,
            pages_fetched: self.pages_fetched.delta() as usize,
            page_retries: self.page_retries.delta() as usize,
            pages_gave_up: self.pages_gave_up.delta() as usize,
            dedup_hits: self.dedup_hits.delta() as usize,
            backoff_sleep: Duration::from_nanos(self.backoff_ns.delta()),
        }
    }
}

/// [`crawl_with`], recording live metrics into `obs` (`dhub_crawl_*`
/// counters plus a per-page `crawl_page` span). The returned report is
/// built from the counter deltas, never from side bookkeeping.
pub fn crawl_obs(
    search: &SearchIndex,
    known_official: &[RepoName],
    faults: Option<&FaultInjector>,
    policy: &RetryPolicy,
    obs: &MetricsRegistry,
) -> CrawlResult {
    let mut seen: BTreeSet<RepoName> = BTreeSet::new();
    let c = CrawlCounters::on(obs);

    let mut page = 0usize;
    let mut total_pages: Option<usize> = None;
    loop {
        let _page_span = dhub_obs::span!(obs, "crawl_page", page);
        let fetch = fetch_search_page(search, page, faults, policy);
        c.page_retries.add(fetch.retries as u64);
        c.backoff_ns.add(fetch.backoff.as_nanos() as u64);
        match fetch.parsed {
            Some(parsed) => {
                c.pages_fetched.inc();
                c.raw_results.add(parsed.repos.len() as u64);
                for name in parsed.repos {
                    if !seen.insert(name) {
                        c.dedup_hits.inc();
                    }
                }
                total_pages = Some(parsed.info.total_pages);
            }
            None => c.pages_gave_up.inc(),
        }
        page += 1;
        match total_pages {
            None => break, // first page unreachable — pagination unknown
            Some(tp) if page >= tp => break,
            Some(_) => {}
        }
    }

    for o in known_official {
        seen.insert(o.clone());
    }
    let report = c.report(seen.len());
    CrawlResult { repos: seen.into_iter().collect(), report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repos(n: usize) -> Vec<RepoName> {
        (0..n).map(|i| RepoName::user(&format!("u{}", i % 7), &format!("r{i}"))).collect()
    }

    #[test]
    fn crawl_recovers_all_repos_despite_duplicates() {
        let all = repos(500);
        let index = SearchIndex::build(all.clone(), 1.386, 25);
        let result = crawl(&index, &[]);
        assert_eq!(result.report.distinct_repos, 500);
        assert!(result.report.raw_results > 600, "raw {:?}", result.report);
        let mut expect = all;
        expect.sort();
        assert_eq!(result.repos, expect);
    }

    #[test]
    fn officials_come_from_the_known_list() {
        let mut all = repos(50);
        all.push(RepoName::official("nginx"));
        let index = SearchIndex::build(all, 1.0, 10);
        // Slash search can't see nginx...
        let without = crawl(&index, &[]);
        assert!(!without.repos.iter().any(|r| r.is_official()));
        // ...but the known-official list adds it.
        let with = crawl(&index, &[RepoName::official("nginx")]);
        assert_eq!(with.report.distinct_repos, 51);
        assert!(with.repos.iter().any(|r| r.full() == "nginx"));
    }

    #[test]
    fn single_page_index() {
        let index = SearchIndex::build(repos(5), 1.0, 100);
        let result = crawl(&index, &[]);
        assert_eq!(result.report.pages_fetched, 1);
        assert_eq!(result.report.distinct_repos, 5);
    }

    #[test]
    fn report_duplication_factor() {
        let index = SearchIndex::build(repos(1000), 1.386, 25);
        let r = crawl(&index, &[]).report;
        let factor = r.raw_results as f64 / r.distinct_repos as f64;
        assert!((1.3..1.5).contains(&factor), "factor {factor}");
    }

    use dhub_faults::FaultConfig;

    #[test]
    fn faulty_crawl_with_retries_matches_clean_crawl() {
        let all = repos(400);
        let index = SearchIndex::build(all, 1.386, 25);
        let clean = crawl(&index, &[]);
        let inj = FaultInjector::new(FaultConfig::uniform(77, 0.2));
        let faulty =
            crawl_with(&index, &[], Some(&inj), &RetryPolicy::fast(16).with_seed(77));
        assert_eq!(faulty.repos, clean.repos);
        assert_eq!(faulty.report.raw_results, clean.report.raw_results);
        assert_eq!(faulty.report.pages_fetched, clean.report.pages_fetched);
        assert!(faulty.report.page_retries > 0, "20 % faults must force retries");
        assert_eq!(faulty.report.pages_gave_up, 0);
    }

    #[test]
    fn obs_counters_reconcile_with_report() {
        let index = SearchIndex::build(repos(300), 1.386, 25);
        let obs = MetricsRegistry::new();
        let inj = FaultInjector::new(FaultConfig::uniform(9, 0.1));
        let r = crawl_obs(&index, &[], Some(&inj), &RetryPolicy::fast(16).with_seed(9), &obs)
            .report;
        let snap = obs.snapshot();
        assert_eq!(snap.counter("dhub_crawl_pages_fetched_total"), r.pages_fetched as u64);
        assert_eq!(snap.counter("dhub_crawl_page_retries_total"), r.page_retries as u64);
        assert_eq!(snap.counter("dhub_crawl_raw_results_total"), r.raw_results as u64);
        assert_eq!(snap.counter("dhub_crawl_dedup_hits_total"), r.dedup_hits as u64);
        assert_eq!(
            snap.counter("dhub_crawl_backoff_ns_total"),
            r.backoff_sleep.as_nanos() as u64
        );
        // Every raw row either first-sighted a repo or was a dedup hit.
        assert_eq!(r.raw_results - r.dedup_hits, r.distinct_repos);
        // One crawl_page span per page attempted.
        let (calls, _) = obs.span_totals("crawl_page");
        assert_eq!(calls, (r.pages_fetched + r.pages_gave_up) as u64);
    }

    #[test]
    fn crawl_without_retries_aborts_on_dead_front_end() {
        let index = SearchIndex::build(repos(100), 1.386, 25);
        // SlowLink merely delays, so zero it out to make every attempt fail.
        let inj = FaultInjector::new(
            FaultConfig::uniform(1, 1.0).with_weight(FaultKind::SlowLink, 0),
        );
        let official = RepoName::official("nginx");
        let result = crawl_with(&index, &[official], Some(&inj), &RetryPolicy::none());
        // Page 0 never loads; only the hardcoded official list survives.
        assert_eq!(result.report.pages_fetched, 0);
        assert_eq!(result.report.pages_gave_up, 1);
        assert_eq!(result.repos.len(), 1);
    }
}
