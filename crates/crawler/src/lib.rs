//! The Docker Hub crawler (§III-A of the paper).
//!
//! Docker Hub offers no list-all-repositories API. The paper's crawler
//! exploited the naming scheme instead: every non-official repository name
//! contains a `/`, so searching for `"/"` returns all of them; the crawler
//! then pages through the HTML results, parses out repository names, and
//! deduplicates (the real index returned 634,412 rows for 457,627 distinct
//! repositories). This crate does exactly that against the simulated
//! search front-end, plus the short known list of official repositories.

mod parse;

pub use parse::{parse_results_page, PageError, PageInfo, ParsedPage};

use dhub_faults::{fault_key, FaultInjector, FaultKind, FaultOp, RetryPolicy};
use dhub_model::RepoName;
use dhub_registry::SearchIndex;
use std::collections::BTreeSet;

/// Crawl statistics, mirroring the paper's reported numbers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrawlReport {
    /// Rows seen across all result pages (duplicates included) — the
    /// paper's 634,412.
    pub raw_results: usize,
    /// Distinct repositories after dedup — the paper's 457,627.
    pub distinct_repos: usize,
    /// Pages fetched.
    pub pages_fetched: usize,
    /// Page fetches re-issued after a transient failure.
    pub page_retries: usize,
    /// Pages abandoned after the retry budget ran out (their rows are
    /// simply missing, as they would be from a real crawl).
    pub pages_gave_up: usize,
}

/// Crawl outcome: the deduplicated repository list plus statistics.
#[derive(Clone, Debug)]
pub struct CrawlResult {
    pub repos: Vec<RepoName>,
    pub report: CrawlReport,
}

/// Crawls the search index: pages through the `"/"` query, parses each
/// HTML page, dedups, and appends `known_official` (the paper hardcodes
/// the <200 official repositories, which the slash trick cannot find).
pub fn crawl(search: &SearchIndex, known_official: &[RepoName]) -> CrawlResult {
    crawl_with(search, known_official, None, &RetryPolicy::default())
}

/// Fault kinds a search-page fetch can experience. Body damage is not
/// modeled here — the parser rejects malformed pages outright.
const SEARCH_FAULTS: [FaultKind; 4] =
    [FaultKind::Drop, FaultKind::RateLimit, FaultKind::ServerError, FaultKind::SlowLink];

/// [`crawl`] against a faulty search front-end: each page fetch consults
/// `faults` first, and transient failures back off and retry under
/// `policy`. A page whose budget runs out is abandoned (its rows go
/// missing); if the *first* page never loads the crawl aborts, since
/// pagination depth is unknown without it.
pub fn crawl_with(
    search: &SearchIndex,
    known_official: &[RepoName],
    faults: Option<&FaultInjector>,
    policy: &RetryPolicy,
) -> CrawlResult {
    let mut seen: BTreeSet<RepoName> = BTreeSet::new();
    let mut report = CrawlReport::default();

    let mut page = 0usize;
    let mut total_pages: Option<usize> = None;
    loop {
        let key = fault_key(format!("search:{page}").as_bytes());
        let mut attempt = 0u32;
        let result = loop {
            let fault = faults.and_then(|inj| {
                match inj.decide(FaultOp::Search, key, &SEARCH_FAULTS) {
                    Some(FaultKind::SlowLink) => {
                        // Stalled, not failed: wait it out and proceed.
                        std::thread::sleep(inj.slow_link());
                        None
                    }
                    f => f,
                }
            });
            match fault {
                None => break Some(search.search("/", page)),
                Some(_) if attempt < policy.max_retries => {
                    report.page_retries += 1;
                    policy.sleep(key, attempt);
                    attempt += 1;
                }
                Some(_) => {
                    report.pages_gave_up += 1;
                    break None;
                }
            }
        };
        if let Some(result) = result {
            report.pages_fetched += 1;
            let parsed = parse_results_page(&result.html).expect("hub returned malformed page");
            report.raw_results += parsed.repos.len();
            for name in parsed.repos {
                seen.insert(name);
            }
            total_pages = Some(parsed.info.total_pages);
        }
        page += 1;
        match total_pages {
            None => break, // first page unreachable — pagination unknown
            Some(tp) if page >= tp => break,
            Some(_) => {}
        }
    }

    for o in known_official {
        seen.insert(o.clone());
    }
    report.distinct_repos = seen.len();
    CrawlResult { repos: seen.into_iter().collect(), report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repos(n: usize) -> Vec<RepoName> {
        (0..n).map(|i| RepoName::user(&format!("u{}", i % 7), &format!("r{i}"))).collect()
    }

    #[test]
    fn crawl_recovers_all_repos_despite_duplicates() {
        let all = repos(500);
        let index = SearchIndex::build(all.clone(), 1.386, 25);
        let result = crawl(&index, &[]);
        assert_eq!(result.report.distinct_repos, 500);
        assert!(result.report.raw_results > 600, "raw {:?}", result.report);
        let mut expect = all;
        expect.sort();
        assert_eq!(result.repos, expect);
    }

    #[test]
    fn officials_come_from_the_known_list() {
        let mut all = repos(50);
        all.push(RepoName::official("nginx"));
        let index = SearchIndex::build(all, 1.0, 10);
        // Slash search can't see nginx...
        let without = crawl(&index, &[]);
        assert!(!without.repos.iter().any(|r| r.is_official()));
        // ...but the known-official list adds it.
        let with = crawl(&index, &[RepoName::official("nginx")]);
        assert_eq!(with.report.distinct_repos, 51);
        assert!(with.repos.iter().any(|r| r.full() == "nginx"));
    }

    #[test]
    fn single_page_index() {
        let index = SearchIndex::build(repos(5), 1.0, 100);
        let result = crawl(&index, &[]);
        assert_eq!(result.report.pages_fetched, 1);
        assert_eq!(result.report.distinct_repos, 5);
    }

    #[test]
    fn report_duplication_factor() {
        let index = SearchIndex::build(repos(1000), 1.386, 25);
        let r = crawl(&index, &[]).report;
        let factor = r.raw_results as f64 / r.distinct_repos as f64;
        assert!((1.3..1.5).contains(&factor), "factor {factor}");
    }

    use dhub_faults::FaultConfig;

    #[test]
    fn faulty_crawl_with_retries_matches_clean_crawl() {
        let all = repos(400);
        let index = SearchIndex::build(all, 1.386, 25);
        let clean = crawl(&index, &[]);
        let inj = FaultInjector::new(FaultConfig::uniform(77, 0.2));
        let faulty =
            crawl_with(&index, &[], Some(&inj), &RetryPolicy::fast(16).with_seed(77));
        assert_eq!(faulty.repos, clean.repos);
        assert_eq!(faulty.report.raw_results, clean.report.raw_results);
        assert_eq!(faulty.report.pages_fetched, clean.report.pages_fetched);
        assert!(faulty.report.page_retries > 0, "20 % faults must force retries");
        assert_eq!(faulty.report.pages_gave_up, 0);
    }

    #[test]
    fn crawl_without_retries_aborts_on_dead_front_end() {
        let index = SearchIndex::build(repos(100), 1.386, 25);
        // SlowLink merely delays, so zero it out to make every attempt fail.
        let inj = FaultInjector::new(
            FaultConfig::uniform(1, 1.0).with_weight(FaultKind::SlowLink, 0),
        );
        let official = RepoName::official("nginx");
        let result = crawl_with(&index, &[official], Some(&inj), &RetryPolicy::none());
        // Page 0 never loads; only the hardcoded official list survives.
        assert_eq!(result.report.pages_fetched, 0);
        assert_eq!(result.report.pages_gave_up, 1);
        assert_eq!(result.repos.len(), 1);
    }
}
