//! The Docker Hub crawler (§III-A of the paper).
//!
//! Docker Hub offers no list-all-repositories API. The paper's crawler
//! exploited the naming scheme instead: every non-official repository name
//! contains a `/`, so searching for `"/"` returns all of them; the crawler
//! then pages through the HTML results, parses out repository names, and
//! deduplicates (the real index returned 634,412 rows for 457,627 distinct
//! repositories). This crate does exactly that against the simulated
//! search front-end, plus the short known list of official repositories.

mod parse;

pub use parse::{parse_results_page, PageError, PageInfo, ParsedPage};

use dhub_model::RepoName;
use dhub_registry::SearchIndex;
use std::collections::BTreeSet;

/// Crawl statistics, mirroring the paper's reported numbers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrawlReport {
    /// Rows seen across all result pages (duplicates included) — the
    /// paper's 634,412.
    pub raw_results: usize,
    /// Distinct repositories after dedup — the paper's 457,627.
    pub distinct_repos: usize,
    /// Pages fetched.
    pub pages_fetched: usize,
}

/// Crawl outcome: the deduplicated repository list plus statistics.
#[derive(Clone, Debug)]
pub struct CrawlResult {
    pub repos: Vec<RepoName>,
    pub report: CrawlReport,
}

/// Crawls the search index: pages through the `"/"` query, parses each
/// HTML page, dedups, and appends `known_official` (the paper hardcodes
/// the <200 official repositories, which the slash trick cannot find).
pub fn crawl(search: &SearchIndex, known_official: &[RepoName]) -> CrawlResult {
    let mut seen: BTreeSet<RepoName> = BTreeSet::new();
    let mut report = CrawlReport::default();

    let mut page = 0usize;
    loop {
        let result = search.search("/", page);
        report.pages_fetched += 1;
        let parsed = parse_results_page(&result.html).expect("hub returned malformed page");
        report.raw_results += parsed.repos.len();
        for name in parsed.repos {
            seen.insert(name);
        }
        page += 1;
        if page >= parsed.info.total_pages {
            break;
        }
    }

    for o in known_official {
        seen.insert(o.clone());
    }
    report.distinct_repos = seen.len();
    CrawlResult { repos: seen.into_iter().collect(), report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repos(n: usize) -> Vec<RepoName> {
        (0..n).map(|i| RepoName::user(&format!("u{}", i % 7), &format!("r{i}"))).collect()
    }

    #[test]
    fn crawl_recovers_all_repos_despite_duplicates() {
        let all = repos(500);
        let index = SearchIndex::build(all.clone(), 1.386, 25);
        let result = crawl(&index, &[]);
        assert_eq!(result.report.distinct_repos, 500);
        assert!(result.report.raw_results > 600, "raw {:?}", result.report);
        let mut expect = all;
        expect.sort();
        assert_eq!(result.repos, expect);
    }

    #[test]
    fn officials_come_from_the_known_list() {
        let mut all = repos(50);
        all.push(RepoName::official("nginx"));
        let index = SearchIndex::build(all, 1.0, 10);
        // Slash search can't see nginx...
        let without = crawl(&index, &[]);
        assert!(!without.repos.iter().any(|r| r.is_official()));
        // ...but the known-official list adds it.
        let with = crawl(&index, &[RepoName::official("nginx")]);
        assert_eq!(with.report.distinct_repos, 51);
        assert!(with.repos.iter().any(|r| r.full() == "nginx"));
    }

    #[test]
    fn single_page_index() {
        let index = SearchIndex::build(repos(5), 1.0, 100);
        let result = crawl(&index, &[]);
        assert_eq!(result.report.pages_fetched, 1);
        assert_eq!(result.report.distinct_repos, 5);
    }

    #[test]
    fn report_duplication_factor() {
        let index = SearchIndex::build(repos(1000), 1.386, 25);
        let r = crawl(&index, &[]).report;
        let factor = r.raw_results as f64 / r.distinct_repos as f64;
        assert!((1.3..1.5).contains(&factor), "factor {factor}");
    }
}
