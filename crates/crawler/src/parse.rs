//! HTML result-page parsing.
//!
//! A small, forgiving scanner (not a full HTML parser): it extracts
//! `class="repo-link"` anchors and the paginator's `data-page`/`data-total`
//! attributes, tolerating attribute reordering and extra markup — the same
//! level of robustness a real scraper needs against the Hub's markup.

use dhub_model::RepoName;

/// Paginator metadata found on a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageInfo {
    pub page: usize,
    pub total_pages: usize,
}

/// Everything extracted from one result page.
#[derive(Clone, Debug)]
pub struct ParsedPage {
    pub repos: Vec<RepoName>,
    pub info: PageInfo,
}

/// Parse errors (malformed or unexpected markup).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageError {
    /// No paginator found.
    MissingPaginator,
    /// Paginator attributes not numeric.
    BadPaginator,
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::MissingPaginator => f.write_str("missing paginator element"),
            PageError::BadPaginator => f.write_str("malformed paginator attributes"),
        }
    }
}

impl std::error::Error for PageError {}

/// Extracts repo links and pagination from a results page.
pub fn parse_results_page(html: &str) -> Result<ParsedPage, PageError> {
    let mut repos = Vec::new();
    for anchor in html.split("<a ").skip(1) {
        let tag_end = anchor.find('>').unwrap_or(anchor.len());
        let attrs = &anchor[..tag_end];
        if !attrs.contains("repo-link") {
            continue;
        }
        // Anchor text up to the closing tag is the repository name.
        let rest = &anchor[tag_end + 1..];
        let text_end = rest.find("</a>").unwrap_or(rest.len());
        let name = rest[..text_end].trim();
        if let Some(repo) = RepoName::parse(name) {
            repos.push(repo);
        }
    }

    let info = parse_paginator(html)?;
    Ok(ParsedPage { repos, info })
}

fn parse_paginator(html: &str) -> Result<PageInfo, PageError> {
    let pag = html.find("class=\"paginator\"").ok_or(PageError::MissingPaginator)?;
    let tail = &html[pag..html.len().min(pag + 256)];
    let page = attr_value(tail, "data-page").ok_or(PageError::BadPaginator)?;
    let total = attr_value(tail, "data-total").ok_or(PageError::BadPaginator)?;
    Ok(PageInfo { page, total_pages: total })
}

fn attr_value(s: &str, attr: &str) -> Option<usize> {
    let key = format!("{attr}=\"");
    let start = s.find(&key)? + key.len();
    let end = s[start..].find('"')? + start;
    s[start..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_generated_page() {
        let html = "<!DOCTYPE html><html><body><ul class=\"search-results\">\n  \
            <li class=\"repo-row\"><a class=\"repo-link\" href=\"/r/alice/web\">alice/web</a></li>\n  \
            <li class=\"repo-row\"><a class=\"repo-link\" href=\"/r/bob/db\">bob/db</a></li>\n\
            </ul><div class=\"paginator\" data-page=\"2\" data-total=\"9\"></div></body></html>";
        let p = parse_results_page(html).unwrap();
        assert_eq!(p.repos.len(), 2);
        assert_eq!(p.repos[0].full(), "alice/web");
        assert_eq!(p.info, PageInfo { page: 2, total_pages: 9 });
    }

    #[test]
    fn ignores_unrelated_anchors() {
        let html = "<a href=\"/login\">login</a><a class=\"nav\">x</a>\
            <div class=\"paginator\" data-page=\"0\" data-total=\"1\"></div>";
        let p = parse_results_page(html).unwrap();
        assert!(p.repos.is_empty());
    }

    #[test]
    fn tolerates_attribute_reordering() {
        let html = "<a href=\"/r/x/y\" class=\"repo-link shiny\">x/y</a>\
            <div id=\"p\" class=\"paginator\" data-total=\"3\" data-page=\"1\"></div>";
        let p = parse_results_page(html).unwrap();
        assert_eq!(p.repos[0].full(), "x/y");
        assert_eq!(p.info.total_pages, 3);
    }

    #[test]
    fn missing_paginator_is_error() {
        assert_eq!(parse_results_page("<p>empty</p>").unwrap_err(), PageError::MissingPaginator);
    }

    #[test]
    fn malformed_paginator_is_error() {
        let html = "<div class=\"paginator\" data-page=\"x\" data-total=\"3\"></div>";
        assert_eq!(parse_results_page(html).unwrap_err(), PageError::BadPaginator);
    }

    #[test]
    fn skips_unparseable_names() {
        let html = "<a class=\"repo-link\">a/b/c</a><a class=\"repo-link\">ok/name</a>\
            <div class=\"paginator\" data-page=\"0\" data-total=\"1\"></div>";
        let p = parse_results_page(html).unwrap();
        assert_eq!(p.repos.len(), 1);
    }
}
