//! Deterministic fault injection and retry policy (`dhub-faults`).
//!
//! The paper's 30-day crawl of Docker Hub survived a flaky public
//! registry: 111,384 download failures had to be *classified* (13 % auth,
//! 87 % no `latest`) rather than crash the run, and every transient error
//! in between was retried away. This crate makes that failure surface a
//! first-class, seeded, replayable input to the reproduction:
//!
//! * [`FaultPlan`] decides, as a pure function of `(seed, op, key,
//!   attempt)`, whether a given operation attempt faults and how —
//!   connection drops, HTTP 429/5xx, token-auth flaps, slow links,
//!   truncated bodies, bit-flipped blob contents. Because the decision
//!   depends only on those four values, a pinned seed reproduces the exact
//!   same fault sequence regardless of thread count or interleaving.
//! * [`FaultInjector`] wraps a plan with per-`(op, key)` attempt counters
//!   and fired-fault statistics, and is what the registry server, the
//!   in-process [`Registry`] API, and the crawler consult at each
//!   injection point.
//! * [`RetryPolicy`] is the consuming side: capped exponential backoff
//!   (built on [`dhub_sync::DelayBackoff`]) with *deterministic* jitter
//!   derived from the policy seed, so a retry schedule is replayable too.
//!
//! [`Registry`]: ../dhub_registry/struct.Registry.html

mod plan;
mod retry;

pub use plan::{
    fault_key, FaultConfig, FaultInjector, FaultKind, FaultOp, FaultPlan, FaultStats,
    ALL_FAULT_KINDS, ALL_FAULT_OPS,
};
pub use retry::{RetryClass, RetryPolicy};
