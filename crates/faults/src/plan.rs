//! The seeded fault plan and its stateful injector.

use dhub_sync::Mutex;
use proptest::TestRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What kind of fault fires on one operation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Connection dies before any response arrives (TCP RST / mid-read
    /// close). Clients see an I/O or unexpected-EOF error.
    Drop,
    /// HTTP 429 Too Many Requests — the Hub's rate limiter.
    RateLimit,
    /// HTTP 5xx — transient backend failure.
    ServerError,
    /// A presented, previously valid bearer token is transiently rejected
    /// (token expiry mid-crawl). Only meaningful on authenticated requests.
    AuthFlap,
    /// The link stalls: response is delayed but otherwise correct.
    SlowLink,
    /// The response body is cut short (content-length promises more bytes
    /// than arrive).
    Truncate,
    /// One bit of the response body is flipped — caught only by digest
    /// verification.
    Corrupt,
}

/// All fault kinds, in a fixed order used for stats indexing.
pub const ALL_FAULT_KINDS: [FaultKind; 7] = [
    FaultKind::Drop,
    FaultKind::RateLimit,
    FaultKind::ServerError,
    FaultKind::AuthFlap,
    FaultKind::SlowLink,
    FaultKind::Truncate,
    FaultKind::Corrupt,
];

impl FaultKind {
    fn index(self) -> usize {
        match self {
            FaultKind::Drop => 0,
            FaultKind::RateLimit => 1,
            FaultKind::ServerError => 2,
            FaultKind::AuthFlap => 3,
            FaultKind::SlowLink => 4,
            FaultKind::Truncate => 5,
            FaultKind::Corrupt => 6,
        }
    }

    /// Short human-readable name (stats rendering).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::RateLimit => "rate-limit",
            FaultKind::ServerError => "server-error",
            FaultKind::AuthFlap => "auth-flap",
            FaultKind::SlowLink => "slow-link",
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// Which pipeline operation is being attempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Manifest resolution (`GET /v2/<name>/manifests/<ref>`).
    Manifest,
    /// Layer blob fetch (`GET /v2/<name>/blobs/<digest>`).
    Blob,
    /// Token issuance / validation (the Bearer dance).
    Token,
    /// A crawl search-results page fetch.
    Search,
    /// A durable write in the persist tier (object, recipe, or table
    /// publish). Faults here model crashes mid-write: torn or bit-flipped
    /// in-flight temp files that never reach their final name.
    Persist,
    /// A queue worker holding a job lease. Faults here model the worker
    /// dying mid-job ([`FaultKind::Drop`]: the lease expires, the job is
    /// requeued and retried by someone else).
    Lease,
}

/// All ops, in a fixed order used for stats indexing and rate config.
pub const ALL_FAULT_OPS: [FaultOp; 6] = [
    FaultOp::Manifest,
    FaultOp::Blob,
    FaultOp::Token,
    FaultOp::Search,
    FaultOp::Persist,
    FaultOp::Lease,
];

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::Manifest => 0,
            FaultOp::Blob => 1,
            FaultOp::Token => 2,
            FaultOp::Search => 3,
            FaultOp::Persist => 4,
            FaultOp::Lease => 5,
        }
    }

    /// Short human-readable name (stats rendering).
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Manifest => "manifest",
            FaultOp::Blob => "blob",
            FaultOp::Token => "token",
            FaultOp::Search => "search",
            FaultOp::Persist => "persist",
            FaultOp::Lease => "lease",
        }
    }
}

/// Configuration for a fault plan: seed, per-operation fault rates, and
/// relative weights of the fault kinds.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed the entire fault stream derives from.
    pub seed: u64,
    /// Per-op probability (0..=1) that one attempt faults, indexed like
    /// [`ALL_FAULT_OPS`].
    pub rates: [f64; 6],
    /// Relative weight of each kind when a fault fires, indexed like
    /// [`ALL_FAULT_KINDS`]. A zero weight disables the kind.
    pub weights: [u32; 7],
    /// How long a [`FaultKind::SlowLink`] stall lasts.
    pub slow_link: Duration,
}

impl FaultConfig {
    /// The same fault rate on every operation, default kind mix.
    pub fn uniform(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            rates: [rate; 6],
            // Transport errors dominate real crawls; corruption is rarer.
            weights: [3, 3, 3, 1, 1, 2, 2],
            slow_link: Duration::from_millis(1),
        }
    }

    /// No faults at all (rate 0 everywhere).
    pub fn off() -> FaultConfig {
        FaultConfig::uniform(0, 0.0)
    }

    /// A plan that fires exactly one fault kind at the given rate on every
    /// operation — the shape every targeted fault test wants (previously
    /// hand-rolled in each test module as an `only(kind)` helper).
    pub fn only(seed: u64, rate: f64, kind: FaultKind) -> FaultConfig {
        let mut cfg = FaultConfig::uniform(seed, rate);
        cfg.weights = [0; 7];
        cfg.weights[kind.index()] = 1;
        cfg
    }

    /// Sets the rate for one operation (builder-style).
    pub fn with_rate(mut self, op: FaultOp, rate: f64) -> FaultConfig {
        self.rates[op.index()] = rate;
        self
    }

    /// Sets one kind's relative weight (builder-style); 0 disables it.
    pub fn with_weight(mut self, kind: FaultKind, weight: u32) -> FaultConfig {
        self.weights[kind.index()] = weight;
        self
    }

    /// Sets the slow-link stall duration (builder-style).
    pub fn with_slow_link(mut self, d: Duration) -> FaultConfig {
        self.slow_link = d;
        self
    }

    /// The fault rate of one operation.
    pub fn rate(&self, op: FaultOp) -> f64 {
        self.rates[op.index()]
    }
}

/// FxHash-style mixer turning an identity (repo name, digest hex, page
/// number bytes) into a stable fault key.
pub fn fault_key(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn mix4(seed: u64, op: FaultOp, key: u64, attempt: u32) -> u64 {
    // One splitmix step per component keeps the four inputs independent.
    let mut rng = TestRng::new(
        seed ^ key.rotate_left(17) ^ ((op.index() as u64) << 56) ^ ((attempt as u64) << 32),
    );
    rng.next_u64()
}

/// The pure decision function: a seeded plan with no mutable state.
///
/// `decide(op, key, attempt, allowed)` answers identically for identical
/// inputs — the whole point. The `allowed` slice is the set of kinds the
/// *injection site* can physically express (a zero-length blob cannot be
/// truncated; an anonymous request has no token to flap), so stats only
/// ever count faults that actually happened.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// A plan over `config`.
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan { config }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether attempt `attempt` of operation `(op, key)` faults, and how.
    pub fn decide(
        &self,
        op: FaultOp,
        key: u64,
        attempt: u32,
        allowed: &[FaultKind],
    ) -> Option<FaultKind> {
        let rate = self.config.rate(op);
        if rate <= 0.0 || allowed.is_empty() {
            return None;
        }
        let mut rng = TestRng::new(mix4(self.config.seed, op, key, attempt));
        if rng.unit_f64() >= rate {
            return None;
        }
        let total: u64 = allowed.iter().map(|k| self.config.weights[k.index()] as u64).sum();
        if total == 0 {
            return None;
        }
        let mut pick = rng.below(total);
        for &k in allowed {
            let w = self.config.weights[k.index()] as u64;
            if pick < w {
                return Some(k);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}

/// Counters of faults actually fired, by kind and by operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fired faults per kind, indexed like [`ALL_FAULT_KINDS`].
    pub by_kind: [u64; 7],
    /// Fired faults per op, indexed like [`ALL_FAULT_OPS`].
    pub by_op: [u64; 6],
}

impl FaultStats {
    /// Total faults fired.
    pub fn total(&self) -> u64 {
        self.by_kind.iter().sum()
    }

    /// Faults of one kind.
    pub fn kind(&self, k: FaultKind) -> u64 {
        self.by_kind[k.index()]
    }

    /// Faults on one operation.
    pub fn op(&self, o: FaultOp) -> u64 {
        self.by_op[o.index()]
    }
}

/// A [`FaultPlan`] plus the per-`(op, key)` attempt counters and fired
/// statistics: the object injection sites consult.
///
/// Determinism note: each `(op, key)` identifies one logical resource
/// (one repo's manifest, one blob digest, one search page) whose attempts
/// are sequenced by a single worker in every pipeline here, so the attempt
/// counter — and therefore the full fault stream — does not depend on
/// thread interleaving.
pub struct FaultInjector {
    plan: FaultPlan,
    attempts: Mutex<HashMap<(u8, u64), u32>>,
    by_kind: [AtomicU64; 7],
    by_op: [AtomicU64; 6],
}

impl FaultInjector {
    /// An injector over `config` with zeroed counters.
    pub fn new(config: FaultConfig) -> FaultInjector {
        FaultInjector {
            plan: FaultPlan::new(config),
            attempts: Mutex::new(HashMap::new()),
            by_kind: Default::default(),
            by_op: Default::default(),
        }
    }

    /// The underlying pure plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The configured slow-link stall.
    pub fn slow_link(&self) -> Duration {
        self.plan.config().slow_link
    }

    /// Decides the fate of the next attempt at `(op, key)`, restricted to
    /// the `allowed` kinds, bumping the attempt counter and recording any
    /// fired fault in the statistics.
    pub fn decide(&self, op: FaultOp, key: u64, allowed: &[FaultKind]) -> Option<FaultKind> {
        let attempt = {
            let mut attempts = self.attempts.lock();
            let slot = attempts.entry((op.index() as u8, key)).or_insert(0);
            let a = *slot;
            *slot += 1;
            a
        };
        let fired = self.plan.decide(op, key, attempt, allowed);
        if let Some(kind) = fired {
            self.by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
            self.by_op[op.index()].fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Snapshot of the fired-fault counters.
    pub fn stats(&self) -> FaultStats {
        let mut s = FaultStats::default();
        for (i, c) in self.by_kind.iter().enumerate() {
            s.by_kind[i] = c.load(Ordering::Relaxed);
        }
        for (i, c) in self.by_op.iter().enumerate() {
            s.by_op[i] = c.load(Ordering::Relaxed);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_pure_function_of_inputs() {
        let plan = FaultPlan::new(FaultConfig::uniform(42, 0.5));
        for key in 0..200u64 {
            for attempt in 0..4 {
                let a = plan.decide(FaultOp::Blob, key, attempt, &ALL_FAULT_KINDS);
                let b = plan.decide(FaultOp::Blob, key, attempt, &ALL_FAULT_KINDS);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn rate_zero_never_faults() {
        let plan = FaultPlan::new(FaultConfig::uniform(1, 0.0));
        for key in 0..500u64 {
            assert_eq!(plan.decide(FaultOp::Manifest, key, 0, &ALL_FAULT_KINDS), None);
        }
    }

    #[test]
    fn rate_one_always_faults() {
        let plan = FaultPlan::new(FaultConfig::uniform(1, 1.0));
        for key in 0..100u64 {
            assert!(plan.decide(FaultOp::Manifest, key, 0, &ALL_FAULT_KINDS).is_some());
        }
    }

    #[test]
    fn allowed_set_is_respected() {
        let plan = FaultPlan::new(FaultConfig::uniform(7, 1.0));
        for key in 0..200u64 {
            let k = plan.decide(FaultOp::Blob, key, 0, &[FaultKind::Corrupt]).unwrap();
            assert_eq!(k, FaultKind::Corrupt);
        }
        assert_eq!(plan.decide(FaultOp::Blob, 1, 0, &[]), None);
    }

    #[test]
    fn zero_weight_disables_kind() {
        let cfg = FaultConfig::uniform(9, 1.0).with_weight(FaultKind::Drop, 0);
        let plan = FaultPlan::new(cfg);
        for key in 0..300u64 {
            assert_ne!(
                plan.decide(FaultOp::Blob, key, 0, &ALL_FAULT_KINDS),
                Some(FaultKind::Drop)
            );
        }
    }

    #[test]
    fn injector_counts_attempts_per_key() {
        let inj = FaultInjector::new(FaultConfig::uniform(11, 1.0));
        // Two injectors with the same config replay the same stream.
        let inj2 = FaultInjector::new(FaultConfig::uniform(11, 1.0));
        let mine: Vec<_> =
            (0..50).map(|i| inj.decide(FaultOp::Blob, i % 10, &ALL_FAULT_KINDS)).collect();
        let theirs: Vec<_> =
            (0..50).map(|i| inj2.decide(FaultOp::Blob, i % 10, &ALL_FAULT_KINDS)).collect();
        assert_eq!(mine, theirs);
        assert_eq!(inj.stats(), inj2.stats());
        assert_eq!(inj.stats().total(), 50, "rate 1.0 fires every attempt");
        assert_eq!(inj.stats().op(FaultOp::Blob), 50);
        assert_eq!(inj.stats().op(FaultOp::Manifest), 0);
    }

    #[test]
    fn different_attempts_differ_eventually() {
        // With rate 0.5 the same key must not fault forever: some attempt
        // in the first dozen succeeds for every key we try.
        let plan = FaultPlan::new(FaultConfig::uniform(3, 0.5));
        for key in 0..100u64 {
            let ok = (0..12).any(|a| plan.decide(FaultOp::Blob, key, a, &ALL_FAULT_KINDS).is_none());
            assert!(ok, "key {key} faulted 12 times in a row at rate 0.5");
        }
    }

    #[test]
    fn fault_key_is_stable_and_spread() {
        assert_eq!(fault_key(b"nginx:latest"), fault_key(b"nginx:latest"));
        assert_ne!(fault_key(b"nginx:latest"), fault_key(b"nginx:1.9"));
    }
}
