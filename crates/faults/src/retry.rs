//! Retry policy: capped exponential backoff with deterministic jitter.

use dhub_sync::DelayBackoff;
use proptest::TestRng;
use std::time::Duration;

/// How a failed operation should be treated by the retry loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryClass {
    /// Transient — worth another attempt (429, 5xx, dropped connection,
    /// truncated body, digest mismatch).
    Retryable,
    /// Permanent — retrying cannot help (401 auth wall, no `latest` tag,
    /// repo not found). The paper *classified* these rather than retrying.
    Terminal,
}

/// A replayable retry schedule: up to `max_retries` extra attempts, delays
/// doubling from `base` to `cap` ([`dhub_sync::DelayBackoff`]), each shrunk
/// by a deterministic jitter derived from `(seed, key, attempt)`.
///
/// Jitter is subtractive and bounded: the delay before attempt `n` lies in
/// `[raw_n * (1 - jitter), raw_n]` where `raw_n = min(cap, base * 2^n)`,
/// and the realized schedule is monotone non-decreasing (a jittered step
/// never undercuts its predecessor). `jitter` is clamped to `0..=0.5` —
/// above one half, doubling could no longer guarantee monotonicity.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// First retry delay.
    pub base: Duration,
    /// Delay ceiling.
    pub cap: Duration,
    /// Jitter fraction in `0..=0.5`.
    pub jitter: f64,
    /// Seed the jitter stream derives from.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// The downloader's default stance: 4 retries, 5 ms → 200 ms.
    fn default() -> Self {
        RetryPolicy::new(4)
    }
}

impl RetryPolicy {
    /// `max_retries` retries at the default 5 ms → 200 ms, 25 % jitter.
    pub fn new(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            jitter: 0.25,
            seed: 0,
        }
    }

    /// No retries: every error is final on first sight.
    pub fn none() -> RetryPolicy {
        RetryPolicy::new(0)
    }

    /// A microsecond-scale schedule for tests and benches (retries cost
    /// wall-clock sleep; chaos suites want hundreds of them per second).
    pub fn fast(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base: Duration::from_micros(20),
            cap: Duration::from_micros(320),
            jitter: 0.25,
            seed: 0,
        }
    }

    /// Builder: sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Builder: sets base and cap delays.
    pub fn with_delays(mut self, base: Duration, cap: Duration) -> RetryPolicy {
        self.base = base;
        self.cap = cap.max(base);
        self
    }

    /// Builder: sets the jitter fraction (clamped to `0..=0.5`).
    pub fn with_jitter(mut self, jitter: f64) -> RetryPolicy {
        self.jitter = jitter.clamp(0.0, 0.5);
        self
    }

    fn backoff(&self) -> DelayBackoff {
        DelayBackoff::new(self.base, self.cap)
    }

    /// The delay before retry `attempt` (0-based) of operation `key`,
    /// jittered deterministically. Not monotonicity-clamped on its own —
    /// use [`RetryPolicy::schedule`] for the realized monotone schedule.
    pub fn delay(&self, key: u64, attempt: u32) -> Duration {
        let raw = self.backoff().delay(attempt);
        let jitter = self.jitter.clamp(0.0, 0.5);
        if jitter == 0.0 {
            return raw;
        }
        let mut rng =
            TestRng::new(self.seed ^ key.rotate_left(23) ^ ((attempt as u64) << 40) ^ 0xA5A5);
        let shrink = 1.0 - jitter * rng.unit_f64();
        Duration::from_nanos((raw.as_nanos() as f64 * shrink) as u64)
    }

    /// The full monotone non-decreasing schedule for operation `key`:
    /// `max_retries` delays, each within its jitter bounds and never below
    /// its predecessor.
    pub fn schedule(&self, key: u64) -> Vec<Duration> {
        let mut prev = Duration::ZERO;
        (0..self.max_retries)
            .map(|a| {
                let d = self.delay(key, a).max(prev);
                prev = d;
                d
            })
            .collect()
    }

    /// The realized delay before retry `attempt` of `key` — the raw
    /// jittered [`RetryPolicy::delay`] clamped so it never undercuts an
    /// earlier step, i.e. `schedule(key)[attempt]` without allocating.
    pub fn scheduled_delay(&self, key: u64, attempt: u32) -> Duration {
        (0..=attempt).map(|a| self.delay(key, a)).max().unwrap_or(Duration::ZERO)
    }

    /// Sleeps the monotone schedule's delay before retry `attempt` of
    /// `key` (the struct-level monotonicity guarantee holds for the delays
    /// actually slept, not just for [`RetryPolicy::schedule`]). Returns the
    /// duration slept so callers can account time lost to backoff.
    pub fn sleep(&self, key: u64, attempt: u32) -> Duration {
        let d = self.scheduled_delay(key, attempt);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }

    /// Total backoff an operation on `key` accrues over its first
    /// `attempts` retries — the sum of the realized (monotone) schedule,
    /// i.e. exactly what a retry loop calling [`RetryPolicy::sleep`] for
    /// attempts `0..attempts` sleeps in aggregate. Deterministic, so "time
    /// lost to backoff" is reportable without measuring wall clock.
    pub fn cumulative_delay(&self, key: u64, attempts: u32) -> Duration {
        (0..attempts).map(|a| self.scheduled_delay(key, a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_replayable() {
        let p = RetryPolicy::new(8).with_seed(1234);
        assert_eq!(p.schedule(7), p.schedule(7));
        let q = RetryPolicy::new(8).with_seed(1234);
        assert_eq!(p.schedule(7), q.schedule(7));
    }

    #[test]
    fn schedule_monotone_and_capped() {
        let p = RetryPolicy::new(10).with_seed(99);
        let s = p.schedule(42);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[0] <= w[1], "schedule must be non-decreasing: {s:?}");
        }
        for d in &s {
            assert!(*d <= p.cap, "delay {d:?} above cap {:?}", p.cap);
        }
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let p = RetryPolicy::new(6).with_seed(5).with_jitter(0.3);
        for key in 0..50u64 {
            for attempt in 0..6 {
                let raw = DelayBackoff::new(p.base, p.cap).delay(attempt);
                let d = p.delay(key, attempt);
                assert!(d <= raw);
                let floor = Duration::from_nanos((raw.as_nanos() as f64 * 0.7) as u64);
                assert!(d >= floor, "delay {d:?} below jitter floor {floor:?}");
            }
        }
    }

    #[test]
    fn zero_jitter_is_exact_backoff() {
        let p = RetryPolicy::new(5).with_jitter(0.0);
        for a in 0..5 {
            assert_eq!(p.delay(9, a), DelayBackoff::new(p.base, p.cap).delay(a));
        }
    }

    #[test]
    fn sleep_delay_matches_monotone_schedule() {
        // sleep() must realize schedule(), not the un-clamped delay().
        let p = RetryPolicy::new(10).with_seed(99).with_jitter(0.5);
        for key in [7u64, 42, 1001] {
            let s = p.schedule(key);
            for (a, d) in s.iter().enumerate() {
                assert_eq!(p.scheduled_delay(key, a as u32), *d);
            }
        }
    }

    #[test]
    fn none_policy_has_empty_schedule() {
        assert!(RetryPolicy::none().schedule(1).is_empty());
    }

    #[test]
    fn cumulative_delay_sums_realized_schedule() {
        let p = RetryPolicy::new(6).with_seed(17).with_jitter(0.4);
        for key in [0u64, 5, 999] {
            let expect: Duration = p.schedule(key).iter().sum();
            assert_eq!(p.cumulative_delay(key, p.max_retries), expect);
            assert_eq!(p.cumulative_delay(key, 0), Duration::ZERO);
            // Prefix sums are monotone in the attempt count.
            let mut prev = Duration::ZERO;
            for a in 0..=p.max_retries {
                let c = p.cumulative_delay(key, a);
                assert!(c >= prev);
                prev = c;
            }
        }
    }

    #[test]
    fn jitter_clamped_to_half() {
        let p = RetryPolicy::new(4).with_jitter(0.9);
        assert_eq!(p.jitter, 0.5);
    }
}
