//! Property tests for the fault plan and retry policy.
//!
//! `dhub-faults` carries the in-repo proptest engine as a regular
//! dependency (the fault stream *is* a seeded RNG), so these properties run
//! unconditionally. Failures print a `PROPTEST_SEED` that replays the exact
//! counter-example.

use dhub_faults::{
    FaultConfig, FaultKind, FaultOp, FaultPlan, RetryPolicy, ALL_FAULT_KINDS, ALL_FAULT_OPS,
};
use dhub_sync::DelayBackoff;
use proptest::prelude::*;
use std::time::Duration;

fn policy(seed: u64, retries: u32, jitter: f64) -> RetryPolicy {
    RetryPolicy::new(retries).with_seed(seed).with_jitter(jitter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The realized schedule is monotone non-decreasing and never exceeds
    /// the cap, whatever the seed, key, jitter, or length.
    #[test]
    fn schedule_monotone_and_capped(seed in 0u64..u64::MAX, key in 0u64..u64::MAX,
                                    retries in 0u32..24, jitter in 0.0f64..0.5) {
        let p = policy(seed, retries, jitter);
        let s = p.schedule(key);
        prop_assert_eq!(s.len(), retries as usize);
        for w in s.windows(2) {
            prop_assert!(w[0] <= w[1], "schedule not monotone: {:?}", s);
        }
        for d in &s {
            prop_assert!(*d <= p.cap, "delay {:?} above cap {:?}", d, p.cap);
        }
    }

    /// Every raw (unclamped) delay lies inside its jitter band:
    /// `[raw * (1 - jitter), raw]`.
    #[test]
    fn jitter_stays_in_bounds(seed in 0u64..u64::MAX, key in 0u64..u64::MAX,
                              attempt in 0u32..16, jitter in 0.0f64..0.5) {
        let p = policy(seed, 16, jitter);
        let raw = DelayBackoff::new(p.base, p.cap).delay(attempt);
        let d = p.delay(key, attempt);
        prop_assert!(d <= raw, "jitter must only shrink: {:?} > {:?}", d, raw);
        // One nanosecond of slack for the f64 round-trip.
        let floor = Duration::from_nanos(
            (raw.as_nanos() as f64 * (1.0 - jitter)) as u64).saturating_sub(Duration::from_nanos(1));
        prop_assert!(d >= floor, "delay {:?} below jitter floor {:?}", d, floor);
    }

    /// Same (seed, key) → byte-identical schedule; a different seed is
    /// allowed to differ (and with jitter on, usually does).
    #[test]
    fn schedule_is_a_pure_function_of_seed_and_key(seed in 0u64..u64::MAX,
                                                   key in 0u64..u64::MAX,
                                                   jitter in 0.0f64..0.5) {
        let a = policy(seed, 12, jitter).schedule(key);
        let b = policy(seed, 12, jitter).schedule(key);
        prop_assert_eq!(a, b, "replay with the same seed diverged");
    }

    /// The fault decision is pure: identical (seed, op, key, attempt)
    /// inputs answer identically, call after call, plan after plan.
    #[test]
    fn fault_decision_is_pure(seed in 0u64..u64::MAX, key in 0u64..u64::MAX,
                              attempt in 0u32..8, rate in 0.0f64..1.0) {
        let a = FaultPlan::new(FaultConfig::uniform(seed, rate));
        let b = FaultPlan::new(FaultConfig::uniform(seed, rate));
        for &op in &ALL_FAULT_OPS {
            prop_assert_eq!(
                a.decide(op, key, attempt, &ALL_FAULT_KINDS),
                b.decide(op, key, attempt, &ALL_FAULT_KINDS)
            );
        }
    }

    /// Over many independent keys the injected fraction converges to the
    /// configured rate (law of large numbers; 4-sigma tolerance so a pinned
    /// seed never flakes).
    #[test]
    fn fault_counts_converge_to_rate(seed in 0u64..u64::MAX, rate in 0.05f64..0.95) {
        let plan = FaultPlan::new(FaultConfig::uniform(seed, rate));
        let trials = 2000u64;
        let fired = (0..trials)
            .filter(|k| plan.decide(FaultOp::Blob, *k, 0, &ALL_FAULT_KINDS).is_some())
            .count() as f64;
        let expect = rate * trials as f64;
        let sigma = (trials as f64 * rate * (1.0 - rate)).sqrt();
        prop_assert!(
            (fired - expect).abs() <= 4.0 * sigma + 1.0,
            "fired {} of {}, expected {:.0} ± {:.0}", fired, trials, expect, 4.0 * sigma
        );
    }

    /// A zero rate never faults; a rate of one always faults (when any
    /// kind is allowed).
    #[test]
    fn rate_endpoints_are_exact(seed in 0u64..u64::MAX, key in 0u64..u64::MAX) {
        let never = FaultPlan::new(FaultConfig::uniform(seed, 0.0));
        let always = FaultPlan::new(FaultConfig::uniform(seed, 1.0));
        for &op in &ALL_FAULT_OPS {
            prop_assert!(never.decide(op, key, 0, &ALL_FAULT_KINDS).is_none());
            prop_assert!(always.decide(op, key, 0, &ALL_FAULT_KINDS).is_some());
        }
    }

    /// The weighted pick honors the `allowed` set: a kind the injection
    /// site cannot express is never chosen, and zero-weight kinds never
    /// fire even when allowed.
    #[test]
    fn picks_respect_allowed_and_weights(seed in 0u64..u64::MAX, key in 0u64..500) {
        let plan = FaultPlan::new(FaultConfig::uniform(seed, 1.0));
        let allowed = [FaultKind::Drop, FaultKind::RateLimit];
        let got = plan.decide(FaultOp::Manifest, key, 0, &allowed).unwrap();
        prop_assert!(allowed.contains(&got), "picked disallowed kind {:?}", got);

        let drop_only = FaultPlan::new(
            FaultConfig::uniform(seed, 1.0).with_weight(FaultKind::RateLimit, 0));
        let got = drop_only.decide(FaultOp::Manifest, key, 0, &allowed).unwrap();
        prop_assert_eq!(got, FaultKind::Drop, "zero-weight kind fired");
    }
}
