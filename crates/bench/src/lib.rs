//! Minimal benchmark harness with a criterion-shaped API.
//!
//! The workspace builds with no network and no registry cache, so the
//! benches run on this in-repo timing core instead of `criterion`. It keeps
//! the subset of the API the bench files use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`],
//! [`criterion_group!`]/[`criterion_main!`] — and the same bench IDs, so
//! swapping the real crate back in is an import change.
//!
//! Measurement model: per bench, a short warmup, then `sample_size` wall
//! clock samples (each batched to amortize timer overhead for fast
//! routines); the reported figure is the **median** per-iteration time.
//! Every bench prints one CSV line to stdout:
//!
//! ```text
//! name,median_ns,samples,threads
//! ```
//!
//! `samples` is the number of timing samples the median came from and
//! `threads` the machine's available parallelism — recorded so stored
//! results (`BENCH_*.json`) say how they were taken.
//!
//! plus a human-readable line on stderr (with throughput when declared).
//! Positional CLI args act as substring filters like criterion's; `--bench`
//! and other flags cargo passes are ignored.

use std::time::{Duration, Instant};

/// Declared per-iteration work volume, used only for pretty-printing rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical items processed per iteration.
    Elements(u64),
}

/// Harness entry point, one per bench binary.
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { sample_size: 20, filters }
    }
}

impl Criterion {
    /// Number of timing samples per bench (builder-style, like criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), self.sample_size, None, &self.filters, f);
    }

    /// Opens a named group; the name is organizational only (IDs stay as
    /// given, matching how the paper figures are keyed).
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            _name: name.as_ref().to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benches sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    _name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work volume for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(3));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.c.sample_size);
        run_bench(id.as_ref(), samples, self.throughput, &self.c.filters, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the bench closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: run until ~40 ms or 3 iterations spent,
        // whichever comes first, tracking the fastest single iteration.
        let warmup_budget = Duration::from_millis(40);
        let warmup_start = Instant::now();
        let mut fastest = Duration::MAX;
        let mut warm_iters = 0u32;
        while warm_iters < 3 || (warmup_start.elapsed() < warmup_budget && warm_iters < 1000) {
            let t = Instant::now();
            std::hint::black_box(routine());
            fastest = fastest.min(t.elapsed());
            warm_iters += 1;
        }
        // Batch fast routines so one sample spans >= ~2 ms of wall clock;
        // slow routines get one iteration per sample.
        let target = Duration::from_millis(2);
        let batch = if fastest >= target || fastest.is_zero() {
            1
        } else {
            (target.as_nanos() / fastest.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn run_bench<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, filters: &[String], mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !filters.is_empty() && !filters.iter().any(|x| id.contains(x.as_str())) {
        return;
    }
    let mut b = Bencher { sample_size, median_ns: f64::NAN };
    f(&mut b);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("{id},{:.0},{sample_size},{threads}", b.median_ns);
    let human = format_ns(b.median_ns);
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (b.median_ns / 1e9) / (1u64 << 20) as f64;
            eprintln!("[bench] {id}: {human}/iter ({rate:.1} MiB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (b.median_ns / 1e9);
            eprintln!("[bench] {id}: {human}/iter ({rate:.0} elems/s)");
        }
        None => eprintln!("[bench] {id}: {human}/iter"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Defines a group runner function from a config and target benches.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the given groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_constant_work_is_finite() {
        let mut b = Bencher { sample_size: 5, median_ns: f64::NAN };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.median_ns.is_finite() && b.median_ns >= 0.0);
    }

    #[test]
    fn slow_routines_run_one_iteration_per_sample() {
        let mut b = Bencher { sample_size: 3, median_ns: f64::NAN };
        b.iter(|| std::thread::sleep(Duration::from_millis(3)));
        assert!(b.median_ns >= 2.5e6, "median {} ns", b.median_ns);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default().sample_size(4);
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("bench_harness_smoke", |b| {
            b.iter(|| std::hint::black_box(3u32 * 7));
        });
        g.finish();
    }
}
