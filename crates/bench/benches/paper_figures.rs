//! One benchmark per paper artifact (Table 1, Figs. 3–29, Table 2).
//!
//! Each `bench_figXX` regenerates its figure from a shared pipeline run
//! (hub generation + crawl/download/analyze happen once per process) and
//! **prints the figure's rows and anchors** the first time it runs, so
//! `cargo bench -p dhub-bench --bench paper_figures` both times the
//! analyses and emits the full paper-vs-measured report that EXPERIMENTS.md
//! is built from.

use dhub_bench::{criterion_group, criterion_main, Criterion};
use dhub_study::figures;
use dhub_study::pipeline::{run_study, StudyData};
use dhub_study::FigureReport;
use dhub_synth::{generate_hub, SynthConfig};
use std::sync::OnceLock;

/// Benchmark scale: large enough for stable distribution shapes.
fn data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| {
        let repos = std::env::var("DHUB_BENCH_REPOS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(250);
        let cfg = SynthConfig::default_scale(20170530).with_repos(repos);
        eprintln!("[bench] generating hub: {repos} repos, seed {} ...", cfg.seed);
        let t = std::time::Instant::now();
        let hub = generate_hub(&cfg);
        eprintln!("[bench] hub ready in {:.1?}; running pipeline ...", t.elapsed());
        let t = std::time::Instant::now();
        let d = run_study(&hub, dhub_par::default_threads());
        eprintln!("[bench] pipeline done in {:.1?}", t.elapsed());
        d
    })
}

fn bench_artifact(c: &mut Criterion, name: &str, f: fn(&StudyData) -> FigureReport) {
    let d = data();
    // Print the regenerated figure once per process so bench output doubles
    // as the reproduction report.
    println!("{}", f(d).render());
    c.bench_function(name, |b| b.iter(|| std::hint::black_box(f(d))));
}

macro_rules! figure_benches {
    ($($fn_name:ident => $bench:literal, $figure:path;)*) => {
        $(fn $fn_name(c: &mut Criterion) {
            bench_artifact(c, $bench, $figure);
        })*
    };
}

figure_benches! {
    bench_table1 => "bench_table1_dataset_summary", figures::table1;
    bench_fig03 => "bench_fig03_layer_sizes", figures::fig03;
    bench_fig04 => "bench_fig04_compression_ratio", figures::fig04;
    bench_fig05 => "bench_fig05_files_per_layer", figures::fig05;
    bench_fig06 => "bench_fig06_dirs_per_layer", figures::fig06;
    bench_fig07 => "bench_fig07_layer_depth", figures::fig07;
    bench_fig08 => "bench_fig08_popularity", figures::fig08;
    bench_fig09 => "bench_fig09_image_sizes", figures::fig09;
    bench_fig10 => "bench_fig10_layers_per_image", figures::fig10;
    bench_fig11 => "bench_fig11_dirs_per_image", figures::fig11;
    bench_fig12 => "bench_fig12_files_per_image", figures::fig12;
    bench_fig13 => "bench_fig13_taxonomy", figures::fig13;
    bench_fig14 => "bench_fig14_type_group_shares", figures::fig14;
    bench_fig15 => "bench_fig15_avg_size_by_group", figures::fig15;
    bench_fig16 => "bench_fig16_eol_breakdown", figures::fig16;
    bench_fig17 => "bench_fig17_source_breakdown", figures::fig17;
    bench_fig18 => "bench_fig18_script_breakdown", figures::fig18;
    bench_fig19 => "bench_fig19_document_breakdown", figures::fig19;
    bench_fig20 => "bench_fig20_archival_breakdown", figures::fig20;
    bench_fig21 => "bench_fig21_database_breakdown", figures::fig21;
    bench_fig22 => "bench_fig22_imagefile_breakdown", figures::fig22;
    bench_fig23 => "bench_fig23_layer_sharing", figures::fig23;
    bench_fig24 => "bench_fig24_file_repeats", figures::fig24;
    bench_fig25 => "bench_fig25_dedup_growth", figures::fig25;
    bench_fig26 => "bench_fig26_cross_duplicates", figures::fig26;
    bench_fig27 => "bench_fig27_dedup_by_group", figures::fig27;
    bench_fig28 => "bench_fig28_dedup_eol", figures::fig28;
    bench_fig29 => "bench_fig29_dedup_source", figures::fig29;
    bench_table2 => "bench_table2_dedup_headline", figures::table2;
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table1, bench_fig03, bench_fig04, bench_fig05, bench_fig06, bench_fig07,
        bench_fig08, bench_fig09, bench_fig10, bench_fig11, bench_fig12, bench_fig13,
        bench_fig14, bench_fig15, bench_fig16, bench_fig17, bench_fig18, bench_fig19,
        bench_fig20, bench_fig21, bench_fig22, bench_fig23, bench_fig24, bench_fig25,
        bench_fig26, bench_fig27, bench_fig28, bench_fig29, bench_table2
}
criterion_main!(paper);
