//! Benchmarks for the observability layer (BENCH_obs.json): the
//! instrumented end-to-end download pipeline (same setup as
//! `bench_download_fault_rate_0` in benches/faults.rs, so the two files'
//! figures are directly comparable — the obs acceptance bar is ≤1 %
//! overhead), plus microbenches for the primitives themselves: contended
//! counter increments, span enter/exit, snapshotting, and rendering.

use dhub_bench::{criterion_group, criterion_main, Criterion, Throughput};
use dhub_downloader::{download_all_obs, download_all_with};
use dhub_faults::RetryPolicy;
use dhub_obs::{span, MetricsRegistry};
use dhub_registry::NetworkModel;
use dhub_synth::{generate_hub, SynthConfig, SyntheticHub};

const THREADS: usize = 4;

fn hub() -> SyntheticHub {
    generate_hub(&SynthConfig::tiny(42).with_repos(40))
}

/// The instrumented downloader, fresh registry per run (what
/// `download_all_with` does) and a single long-lived shared registry (what
/// a real study with `--metrics` does). Setup mirrors
/// `bench_download_fault_rate_0` so BENCH_faults.json's figure is the
/// uninstrumented reference.
fn bench_download_instrumented(c: &mut Criterion) {
    let hub = hub();
    let repos = hub.registry.repo_names();
    let policy = RetryPolicy::fast(16).with_seed(7);
    let net = NetworkModel::datacenter();
    let clean = download_all_with(&hub.registry, &repos, THREADS, &net, &policy);
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Bytes(clean.report.bytes_fetched));
    g.sample_size(10);

    g.bench_function("bench_download_obs_fresh_registry", |b| {
        b.iter(|| {
            let res = download_all_with(&hub.registry, &repos, THREADS, &net, &policy);
            std::hint::black_box(res.report.bytes_fetched)
        })
    });

    let shared = MetricsRegistry::new();
    g.bench_function("bench_download_obs_shared_registry", |b| {
        b.iter(|| {
            let res = download_all_obs(&hub.registry, &repos, THREADS, &net, &policy, &shared);
            std::hint::black_box(res.report.bytes_fetched)
        })
    });
    g.finish();
}

/// Contended counter increments: 4 workers hammering one counter. The
/// sharded cache-padded design should keep this near the uncontended cost.
fn bench_counter_contended(c: &mut Criterion) {
    const PER_WORKER: u64 = 100_000;
    let reg = MetricsRegistry::new();
    let counter = reg.counter("bench_contended_total");
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Elements(PER_WORKER * THREADS as u64));
    g.bench_function("bench_counter_inc_contended_4x100k", |b| {
        b.iter(|| {
            dhub_sync::work_crew(THREADS, |_| {
                for _ in 0..PER_WORKER {
                    counter.inc();
                }
            });
            std::hint::black_box(counter.get())
        })
    });
    g.finish();
}

/// Span enter/exit: id derivation, stack push/pop, aggregate update.
fn bench_span_enter_exit(c: &mut Criterion) {
    const N: u64 = 10_000;
    let reg = MetricsRegistry::new();
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Elements(N));
    g.bench_function("bench_span_enter_exit_10k", |b| {
        b.iter(|| {
            for key in 0..N {
                let s = span!(reg, "bench_span", key);
                std::hint::black_box(s.id());
            }
            std::hint::black_box(reg.span_digest())
        })
    });
    g.finish();
}

/// Snapshot + Prometheus render over a realistically populated registry.
fn bench_exporters(c: &mut Criterion) {
    let reg = MetricsRegistry::new();
    for i in 0..64 {
        reg.counter(&format!("dhub_bench_counter_{i}_total")).add(i * 1000);
        reg.gauge(&format!("dhub_bench_gauge_{i}")).set(i as f64 * 0.5);
    }
    let h = reg.histogram("dhub_bench_latency_ns");
    for i in 0..4096u64 {
        h.observe(i * i);
    }
    for i in 0..16u64 {
        let _s = span!(reg, "bench_stage", i);
    }
    let mut g = c.benchmark_group("obs");
    g.bench_function("bench_snapshot", |b| {
        b.iter(|| std::hint::black_box(reg.snapshot().counters.len()))
    });
    g.bench_function("bench_render_prometheus", |b| {
        b.iter(|| std::hint::black_box(dhub_obs::render_prometheus(&reg).len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_download_instrumented,
    bench_counter_contended,
    bench_span_enter_exit,
    bench_exporters,
);
criterion_main!(benches);
