//! Benchmarks for the mirror tier (BENCH_mirror.json): a Zipf-shaped pull
//! workload against a direct origin vs a warm `dhub-mirror` edge cache,
//! plus microbenches for the ring router and the hot-hit cache path.
//!
//! The origin/vs/mirror comparison models the paper's Fig. 8 conclusion
//! (popular images are highly cacheable) under a WAN-shaped origin: every
//! origin request pays a deterministic 5 ms wire stall (a rate-1.0
//! SlowLink fault plan — correct bytes, delayed; a fraction of a real
//! WAN round-trip to `registry-1.docker.io`), while the mirror sits next
//! to the client. A warm mirror serves the whole trace from its cache and
//! never pays the stall; that locality gap — not raw server speed — is
//! what the ≥2× acceptance bar measures. Both topologies pay the same
//! loopback HTTP cost per request (~2.4 ms of it is the server's 2 ms
//! accept-poll cadence), so the measured ratio *understates* what a real
//! WAN deployment would see.

use dhub_bench::{criterion_group, criterion_main, Criterion, Throughput};
use dhub_cache::{PullTrace, TraceConfig};
use dhub_faults::{FaultConfig, FaultInjector, FaultKind};
use dhub_mirror::{HashRing, LiveCache, Mirror, MirrorConfig, PolicyKind};
use dhub_model::{Digest, RepoName};
use dhub_obs::MetricsRegistry;
use dhub_registry::{RegistryServer, RemoteRegistry};
use dhub_synth::{generate_hub, SynthConfig, SyntheticHub};
use std::sync::Arc;
use std::time::Duration;

const REQUESTS: usize = 200;

fn hub() -> SyntheticHub {
    generate_hub(&SynthConfig::tiny(42).with_repos(24))
}

/// A rate-1.0 SlowLink plan: every request served correctly after a 5 ms
/// stall. Deterministic (no retries fire), so both topologies transfer
/// identical bytes.
fn wan_stall() -> Arc<FaultInjector> {
    let cfg = FaultConfig::only(7, 1.0, FaultKind::SlowLink).with_slow_link(Duration::from_millis(5));
    Arc::new(FaultInjector::new(cfg))
}

/// `(repo, blob digest)` pull targets with the hub's popularity weights,
/// expanded into a Zipf-shaped request sequence.
fn zipf_targets(hub: &SyntheticHub, addr: std::net::SocketAddr) -> Vec<(RepoName, Digest)> {
    let client = RemoteRegistry::connect_anonymous(addr);
    let mut targets = Vec::new();
    for repo in hub.registry.repo_names() {
        // Private repos 401 for the anonymous puller — skip them, exactly
        // as the study's downloader buckets them as failed_auth.
        if let Ok((_, manifest)) = client.get_manifest(&repo, "latest") {
            for layer in &manifest.layers {
                targets.push((repo.clone(), layer.digest));
            }
        }
    }
    targets
}

fn zipf_trace(hub: &SyntheticHub, targets: &[(RepoName, Digest)]) -> Vec<usize> {
    let objects: Vec<(u64, f64, u64)> = targets
        .iter()
        .enumerate()
        .map(|(i, (repo, _))| {
            let pulls = hub.registry.pull_count(repo).unwrap_or(0);
            (i as u64, (pulls + 1) as f64, 1)
        })
        .collect();
    let trace = PullTrace::from_popularity(&objects, &TraceConfig { seed: 1, requests: REQUESTS });
    trace.requests.iter().map(|&(key, _)| key as usize).collect()
}

/// Pulls every blob in `trace` order from `addr`; returns bytes moved.
fn replay(addr: std::net::SocketAddr, targets: &[(RepoName, Digest)], trace: &[usize]) -> u64 {
    let client = RemoteRegistry::connect_anonymous(addr);
    let mut bytes = 0u64;
    for &i in trace {
        let (repo, digest) = &targets[i];
        bytes += client.get_blob(repo, digest).expect("bench blobs must serve").len() as u64;
    }
    bytes
}

/// The headline comparison: one Zipf trace replayed against a stalled
/// direct origin and against a warm mirror fronting two such origins.
fn bench_zipf_mirror_vs_direct(c: &mut Criterion) {
    let hub = hub();
    let direct =
        RegistryServer::start_with_faults(hub.registry.clone(), Some(wan_stall())).unwrap();
    let o1 = RegistryServer::start_with_faults(hub.registry.clone(), Some(wan_stall())).unwrap();
    let o2 = RegistryServer::start_with_faults(hub.registry.clone(), Some(wan_stall())).unwrap();
    let obs = Arc::new(MetricsRegistry::new());
    let mirror = Arc::new(Mirror::new(
        &[o1.addr(), o2.addr()],
        MirrorConfig::new(1 << 30, PolicyKind::Lru),
        obs.clone(),
    ));
    let msrv =
        RegistryServer::start_mirror(mirror.clone(), obs, dhub_registry::DEFAULT_MAX_CONNS)
            .unwrap();

    let targets = zipf_targets(&hub, msrv.addr());
    let trace = zipf_trace(&hub, &targets);
    // Warm the mirror once so the measured runs are the steady state; the
    // direct baseline has no cache to warm.
    let warm_bytes = replay(msrv.addr(), &targets, &trace);

    let mut g = c.benchmark_group("mirror");
    g.throughput(Throughput::Bytes(warm_bytes));
    g.sample_size(10);
    g.bench_function("bench_pull_zipf_direct_origin", |b| {
        b.iter(|| std::hint::black_box(replay(direct.addr(), &targets, &trace)))
    });
    g.bench_function("bench_pull_zipf_mirror_warm", |b| {
        b.iter(|| std::hint::black_box(replay(msrv.addr(), &targets, &trace)))
    });
    g.finish();

    assert!(mirror.report().hits > 0, "warm mirror must be serving from cache");
    msrv.shutdown();
    direct.shutdown();
    o1.shutdown();
    o2.shutdown();
}

/// Ring routing cost: full failover order for 1k keys on a 4-shard ring.
fn bench_ring_route(c: &mut Criterion) {
    let ring = HashRing::new(4, 32);
    let mut g = c.benchmark_group("mirror");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("bench_ring_route_1k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for key in 0..1000u64 {
                acc += ring.route(key.wrapping_mul(0x9e3779b97f4a7c15))[0];
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

/// The serving-path hot hit: striped-lock lookup + policy touch + Arc
/// clone of the bytes, no HTTP.
fn bench_cache_hot_hit(c: &mut Criterion) {
    let cache = LiveCache::new(1 << 20, PolicyKind::Lru, 8);
    let key = 0xabcd_0000_0000_1234u64;
    cache.admit(key, Arc::new(vec![7u8; 4096]));
    let mut g = c.benchmark_group("mirror");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("bench_cache_hot_hit", |b| {
        b.iter(|| std::hint::black_box(cache.lookup(key).expect("resident").len()))
    });
    g.finish();
}

criterion_group!(benches, bench_ring_route, bench_cache_hot_hit, bench_zipf_mirror_vs_direct);
criterion_main!(benches);
