//! Substrate micro-benchmarks: the from-scratch building blocks whose
//! throughput bounds the pipeline (sha256, DEFLATE, tar, parallel map).

use dhub_bench::{criterion_group, criterion_main, Criterion, Throughput};
use dhub_compress::{deflate, gzip_compress, gzip_decompress, inflate, CompressOptions};
use dhub_digest::{crc32, sha256};
use dhub_model::FileKind;
use dhub_synth::forge::forge;
use dhub_tar::{read_archive, write_archive, TarEntry};

fn payload(n: usize) -> Vec<u8> {
    // Text-like content, representative of the dominant document class.
    forge(FileKind::AsciiText, n as u64, 7)
}

fn bench_sha256(c: &mut Criterion) {
    let data = payload(1 << 20);
    let mut g = c.benchmark_group("sha256");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("bench_sha256_1MiB", |b| b.iter(|| std::hint::black_box(sha256(&data))));
    g.finish();
}

fn bench_crc32(c: &mut Criterion) {
    let data = payload(1 << 20);
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("bench_crc32_1MiB", |b| b.iter(|| std::hint::black_box(crc32(&data))));
    g.finish();
}

fn bench_deflate(c: &mut Criterion) {
    let data = payload(1 << 20);
    let mut g = c.benchmark_group("deflate");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (name, opts) in [
        ("bench_deflate_fast_1MiB", CompressOptions::fast()),
        ("bench_deflate_default_1MiB", CompressOptions::default()),
        ("bench_deflate_best_1MiB", CompressOptions::best()),
    ] {
        g.bench_function(name, |b| b.iter(|| std::hint::black_box(deflate(&data, &opts))));
    }
    let compressed = deflate(&data, &CompressOptions::default());
    g.bench_function("bench_inflate_1MiB", |b| {
        b.iter(|| std::hint::black_box(inflate(&compressed).unwrap()))
    });
    g.finish();
}

fn bench_tar(c: &mut Criterion) {
    let entries: Vec<TarEntry> = (0..200)
        .map(|i| TarEntry::file(&format!("usr/share/doc/pkg{i}/README"), payload(2048)))
        .collect();
    let archive = write_archive(&entries);
    let mut g = c.benchmark_group("tar");
    g.throughput(Throughput::Bytes(archive.len() as u64));
    g.bench_function("bench_tar_write_200_files", |b| {
        b.iter(|| std::hint::black_box(write_archive(&entries)))
    });
    g.bench_function("bench_tar_read_200_files", |b| {
        b.iter(|| std::hint::black_box(read_archive(&archive).unwrap()))
    });
    g.finish();
}

fn bench_layer_roundtrip(c: &mut Criterion) {
    // The full per-layer cost the pipeline pays: tar -> gzip -> gunzip -> untar.
    let entries: Vec<TarEntry> =
        (0..50).map(|i| TarEntry::file(&format!("opt/app/mod{i}.py"), payload(4096))).collect();
    let mut g = c.benchmark_group("layer");
    g.bench_function("bench_layer_pack_unpack", |b| {
        b.iter(|| {
            let tar = write_archive(&entries);
            let gz = gzip_compress(&tar, &CompressOptions::fast());
            let back = gzip_decompress(&gz).unwrap();
            std::hint::black_box(read_archive(&back).unwrap())
        })
    });
    g.finish();
}

fn bench_par_map(c: &mut Criterion) {
    let items: Vec<u64> = (0..1_000_000).collect();
    let work = |&x: &u64| {
        // A few hundred ns of work per item, like classifying a file record.
        let mut acc = x;
        for _ in 0..32 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        acc
    };
    let mut g = c.benchmark_group("par_map_scaling");
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("bench_par_map_{threads}t"), |b| {
            b.iter(|| std::hint::black_box(dhub_par::par_map(threads, &items, work)))
        });
    }
    g.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(10);
    targets = bench_sha256, bench_crc32, bench_deflate, bench_tar, bench_layer_roundtrip, bench_par_map
}
criterion_main!(substrates);
