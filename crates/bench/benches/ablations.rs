//! Ablation benchmarks for the design choices DESIGN.md §6 calls out:
//!
//! * sharded vs single-mutex dedup counters,
//! * parallel vs sequential layer analysis,
//! * the paper's §IV-A proposal — store small layers uncompressed — as a
//!   pull-latency model sweep,
//! * LRU caching driven by the measured popularity skew (§IV-B).

use dhub_bench::{criterion_group, criterion_main, Criterion};
use dhub_analyzer::analyze_layer;
use dhub_model::Digest;
use dhub_par::sharded::CoarseMap;
use dhub_par::ShardedMap;
use dhub_registry::NetworkModel;
use dhub_synth::layergen::build_app_layer;
use dhub_synth::pool::FilePool;
use dhub_synth::SynthConfig;
use std::sync::OnceLock;
use std::time::Duration;

fn pool() -> &'static FilePool {
    static POOL: OnceLock<FilePool> = OnceLock::new();
    POOL.get_or_init(|| FilePool::build(&SynthConfig::default_scale(5).with_repos(200), 300_000))
}

fn layers() -> &'static Vec<(Digest, Vec<u8>)> {
    static LAYERS: OnceLock<Vec<(Digest, Vec<u8>)>> = OnceLock::new();
    LAYERS.get_or_init(|| {
        let p = pool();
        dhub_par::par_map_range(dhub_par::default_threads(), 0..96, |i| {
            let l = build_app_layer(p, 0xAB1A + i as u64);
            (l.digest, l.blob)
        })
    })
}

/// Sharded vs coarse-lock concurrent counting (the dedup index design).
fn bench_sharded(c: &mut Criterion) {
    let keys: Vec<u64> = (0..200_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) % 50_000).collect();
    let threads = dhub_par::default_threads();
    let mut g = c.benchmark_group("dedup_counter");
    g.bench_function("bench_sharded_map_update", |b| {
        b.iter(|| {
            let m: ShardedMap<u64, u64> = ShardedMap::new(64);
            dhub_par::par_for_each(threads, &keys, |&k| m.update(k, |v| *v += 1));
            std::hint::black_box(m.len())
        })
    });
    g.bench_function("bench_coarse_map_update", |b| {
        b.iter(|| {
            let m: CoarseMap<u64, u64> = CoarseMap::new();
            dhub_par::par_for_each(threads, &keys, |&k| m.update(k, |v| *v += 1));
            std::hint::black_box(m.len())
        })
    });
    g.finish();
}

/// Parallel vs sequential layer analysis (the §III pipeline ablation).
fn bench_pipeline(c: &mut Criterion) {
    let ls = layers();
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("bench_analyze_sequential", |b| {
        b.iter(|| {
            let mut n = 0;
            for (d, blob) in ls.iter() {
                n += analyze_layer(*d, blob).unwrap().file_count;
            }
            std::hint::black_box(n)
        })
    });
    g.bench_function("bench_analyze_parallel", |b| {
        b.iter(|| {
            let counts = dhub_par::par_map(dhub_par::default_threads(), ls, |(d, blob)| {
                analyze_layer(*d, blob).unwrap().file_count
            });
            std::hint::black_box(counts.iter().sum::<u64>())
        })
    });
    g.finish();
}

/// The paper's §IV-A trade-off: pull latency with layers always compressed
/// vs stored uncompressed below a size threshold. Transfer is simulated
/// with the WAN model; decompression cost is measured for real.
fn bench_pull_policy(c: &mut Criterion) {
    let ls = layers();
    let net = NetworkModel::wan();
    // Decompressed counterparts for the uncompressed-store policy.
    let raw: Vec<Vec<u8>> =
        ls.iter().map(|(_, blob)| dhub_compress::gzip_decompress(blob).unwrap()).collect();

    let mut g = c.benchmark_group("pull_policy");
    g.sample_size(10);
    for threshold in [0u64, 4 << 10, 64 << 10, u64::MAX] {
        let name = match threshold {
            0 => "bench_pull_always_compressed".to_string(),
            u64::MAX => "bench_pull_never_compressed".to_string(),
            t => format!("bench_pull_uncompressed_below_{}k", t >> 10),
        };
        g.bench_function(&name, |b| {
            b.iter(|| {
                let mut sim = Duration::ZERO;
                for (i, (_, blob)) in ls.iter().enumerate() {
                    let small = (raw[i].len() as u64) < threshold;
                    if small {
                        // Stored uncompressed: bigger transfer, no inflate.
                        sim += net.transfer_time(raw[i].len() as u64);
                        std::hint::black_box(&raw[i]);
                    } else {
                        sim += net.transfer_time(blob.len() as u64);
                        std::hint::black_box(dhub_compress::gzip_decompress(blob).unwrap());
                    }
                }
                std::hint::black_box(sim)
            })
        });
    }
    g.finish();
}

/// LRU cache hit ratio computation over a popularity-skewed pull trace.
fn bench_cache(c: &mut Criterion) {
    use dhub_stats::{Categorical, Rng};
    let repos = 2_000usize;
    // Zipf-ish popularity like Fig. 8.
    let weights: Vec<f64> = (0..repos).map(|i| 1.0 / (i as f64 + 1.0).powf(0.9)).collect();
    let dist = Categorical::new(&weights);
    let mut rng = Rng::new(99);
    let trace: Vec<usize> = (0..100_000).map(|_| dist.sample(&mut rng)).collect();

    let mut g = c.benchmark_group("cache");
    for cap in [20usize, 100, 400] {
        g.bench_function(format!("bench_cache_lru_{cap}"), |b| {
            b.iter(|| {
                let mut entries: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
                let mut tick = 0u64;
                let mut hits = 0u64;
                for &r in &trace {
                    tick += 1;
                    if entries.contains_key(&r) {
                        hits += 1;
                    }
                    entries.insert(r, tick);
                    if entries.len() > cap {
                        let (&lru, _) = entries.iter().min_by_key(|(_, &t)| t).unwrap();
                        entries.remove(&lru);
                    }
                }
                std::hint::black_box(hits)
            })
        });
    }
    g.finish();
}

/// Ingest throughput of the file-level dedup store vs plain blob storage —
/// the operational cost of the paper's proposed optimization.
fn bench_dedupstore(c: &mut Criterion) {
    use dhub_dedupstore::DedupStore;
    let ls = layers();
    let total_bytes: u64 = ls.iter().map(|(_, b)| b.len() as u64).sum();
    let mut g = c.benchmark_group("dedupstore");
    g.sample_size(10);
    g.throughput(dhub_bench::Throughput::Bytes(total_bytes));
    g.bench_function("bench_dedupstore_ingest", |b| {
        b.iter(|| {
            let store = DedupStore::new();
            for (d, blob) in ls.iter() {
                let _ = store.ingest_layer(*d, blob);
            }
            std::hint::black_box(store.stats().dedup_factor())
        })
    });
    g.bench_function("bench_plain_blob_store", |b| {
        b.iter(|| {
            // Baseline: content-addressed blob storage only (layer sharing,
            // no file-level dedup).
            let store = dhub_registry::BlobStore::new();
            for (_, blob) in ls.iter() {
                store.put(blob.clone());
            }
            std::hint::black_box(store.total_bytes())
        })
    });
    // Reconstruction cost (the read-path price of recipes).
    let store = DedupStore::new();
    for (d, blob) in ls.iter() {
        let _ = store.ingest_layer(*d, blob);
    }
    let first = ls[0].0;
    g.bench_function("bench_dedupstore_reconstruct", |b| {
        b.iter(|| std::hint::black_box(store.reconstruct_tar(&first).unwrap()))
    });
    g.finish();
}

/// Perfect-layer carving cost across fold thresholds (Ext. C1's sweep).
fn bench_carve(c: &mut Criterion) {
    use dhub_carve::{carve, CarveConfig};
    let ls = layers();
    // Build a small image population over the generated layers.
    let profiles: dhub_digest::FxHashMap<_, _> = ls
        .iter()
        .map(|(d, blob)| (*d, dhub_analyzer::analyze_layer(*d, blob).unwrap()))
        .collect();
    let images: Vec<Vec<Digest>> = ls.chunks(4).map(|c| c.iter().map(|(d, _)| *d).collect()).collect();
    let mut g = c.benchmark_group("carve");
    g.sample_size(10);
    for threshold in [0u64, 64 << 10] {
        g.bench_function(format!("bench_carve_fold_{}k", threshold >> 10), |b| {
            b.iter(|| {
                std::hint::black_box(carve(&images, &profiles, &CarveConfig { min_group_bytes: threshold }).stored_bytes)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_sharded, bench_pipeline, bench_pull_policy, bench_cache, bench_dedupstore, bench_carve
}
criterion_main!(ablations);
