//! Benchmarks for the fused single-pass analysis engine
//! (BENCH_analyze.json): the end-to-end fused inflate→tar→hash→ingest path
//! against the frozen pre-fusion reference (separate decompression per
//! consumer, owned tar entries, fresh buffers per layer), plus microbenches
//! for the rebuilt primitives: the fast gzip decoder, SHA-256, and the
//! slice-by-8 CRC-32 kernel.
//!
//! The acceptance bar is fused ≥ 2× the reference in MiB/s of compressed
//! input. Both paths are asserted byte-identical in-bench before timing, so
//! a speedup can never come from computing something different.

use dhub_analyzer::{analyze_layer, analyze_layer_reference};
use dhub_bench::{criterion_group, criterion_main, Criterion, Throughput};
use dhub_compress::{gzip_decompress_into, gzip_decompress_reference};
use dhub_dedupstore::{analyze_and_ingest, DedupStore};
use dhub_digest::{crc32, sha256};
use dhub_model::Digest;
use dhub_par::Scratch;
use dhub_synth::layergen::{build_app_layer, BuiltLayer};
use dhub_synth::pool::FilePool;
use dhub_synth::SynthConfig;

/// Shared corpus: app layers drawn from one prototype pool, so cross-layer
/// file duplication exercises the dedup store like a real study does.
fn corpus() -> Vec<BuiltLayer> {
    let pool = FilePool::build(&SynthConfig::tiny(3), 20_000);
    (0..32u64).map(|s| build_app_layer(&pool, 0xF00D + s)).collect()
}

fn compressed_bytes(layers: &[BuiltLayer]) -> u64 {
    layers.iter().map(|l| l.blob.len() as u64).sum()
}

/// End-to-end layer analysis + store ingestion: the fused single-pass
/// engine vs the frozen reference (analyze, then ingest, each with its own
/// decompression and its own content hashing). Fresh store per iteration so
/// every layer is a first-sight ingest; the scratch arena is reused across
/// iterations, matching steady-state pipeline behavior.
fn bench_analyze_pipeline(c: &mut Criterion) {
    let layers = corpus();
    let bytes = compressed_bytes(&layers);

    // Equivalence gate: the timed paths must produce identical results.
    {
        let mut scratch = Scratch::new();
        let fused_store = DedupStore::new();
        let ref_store = DedupStore::new();
        for l in &layers {
            let (p, ingest) =
                analyze_and_ingest(&fused_store, l.digest, &l.blob, &mut scratch).unwrap();
            let p_ref = analyze_layer_reference(l.digest, &l.blob).unwrap();
            assert_eq!(p, p_ref, "fused profile diverged from reference");
            let _ = ingest;
            let _ = ref_store.ingest_layer_reference(l.digest, &l.blob);
        }
        let (a, b) = (fused_store.stats(), ref_store.stats());
        assert_eq!(a, b, "fused store stats diverged from reference");
        assert_eq!(a.dedup_factor().to_bits(), b.dedup_factor().to_bits());
    }

    let mut g = c.benchmark_group("analyze");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);

    let mut scratch = Scratch::new();
    g.bench_function("bench_analyze_fused", |b| {
        b.iter(|| {
            let store = DedupStore::new();
            let mut files = 0u64;
            for l in &layers {
                let (p, _) =
                    analyze_and_ingest(&store, l.digest, &l.blob, &mut scratch).unwrap();
                files += p.file_count;
            }
            std::hint::black_box((files, store.stats().unique_objects))
        })
    });

    g.bench_function("bench_analyze_reference", |b| {
        b.iter(|| {
            let store = DedupStore::new();
            let mut files = 0u64;
            for l in &layers {
                let p = analyze_layer_reference(l.digest, &l.blob).unwrap();
                store.ingest_layer_reference(l.digest, &l.blob).unwrap();
                files += p.file_count;
            }
            std::hint::black_box((files, store.stats().unique_objects))
        })
    });

    // Analysis alone (no store), fast path with scratch-free public entry
    // point — what `summary` runs per layer.
    g.bench_function("bench_analyze_only_fast", |b| {
        b.iter(|| {
            let mut files = 0u64;
            for l in &layers {
                files += analyze_layer(l.digest, &l.blob).unwrap().file_count;
            }
            std::hint::black_box(files)
        })
    });
    g.finish();
}

/// Gzip decode alone over the corpus: the new fast inflate (u64 bit
/// buffer, two-level tables, chunked copies, pre-sized output) vs the
/// frozen bit-at-a-time reference decoder.
fn bench_gunzip(c: &mut Criterion) {
    let layers = corpus();
    let bytes = compressed_bytes(&layers);
    for l in &layers {
        let mut out = Vec::new();
        gzip_decompress_into(&l.blob, &mut out).unwrap();
        assert_eq!(out, gzip_decompress_reference(&l.blob).unwrap());
    }

    let mut g = c.benchmark_group("analyze");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);

    let mut buf = Vec::new();
    g.bench_function("bench_gunzip_fast", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for l in &layers {
                gzip_decompress_into(&l.blob, &mut buf).unwrap();
                total += buf.len();
            }
            std::hint::black_box(total)
        })
    });

    g.bench_function("bench_gunzip_reference", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for l in &layers {
                total += gzip_decompress_reference(&l.blob).unwrap().len();
            }
            std::hint::black_box(total)
        })
    });
    g.finish();
}

/// Hash kernels over 1 MiB of synthetic bytes.
fn bench_hash_kernels(c: &mut Criterion) {
    const N: usize = 1 << 20;
    let data: Vec<u8> = (0..N).map(|i| (i as u32).wrapping_mul(0x9E37_79B9) as u8).collect();

    let mut g = c.benchmark_group("analyze");
    g.throughput(Throughput::Bytes(N as u64));
    g.bench_function("bench_sha256_1mib", |b| {
        b.iter(|| std::hint::black_box(sha256(&data)))
    });
    g.bench_function("bench_crc32_1mib", |b| {
        b.iter(|| std::hint::black_box(crc32(&data)))
    });
    g.bench_function("bench_digest_of_1mib", |b| {
        b.iter(|| std::hint::black_box(Digest::of(&data)))
    });
    g.finish();
}

criterion_group!(benches, bench_analyze_pipeline, bench_gunzip, bench_hash_kernels);
criterion_main!(benches);
