//! Queue tier benchmarks (BENCH_queue.json): the full queued study —
//! crawl pages, image manifests, and layer fetch/analyze/ingest jobs
//! flowing through the durable lease queue into the persistent store.
//!
//! Two questions, matching the subsystem's acceptance gates:
//!
//! - **Scaling**: with network pacing on (each blob fetch sleeps out its
//!   WAN transfer time, which the sequential pipeline only *records*),
//!   does a 4-worker fleet overlap transfers enough to beat 1 worker by
//!   a healthy multiple?
//! - **Overhead**: with pacing off, how much does routing every unit of
//!   work through durable job/result envelopes and lease claims cost
//!   over the direct single-process persistent pipeline?

use dhub_bench::{criterion_group, criterion_main, Criterion};
use dhub_dedupstore::PersistentDedupStore;
use dhub_faults::RetryPolicy;
use dhub_obs::MetricsRegistry;
use dhub_persist::Publisher;
use dhub_queue::{DurableQueue, LeaseConfig, LeaseManager};
use dhub_study::distributed::{run_study_queued_obs, QueuedStudyConfig};
use dhub_synth::{generate_hub, SynthConfig, SyntheticHub};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Bench dirs live on tmpfs when available: the queue bench measures
/// coordination overhead and worker overlap, and on a journaling disk
/// filesystem concurrent fsyncs serialize in the journal, which would
/// measure the disk instead (the persist bench covers raw durable-ingest
/// cost on the real filesystem).
fn bench_dir(tag: &str) -> PathBuf {
    let base = Path::new("/dev/shm");
    let base = if base.is_dir() { base.to_path_buf() } else { std::env::temp_dir() };
    let dir = base.join(format!("dhub-bench-queue-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Small corpus for the paced scaling pair: blob transfer sleeps are
/// RTT-dominated, so the 1-vs-4-worker ratio isolates how well the fleet
/// overlaps network waits (the only axis that can scale on one core).
fn small_hub() -> SyntheticHub {
    generate_hub(&SynthConfig::tiny(11).with_repos(12))
}

/// Paper-scale blobs (size_scale 1) over the same 12 repos for the
/// overhead pair: per-layer analysis work dominates, so the ratio
/// queued/direct exposes the queue's constant per-job envelope cost the
/// way a real study would see it.
fn big_hub() -> SyntheticHub {
    generate_hub(&SynthConfig { size_scale: 1, ..SynthConfig::tiny(11).with_repos(12) })
}

/// One full queued study into a fresh store+queue at `dir`.
fn queued_study(hub: &SyntheticHub, dir: &Path, workers: usize, pace: bool) -> usize {
    std::fs::remove_dir_all(dir).ok();
    let publisher = Publisher::new();
    let store = PersistentDedupStore::open(dir, publisher.clone()).unwrap();
    let queue = DurableQueue::open(dir.join("queue"), publisher).unwrap();
    let cfg = QueuedStudyConfig { workers, pace_network: pace, ..QueuedStudyConfig::default() };
    let obs = MetricsRegistry::new();
    let data = run_study_queued_obs(hub, &store, &queue, &cfg, &obs).unwrap();
    data.layers.len()
}

/// The direct (no queue) persistent pipeline over the same hub, single
/// analysis thread — the baseline the 1-worker overhead figure is
/// measured against.
fn direct_study(hub: &SyntheticHub, dir: &Path) -> usize {
    std::fs::remove_dir_all(dir).ok();
    let store = PersistentDedupStore::open(dir, Publisher::new()).unwrap();
    let obs = MetricsRegistry::new();
    let data = dhub_study::pipeline::run_study_persist_obs(
        hub,
        1,
        &RetryPolicy::default(),
        &store,
        &obs,
    );
    data.layers.len()
}

/// Whether any of `names` survives the harness's substring filters —
/// mirrors `run_bench`'s check so corpus generation (a paper-scale
/// synthetic hub) is skipped when a filtered run (the CI smoke) would
/// never execute these benches anyway.
fn wanted(names: &[&str]) -> bool {
    let filters: Vec<String> =
        std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    filters.is_empty()
        || names.iter().any(|n| filters.iter().any(|f| n.contains(f.as_str())))
}

fn bench_queued_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    g.sample_size(10);
    let dir = bench_dir("run");

    // Paced runs: transfers dominate, so worker overlap is the figure.
    if wanted(&["bench_queued_study_paced_1worker", "bench_queued_study_paced_4workers"]) {
        let hub = small_hub();
        g.bench_function("bench_queued_study_paced_1worker", |b| {
            b.iter(|| std::hint::black_box(queued_study(&hub, &dir, 1, true)))
        });
        g.bench_function("bench_queued_study_paced_4workers", |b| {
            b.iter(|| std::hint::black_box(queued_study(&hub, &dir, 4, true)))
        });
    }

    // Unpaced runs: the queue's own durable-envelope cost vs the direct
    // persistent pipeline doing the same crawl/fetch/analyze/ingest.
    // This pair is measured *paired* — the two pipelines alternate
    // within one window — because the overhead they resolve (a few
    // percent) is smaller than the slow host-level drift between two
    // separate measurement windows (±7% over minutes observed on this
    // box). Alternating at seconds scale cancels that drift out of the
    // ratio; the medians are printed in the harness's CSV contract.
    if wanted(&["bench_queued_study_1worker", "bench_direct_persist_study"]) {
        let hub = big_hub();
        let samples = 10;
        std::hint::black_box(queued_study(&hub, &dir, 1, false));
        std::hint::black_box(direct_study(&hub, &dir));
        let (mut q, mut d): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
        for _ in 0..samples {
            let t = Instant::now();
            std::hint::black_box(queued_study(&hub, &dir, 1, false));
            q.push(t.elapsed().as_nanos() as f64);
            let t = Instant::now();
            std::hint::black_box(direct_study(&hub, &dir));
            d.push(t.elapsed().as_nanos() as f64);
        }
        q.sort_by(f64::total_cmp);
        d.sort_by(f64::total_cmp);
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        for (name, s) in
            [("bench_queued_study_1worker", &q), ("bench_direct_persist_study", &d)]
        {
            println!("{name},{:.0},{samples},{threads}", s[samples / 2]);
            eprintln!("[bench] {name}: {:.2} s/iter (paired)", s[samples / 2] / 1e9);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    g.finish();
}

/// Pure in-memory lease machine micro: insert, claim, and complete a
/// thousand jobs. This is the per-job coordination cost floor (no disk,
/// no executor), and the cheap target the CI bench smoke runs.
fn bench_lease_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue-micro");
    let ids: Vec<String> = (0..1000).map(|i| format!("job:{i:04}")).collect();
    g.bench_function("bench_lease_claim_complete_1k", |b| {
        b.iter(|| {
            let mut m = LeaseManager::new(LeaseConfig::default());
            for id in &ids {
                m.insert(id);
            }
            let mut done = 0u32;
            while let Some((id, _)) = m.claim(0) {
                m.complete(&id);
                done += 1;
            }
            std::hint::black_box(done)
        })
    });
    g.finish();
}

criterion_group!(queue, bench_queued_pipeline, bench_lease_machine);
criterion_main!(queue);
