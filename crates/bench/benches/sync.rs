//! Benchmarks for the `dhub-sync` concurrency substrate (BENCH_sync.json):
//! bounded-channel send/recv under SPSC and MPMC load, striped-map update
//! contention vs a single mutex, and end-to-end pipeline throughput.

use dhub_bench::{criterion_group, criterion_main, Criterion, Throughput};
use dhub_par::sharded::CoarseMap;
use dhub_par::ShardedMap;
use dhub_sync::{bounded, work_crew};

/// Single producer, single consumer through a bounded channel.
fn bench_channel_spsc(c: &mut Criterion) {
    const N: u64 = 100_000;
    let mut g = c.benchmark_group("channel");
    g.throughput(Throughput::Elements(N));
    for cap in [16usize, 1024] {
        g.bench_function(format!("bench_channel_spsc_cap{cap}"), |b| {
            b.iter(|| {
                let (tx, rx) = bounded::<u64>(cap);
                let consumer = std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum = sum.wrapping_add(v);
                    }
                    sum
                });
                for i in 0..N {
                    tx.send(i).unwrap();
                }
                drop(tx);
                std::hint::black_box(consumer.join().unwrap())
            })
        });
    }
    g.finish();
}

/// Four producers, four consumers hammering one bounded channel.
fn bench_channel_mpmc(c: &mut Criterion) {
    const N: u64 = 25_000; // per producer
    let mut g = c.benchmark_group("channel");
    g.throughput(Throughput::Elements(4 * N));
    g.bench_function("bench_channel_mpmc_4p4c_cap64", |b| {
        b.iter(|| {
            let (tx, rx) = bounded::<u64>(64);
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum = sum.wrapping_add(v);
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            work_crew(4, |_| {
                for i in 0..N {
                    tx.clone().send(i).unwrap();
                }
            });
            drop(tx);
            let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            std::hint::black_box(total)
        })
    });
    g.finish();
}

/// Striped-map vs coarse single-mutex update contention (the dedup-counter
/// workload `dhub-par::ShardedMap` exists for).
fn bench_striped_contention(c: &mut Criterion) {
    let keys: Vec<u64> =
        (0..200_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) % 50_000).collect();
    let threads = dhub_par::default_threads();
    let mut g = c.benchmark_group("striped");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("bench_sync_striped_map_update", |b| {
        b.iter(|| {
            let m: ShardedMap<u64, u64> = ShardedMap::new(64);
            dhub_par::par_for_each(threads, &keys, |&k| m.update(k, |v| *v += 1));
            std::hint::black_box(m.len())
        })
    });
    g.bench_function("bench_sync_coarse_map_update", |b| {
        b.iter(|| {
            let m: CoarseMap<u64, u64> = CoarseMap::new();
            dhub_par::par_for_each(threads, &keys, |&k| m.update(k, |v| *v += 1));
            std::hint::black_box(m.len())
        })
    });
    g.finish();
}

/// Multi-stage pipeline throughput on the migrated channel substrate.
fn bench_pipeline_throughput(c: &mut Criterion) {
    use dhub_par::pipeline::{sink, source, stage};
    const N: u64 = 50_000;
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(N));
    g.bench_function("bench_sync_pipeline_2stage", |b| {
        b.iter(|| {
            let src = source(0..N, 256);
            let hashed = stage(src, 4, 256, |x: u64| {
                let mut acc = x;
                for _ in 0..32 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                Some(acc)
            });
            let kept = stage(hashed, 2, 256, |x: u64| (x & 1 == 0).then_some(x));
            std::hint::black_box(sink(kept).len())
        })
    });
    g.finish();
}

criterion_group! {
    name = sync;
    config = Criterion::default().sample_size(10);
    targets = bench_channel_spsc, bench_channel_mpmc, bench_striped_contention, bench_pipeline_throughput
}
criterion_main!(sync);
