//! Benchmarks for the persistence tier (BENCH_persist.json): cold-reopen
//! throughput (replaying recipes and digest-verifying every object back
//! into memory) and warm-query latency against the columnar study tables,
//! plus microbenches for the durable publish path itself.
//!
//! Cold reopen is the recovery path a crashed study pays before resuming;
//! warm queries are what `dhub query` answers without a hub. Both are
//! measured over a store ingested from the same app-layer corpus the
//! analyze benches use, so the figures line up with BENCH_analyze.json.

use dhub_bench::{criterion_group, criterion_main, Criterion, Throughput};
use dhub_dedupstore::PersistentDedupStore;
use dhub_par::Scratch;
use dhub_persist::{ColType, Predicate, Publisher, Schema, Table, Value};
use dhub_synth::layergen::{build_app_layer, BuiltLayer};
use dhub_synth::pool::FilePool;
use dhub_synth::SynthConfig;
use std::path::PathBuf;

fn corpus() -> Vec<BuiltLayer> {
    let pool = FilePool::build(&SynthConfig::tiny(3), 20_000);
    (0..32u64).map(|s| build_app_layer(&pool, 0xF00D + s)).collect()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dhub-bench-persist-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Ingests the corpus into a fresh durable store at `dir`, returning the
/// compressed input volume.
fn ingest_corpus(dir: &PathBuf, layers: &[BuiltLayer]) -> u64 {
    let store = PersistentDedupStore::open(dir, Publisher::new()).unwrap();
    let mut scratch = Scratch::new();
    let mut bytes = 0u64;
    for l in layers {
        let (_profile, ingest) =
            dhub_dedupstore::analyze_and_ingest_persistent(&store, l.digest, &l.blob, &mut scratch)
                .unwrap();
        ingest.unwrap();
        bytes += l.blob.len() as u64;
    }
    store.checkpoint().unwrap();
    bytes
}

/// Durable ingest (analyze + fsync'd object/recipe publishes) and the
/// cold reopen that replays it all back, in compressed MiB/s.
fn bench_store_lifecycle(c: &mut Criterion) {
    let layers = corpus();
    let mut g = c.benchmark_group("persist");
    g.sample_size(10);

    let ingest_dir = bench_dir("ingest");
    g.throughput(Throughput::Bytes(layers.iter().map(|l| l.blob.len() as u64).sum()));
    g.bench_function("bench_durable_ingest_32_layers", |b| {
        b.iter(|| {
            std::fs::remove_dir_all(&ingest_dir).ok();
            std::hint::black_box(ingest_corpus(&ingest_dir, &layers))
        })
    });
    std::fs::remove_dir_all(&ingest_dir).ok();

    // Cold reopen: replay every recipe, digest-verify every object.
    let reopen_dir = bench_dir("reopen");
    let bytes = ingest_corpus(&reopen_dir, &layers);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("bench_cold_reopen_32_layers", |b| {
        b.iter(|| {
            let store = PersistentDedupStore::open(&reopen_dir, Publisher::new()).unwrap();
            std::hint::black_box(store.mem().stats().layers)
        })
    });
    std::fs::remove_dir_all(&reopen_dir).ok();
    g.finish();
}

/// A files-style table shaped like a small study's: 100k rows of
/// (path, kind, size), saved and loaded through the crash-safe publish
/// path, then scanned with predicate pushdown.
fn files_table(rows: usize) -> Table {
    let schema = Schema::new(&[("path", ColType::Str), ("kind", ColType::Str), ("size", ColType::U64)]);
    let mut t = Table::new(schema);
    let kinds = ["elf", "source", "doc", "archive", "image"];
    for i in 0..rows {
        t.push_row(vec![
            Value::Str(format!("usr/lib/pkg-{}/file-{i}", i % 97)),
            Value::Str(kinds[i % kinds.len()].to_string()),
            Value::U64((i as u64 * 2654435761) % 1_000_000),
        ])
        .unwrap();
    }
    t
}

fn bench_table_queries(c: &mut Criterion) {
    const ROWS: usize = 100_000;
    let table = files_table(ROWS);
    let dir = bench_dir("tables");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("files.tbl");
    let mut g = c.benchmark_group("persist");
    g.throughput(Throughput::Elements(ROWS as u64));

    g.sample_size(10);
    g.bench_function("bench_table_save_100k_rows", |b| {
        b.iter(|| {
            table.save(&path, &Publisher::new()).unwrap();
        })
    });
    g.bench_function("bench_table_load_100k_rows", |b| {
        b.iter(|| {
            let t = Table::load(&path).unwrap();
            std::hint::black_box(t.len())
        })
    });

    // Warm queries: the table stays in memory, `dhub query`-style scans.
    g.sample_size(20);
    g.bench_function("bench_scan_pushdown_streq_100k", |b| {
        b.iter(|| {
            let rows = table
                .scan(&[Predicate::StrEq("kind".into(), "elf".into())])
                .unwrap();
            std::hint::black_box(rows.len())
        })
    });
    g.bench_function("bench_scan_pushdown_range_100k", |b| {
        b.iter(|| {
            let rows = table
                .scan(&[
                    Predicate::U64Range("size".into(), 250_000, 750_000),
                    Predicate::StrPrefix("path".into(), "usr/lib/pkg-1".into()),
                ])
                .unwrap();
            std::hint::black_box(rows.len())
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(lifecycle, bench_store_lifecycle);
criterion_group!(tables, bench_table_queries);
criterion_main!(lifecycle, tables);
