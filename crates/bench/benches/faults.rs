//! Benchmarks for fault injection and retry overhead (BENCH_faults.json):
//! end-to-end download throughput with faults off vs a 5 % uniform fault
//! rate (microsecond-scale retry delays), plus the cost of the pure fault
//! decision and of computing a full jittered retry schedule.

use dhub_bench::{criterion_group, criterion_main, Criterion, Throughput};
use dhub_downloader::download_all_with;
use dhub_faults::{
    FaultConfig, FaultInjector, FaultOp, FaultPlan, RetryPolicy, ALL_FAULT_KINDS,
};
use dhub_registry::NetworkModel;
use dhub_synth::{generate_hub, SynthConfig, SyntheticHub};
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;

fn hub() -> SyntheticHub {
    generate_hub(&SynthConfig::tiny(42).with_repos(40))
}

/// The downloader's end-to-end throughput, faults off vs 5 % injected.
/// Retry sleeps use the microsecond-scale test schedule so the bench
/// measures pipeline overhead, not configured wall-clock waits.
fn bench_download_fault_rates(c: &mut Criterion) {
    let hub = hub();
    let repos = hub.registry.repo_names();
    let clean = download_all_with(
        &hub.registry,
        &repos,
        THREADS,
        &NetworkModel::datacenter(),
        &RetryPolicy::none(),
    );
    let mut g = c.benchmark_group("faults");
    g.throughput(Throughput::Bytes(clean.report.bytes_fetched));
    g.sample_size(10);

    for (id, rate) in [("bench_download_fault_rate_0", 0.0), ("bench_download_fault_rate_5pct", 0.05)] {
        let hub = self::hub();
        let repos = hub.registry.repo_names();
        if rate > 0.0 {
            let cfg = FaultConfig::uniform(7, rate).with_slow_link(Duration::from_micros(50));
            hub.registry.set_fault_injector(Some(Arc::new(FaultInjector::new(cfg))));
        }
        let policy = RetryPolicy::fast(16).with_seed(7);
        g.bench_function(id, |b| {
            b.iter(|| {
                let res = download_all_with(
                    &hub.registry,
                    &repos,
                    THREADS,
                    &NetworkModel::datacenter(),
                    &policy,
                );
                assert_eq!(res.report.gave_up, 0, "bench policy must never give up");
                std::hint::black_box(res.report.bytes_fetched)
            })
        });
    }
    g.finish();
}

/// The pure fault decision: one seeded draw per (op, key, attempt).
fn bench_fault_decision(c: &mut Criterion) {
    const N: u64 = 10_000;
    let plan = FaultPlan::new(FaultConfig::uniform(7, 0.05));
    let mut g = c.benchmark_group("faults");
    g.throughput(Throughput::Elements(N));
    g.bench_function("bench_fault_decide_10k", |b| {
        b.iter(|| {
            let mut fired = 0u64;
            for key in 0..N {
                if plan.decide(FaultOp::Blob, key, 0, &ALL_FAULT_KINDS).is_some() {
                    fired += 1;
                }
            }
            std::hint::black_box(fired)
        })
    });
    g.finish();
}

/// Computing a full 8-step jittered, monotone-clamped retry schedule.
fn bench_retry_schedule(c: &mut Criterion) {
    const N: u64 = 1_000;
    let policy = RetryPolicy::new(8).with_seed(7);
    let mut g = c.benchmark_group("faults");
    g.throughput(Throughput::Elements(N));
    g.bench_function("bench_retry_schedule_8step_1k", |b| {
        b.iter(|| {
            let mut total = Duration::ZERO;
            for key in 0..N {
                total += policy.schedule(key).iter().sum::<Duration>();
            }
            std::hint::black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_download_fault_rates, bench_fault_decision, bench_retry_schedule);
criterion_main!(benches);
