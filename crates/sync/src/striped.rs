//! Cache-padded lock striping — the substrate under the dedup counting
//! index (`dhub-par::ShardedMap`).
//!
//! A single mutex serializes every update; striping the key space over
//! `2^k` independently locked slots lets updates proceed in parallel with
//! conflicts only on same-stripe keys. Each stripe is padded to its own
//! cache line so two cores hammering adjacent stripes don't false-share.

use crate::lock::Mutex;

/// Pads and aligns a value to a 64-byte cache line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in padding.
    pub fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// `2^k` cache-padded mutex-protected slots selected by hash.
pub struct Striped<T> {
    stripes: Vec<CachePadded<Mutex<T>>>,
    mask: u64,
}

impl<T> Striped<T> {
    /// Creates `stripes` slots (rounded up to a power of two, at least
    /// one), each initialized with `init()`.
    pub fn new(stripes: usize, init: impl Fn() -> T) -> Striped<T> {
        let n = stripes.max(1).next_power_of_two();
        Striped {
            stripes: (0..n).map(|_| CachePadded::new(Mutex::new(init()))).collect(),
            mask: n as u64 - 1,
        }
    }

    /// The stripe owning `hash`. Selection uses the high bits so a
    /// hash-map built inside a stripe (which buckets by low bits) stays
    /// decorrelated from stripe choice.
    #[inline]
    pub fn stripe(&self, hash: u64) -> &Mutex<T> {
        &self.stripes[((hash >> 48) & self.mask) as usize]
    }

    /// Direct access to stripe `i` (for whole-structure sweeps).
    pub fn get(&self, i: usize) -> &Mutex<T> {
        &self.stripes[i]
    }

    /// Number of stripes (a power of two).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Iterates over every stripe's lock in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Mutex<T>> {
        self.stripes.iter().map(|s| &s.value)
    }

    /// Consumes the striping, yielding every slot's value in index order.
    pub fn into_values(self) -> Vec<T> {
        self.stripes.into_iter().map(|s| s.into_inner().into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_power_of_two() {
        assert_eq!(Striped::new(5, || 0u8).stripe_count(), 8);
        assert_eq!(Striped::new(0, || 0u8).stripe_count(), 1);
        assert_eq!(Striped::new(16, || 0u8).stripe_count(), 16);
    }

    #[test]
    fn high_bits_select_stripe() {
        let s = Striped::new(4, || 0u32);
        // Hashes differing only in low bits land on the same stripe …
        assert!(std::ptr::eq(s.stripe(0x0001), s.stripe(0x0002)));
        // … while high-bit changes move stripes.
        assert!(!std::ptr::eq(s.stripe(0u64), s.stripe(1u64 << 48)));
    }

    #[test]
    fn concurrent_counting_sums_exactly() {
        let s = Striped::new(8, || 0u64);
        crate::crew::work_crew(8, |_| {
            for h in 0..10_000u64 {
                *s.stripe(h << 40).lock() += 1;
            }
        });
        let total: u64 = s.into_values().into_iter().sum();
        assert_eq!(total, 80_000);
    }

    #[test]
    fn cache_padding_aligns() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        let v: Vec<CachePadded<u8>> = (0..2).map(CachePadded::new).collect();
        let a = &*v[0] as *const u8 as usize;
        let b = &*v[1] as *const u8 as usize;
        assert!(b - a >= 64, "adjacent stripes must not share a line");
    }
}
