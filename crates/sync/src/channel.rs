//! Bounded MPMC channel over a Mutex+Condvar ring buffer.
//!
//! Semantics match what the pipeline layer needs (the conventions of the
//! well-known external channel crates, so swapping one back in is an
//! import change):
//!
//! * `bounded(cap)` — [`Sender::send`] blocks while the ring is full, so a
//!   fast producer cannot buffer an unbounded amount of layer data (at
//!   paper scale that would be tens of terabytes).
//! * close/drain — dropping the last [`Sender`] closes the channel;
//!   receivers drain whatever is buffered and then get [`RecvError`].
//!   Dropping the last [`Receiver`] makes further sends fail fast with the
//!   rejected value, which is how downstream hang-up stops upstream
//!   workers.
//! * MPMC — both ends are `Clone`; every worker of a stage shares one
//!   receiver.
//!
//! Waiters spin briefly ([`crate::Backoff`]) before parking on a condvar:
//! the uncontended fast path never touches the futex, while a genuinely
//! full or empty channel parks instead of burning a core.

use crate::backoff::Backoff;
use crate::lock::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// The channel was closed (all receivers gone); the value comes back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

/// The channel is closed (all senders gone) and fully drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on a closed and drained channel")
    }
}

/// Outcome of a non-blocking send attempt.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The ring is at capacity right now.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Outcome of a non-blocking receive attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now, but senders remain.
    Empty,
    /// All senders are gone and the buffer is drained.
    Disconnected,
}

/// Shared channel state: the ring plus endpoint refcounts.
struct State<T> {
    ring: VecDeque<T>,
    /// Logical capacity; `usize::MAX` marks an unbounded channel.
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Receivers park here; signalled on push and on channel close.
    not_empty: Condvar,
    /// Bounded senders park here; signalled on pop and on receiver drop.
    not_full: Condvar,
}

/// Creates a bounded MPMC channel (capacity is clamped to at least one).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let cap = cap.max(1);
    new_chan(cap, VecDeque::with_capacity(cap))
}

/// Creates an unbounded MPMC channel; sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_chan(usize::MAX, VecDeque::new())
}

fn new_chan<T>(cap: usize, ring: VecDeque<T>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State { ring, cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Producing half of a channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Pushes a value, blocking while the ring is full. Fails (returning
    /// the value) once every receiver is gone.
    pub fn send(&self, mut value: T) -> Result<(), SendError<T>> {
        // Spin-then-park: retry the fast path briefly before committing to
        // a condvar sleep.
        let mut backoff = Backoff::new();
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    if !backoff.snooze() {
                        break;
                    }
                }
            }
        }
        let mut st = self.chan.state.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.ring.len() < st.cap {
                st.ring.push_back(value);
                drop(st);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            st = self.chan.not_full.wait(st);
        }
    }

    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.state.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if st.ring.len() >= st.cap {
            return Err(TrySendError::Full(value));
        }
        st.ring.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.chan.state.lock().ring.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender { chan: self.chan.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake every parked receiver so each observes the close.
            self.chan.not_empty.notify_all();
        }
    }
}

/// Consuming half of a channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Pops the oldest value, blocking while the ring is empty. Fails once
    /// the channel is closed *and* drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(RecvError),
                Err(TryRecvError::Empty) => {
                    if !backoff.snooze() {
                        break;
                    }
                }
            }
        }
        let mut st = self.chan.state.lock();
        loop {
            if let Some(v) = st.ring.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.not_empty.wait(st);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock();
        match st.ring.pop_front() {
            Some(v) => {
                drop(st);
                self.chan.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking receive with an upper bound on the wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.chan.state.lock();
        loop {
            if let Some(v) = st.ring.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TryRecvError::Empty);
            }
            (st, _) = self.chan.not_empty.wait_timeout(st, deadline - now);
        }
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.chan.state.lock().ring.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator: yields until the channel closes and drains.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Receiver { chan: self.chan.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Wake every parked sender so each observes the hang-up.
            self.chan.not_full.notify_all();
        }
    }
}

/// Borrowing blocking iterator over a [`Receiver`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Owning blocking iterator over a [`Receiver`].
pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn drop_sender_closes() {
        let (tx, rx) = bounded(4);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9), "drains before reporting close");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drop_receiver_fails_send() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn try_send_full() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
    }

    #[test]
    fn unbounded_never_blocks() {
        let (tx, rx) = unbounded();
        for i in 0..10_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let all: Vec<i32> = rx.iter().collect();
        assert_eq!(all.len(), 10_000);
        assert_eq!(all[9_999], 9_999);
    }

    #[test]
    fn recv_timeout_empty_then_value() {
        let (tx, rx) = bounded::<u8>(2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
    }
}
