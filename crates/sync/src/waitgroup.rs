//! Clone-to-add, drop-to-done rendezvous.
//!
//! Hand each in-flight unit of work a clone of the group; `wait()` parks
//! until every clone (including the caller's own, which `wait` consumes)
//! has dropped. Useful when jobs are pushed into a long-lived pool and the
//! submitter needs a "this batch is finished" barrier without tearing the
//! pool down.

use crate::lock::{Condvar, Mutex};
use std::sync::Arc;

struct Inner {
    count: Mutex<usize>,
    all_done: Condvar,
}

/// Counts outstanding clones; `wait` blocks until zero.
pub struct WaitGroup {
    inner: Arc<Inner>,
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitGroup {
    /// A group with one outstanding member (the value itself).
    pub fn new() -> WaitGroup {
        WaitGroup { inner: Arc::new(Inner { count: Mutex::new(1), all_done: Condvar::new() }) }
    }

    /// Consumes this member and parks until every other member drops.
    pub fn wait(self) {
        let inner = self.inner.clone();
        drop(self); // release our own membership first
        let mut count = inner.count.lock();
        while *count > 0 {
            count = inner.all_done.wait(count);
        }
    }
}

impl Clone for WaitGroup {
    fn clone(&self) -> Self {
        *self.inner.count.lock() += 1;
        WaitGroup { inner: self.inner.clone() }
    }
}

impl Drop for WaitGroup {
    fn drop(&mut self) {
        let mut count = self.inner.count.lock();
        *count -= 1;
        if *count == 0 {
            drop(count);
            self.inner.all_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn wait_blocks_until_all_drop() {
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let member = wg.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                done.fetch_add(1, Ordering::SeqCst);
                drop(member);
            }));
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 4, "wait returned before members finished");
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wait_with_no_members_returns_immediately() {
        WaitGroup::new().wait();
    }
}
