//! From-scratch concurrency substrate for the workspace.
//!
//! The paper's pipeline is concurrency-shaped end to end: a 30-day parallel
//! crawl/download and sharded counting over 5.3 B file records. Every other
//! crate rents its channels and locks from here rather than from external
//! crates, which keeps the workspace dependency-free (offline-buildable
//! with an empty registry cache) and makes the hot paths ours to tune and
//! bench.
//!
//! Primitives:
//!
//! * [`channel`] — bounded MPMC channel over a Mutex+Condvar ring buffer
//!   (plus an unbounded variant for fire-and-forget job queues). Closing is
//!   implicit: when every [`Sender`] is gone the channel drains then
//!   reports disconnect; when every [`Receiver`] is gone sends fail fast.
//! * [`crew`] — a scoped work-crew on `std::thread::scope`: spawn N
//!   workers, join them all, propagate the first panic.
//! * [`Striped`] — cache-padded lock striping, the substrate under
//!   `dhub-par`'s `ShardedMap` (the dedup counting index).
//! * [`Mutex`]/[`RwLock`] — thin poison-ignoring wrappers over the std
//!   locks with guard-returning `lock()`/`read()`/`write()` (the calling
//!   convention the rest of the workspace already used with its previous
//!   external lock crate).
//! * [`Backoff`] — spin-then-yield helper for short waits ahead of a park.
//! * [`WaitGroup`] — clone-to-add, drop-to-done rendezvous.
//! * [`Semaphore`] — counting semaphore with RAII permits, the admission
//!   control under the registry HTTP accept loop.
//!
//! Design note — why Mutex+Condvar rather than lock-free: the channel
//! carries *layer-sized* work items (manifests, multi-megabyte blobs), so
//! per-op channel overhead is noise next to per-item work; what matters is
//! correct blocking/backpressure and clean shutdown. A Condvar ring gives
//! those semantics in ~200 lines that are easy to prove drain-correct,
//! while the spin-then-park [`Backoff`] recovers the fast uncontended path.
//! `BENCH_sync.json` (recorded on the single-core CI box) measures ~3.8 M
//! send+recv ops/s SPSC at capacity 1024 and ~2.6 M ops/s with 4 producers
//! and 4 consumers sharing a capacity-64 ring — three to four orders of
//! magnitude above what the paper-scale pipeline pushes through a stage
//! boundary, so the lock-based ring is nowhere near the critical path.

pub mod backoff;
pub mod channel;
pub mod crew;
pub mod lock;
pub mod semaphore;
pub mod striped;
pub mod waitgroup;

pub use backoff::{Backoff, DelayBackoff};
pub use channel::{bounded, unbounded, Receiver, RecvError, SendError, Sender, TryRecvError, TrySendError};
pub use crew::work_crew;
pub use lock::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use semaphore::{Semaphore, SemaphorePermit};
pub use striped::{CachePadded, Striped};
pub use waitgroup::WaitGroup;
