//! Counting semaphore over Mutex+Condvar with RAII permits.
//!
//! Built for admission control on the registry HTTP accept loop: the
//! acceptor `try_acquire`s a permit per connection and sheds load (503)
//! when the cap is reached instead of spawning an unbounded thread per
//! socket. Permits release on drop, so a panicking handler still returns
//! its slot.

use crate::lock::{Condvar, Mutex};
use std::sync::Arc;

struct Inner {
    available: Mutex<usize>,
    cv: Condvar,
}

/// A counting semaphore with a fixed number of permits.
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Inner>,
    max: usize,
}

impl Semaphore {
    /// Creates a semaphore with `permits` slots (at least one).
    pub fn new(permits: usize) -> Semaphore {
        let permits = permits.max(1);
        Semaphore {
            inner: Arc::new(Inner { available: Mutex::new(permits), cv: Condvar::new() }),
            max: permits,
        }
    }

    /// The total number of permits (the admission cap).
    pub fn max_permits(&self) -> usize {
        self.max
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        *self.inner.available.lock()
    }

    /// Takes a permit without blocking; `None` when the semaphore is full.
    pub fn try_acquire(&self) -> Option<SemaphorePermit> {
        let mut n = self.inner.available.lock();
        if *n == 0 {
            return None;
        }
        *n -= 1;
        Some(SemaphorePermit { inner: Arc::clone(&self.inner) })
    }

    /// Blocks until a permit is available.
    pub fn acquire(&self) -> SemaphorePermit {
        let mut n = self.inner.available.lock();
        while *n == 0 {
            n = self.inner.cv.wait(n);
        }
        *n -= 1;
        SemaphorePermit { inner: Arc::clone(&self.inner) }
    }
}

/// RAII permit; dropping it returns the slot and wakes one waiter.
pub struct SemaphorePermit {
    inner: Arc<Inner>,
}

impl Drop for SemaphorePermit {
    fn drop(&mut self) {
        let mut n = self.inner.available.lock();
        *n += 1;
        self.inner.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn try_acquire_respects_cap() {
        let s = Semaphore::new(2);
        let a = s.try_acquire().expect("first");
        let _b = s.try_acquire().expect("second");
        assert!(s.try_acquire().is_none(), "cap is 2");
        drop(a);
        assert!(s.try_acquire().is_some(), "released permit is reusable");
    }

    #[test]
    fn acquire_blocks_until_release() {
        let s = Semaphore::new(1);
        let held = s.try_acquire().expect("permit");
        let s2 = s.clone();
        let waiter = std::thread::spawn(move || {
            let _p = s2.acquire();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "acquire must block while held");
        drop(held);
        waiter.join().expect("waiter finishes after release");
    }

    #[test]
    fn zero_permits_rounds_up_to_one() {
        let s = Semaphore::new(0);
        assert_eq!(s.max_permits(), 1);
        assert!(s.try_acquire().is_some());
    }
}
