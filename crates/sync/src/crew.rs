//! Scoped work-crews: spawn N workers, join them all, propagate panics.
//!
//! Built on `std::thread::scope`, so worker closures can borrow from the
//! caller's stack (no `'static` bounds) — the property `dhub-par`'s
//! data-parallel helpers rely on to hand slices to workers without
//! cloning billions of records.

/// Runs `f(worker_index)` on `workers` scoped threads and joins them all.
///
/// If any worker panics, the first panic payload is re-raised on the
/// caller's thread *after* every other worker has been joined, so no
/// borrowed data is ever left referenced by a live thread.
pub fn work_crew<F>(workers: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = workers.max(1);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("dhub-crew-{i}"))
                    .spawn_scoped(scope, move || f(i))
                    .expect("spawn crew worker")
            })
            .collect();
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_workers_run_with_distinct_indices() {
        let seen = AtomicUsize::new(0);
        work_crew(8, |i| {
            seen.fetch_or(1 << i, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 0xFF);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let ran = AtomicUsize::new(0);
        work_crew(0, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn workers_can_borrow_from_stack() {
        let data = vec![1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        work_crew(4, |i| {
            sum.fetch_add(data[i] as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panic_propagates_after_full_join() {
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            work_crew(4, |i| {
                if i == 1 {
                    panic!("worker 1 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let msg = *result.unwrap_err().downcast::<&str>().unwrap();
        assert_eq!(msg, "worker 1 exploded");
        assert_eq!(completed.load(Ordering::Relaxed), 3, "healthy workers finish");
    }
}
