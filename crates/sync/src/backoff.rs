//! Spin-then-park backoff for short waits.
//!
//! Parking a thread costs a syscall both ways; a value that will arrive in
//! a few hundred nanoseconds is cheaper to spin for. [`Backoff`] ramps
//! through exponential busy-spins, then scheduler yields, then tells the
//! caller to park ([`Backoff::snooze`] returns `false`). The channel's
//! send/recv fast paths drive their retry loops with it.

/// Exhaust spins, then yields, then recommends parking.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

/// Past this step each wait doubles no further (2^6 = 64 spin hints).
const SPIN_LIMIT: u32 = 6;
/// Past this step the caller should park instead of yielding again.
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// A fresh backoff at the cheapest step.
    pub fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Rewinds to the cheapest step (call after making progress).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Busy-spins with exponentially increasing length. Never yields; use
    /// in lock-retry loops where the holder runs on another core.
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// One step of waiting: spins while cheap, then yields the scheduler
    /// slot. Returns `false` once the budget is spent and the caller
    /// should park on its condvar instead.
    pub fn snooze(&mut self) -> bool {
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
        } else if self.step <= YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            return false;
        }
        self.step += 1;
        true
    }

    /// True once [`Backoff::snooze`] has told the caller to park.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

/// Capped exponential **delay** schedule for retry loops.
///
/// Where [`Backoff`] answers "how long do I spin before parking" (sub-
/// microsecond waits inside one process), `DelayBackoff` answers "how long
/// do I sleep before retrying a failed network operation": each step
/// doubles the previous delay until a cap, the classic
/// retry-with-exponential-backoff shape registries expect from clients
/// hitting 429/5xx. Jitter is deliberately *not* applied here — callers
/// that need it (e.g. `dhub-faults::RetryPolicy`) derive it
/// deterministically from their own seed so schedules stay replayable.
#[derive(Clone, Copy, Debug)]
pub struct DelayBackoff {
    base: std::time::Duration,
    cap: std::time::Duration,
}

impl DelayBackoff {
    /// Schedule starting at `base` and doubling up to `cap`.
    pub fn new(base: std::time::Duration, cap: std::time::Duration) -> DelayBackoff {
        DelayBackoff { base, cap: cap.max(base) }
    }

    /// The raw (un-jittered) delay before retry attempt `attempt`
    /// (0-based): `min(cap, base << attempt)`, saturating.
    pub fn delay(&self, attempt: u32) -> std::time::Duration {
        let doubled = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.cap);
        doubled.min(self.cap)
    }

    /// The configured cap.
    pub fn cap(&self) -> std::time::Duration {
        self.cap
    }

    /// The configured base delay.
    pub fn base(&self) -> std::time::Duration {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn snooze_eventually_recommends_parking() {
        let mut b = Backoff::new();
        let mut steps = 0;
        while b.snooze() {
            steps += 1;
            assert!(steps < 100, "backoff never completed");
        }
        assert!(b.is_completed());
        assert!(steps >= (YIELD_LIMIT as usize), "should spin + yield first");
    }

    #[test]
    fn reset_restarts_budget() {
        let mut b = Backoff::new();
        while b.snooze() {}
        b.reset();
        assert!(!b.is_completed());
        assert!(b.snooze());
    }

    #[test]
    fn spin_caps_step_growth() {
        let mut b = Backoff::new();
        for _ in 0..1000 {
            b.spin(); // must terminate quickly even after many calls
        }
    }

    #[test]
    fn delay_backoff_doubles_then_caps() {
        let d = DelayBackoff::new(Duration::from_millis(10), Duration::from_millis(80));
        assert_eq!(d.delay(0), Duration::from_millis(10));
        assert_eq!(d.delay(1), Duration::from_millis(20));
        assert_eq!(d.delay(2), Duration::from_millis(40));
        assert_eq!(d.delay(3), Duration::from_millis(80));
        assert_eq!(d.delay(4), Duration::from_millis(80), "capped");
        assert_eq!(d.delay(63), Duration::from_millis(80), "huge attempts saturate");
    }

    #[test]
    fn delay_backoff_cap_never_below_base() {
        let d = DelayBackoff::new(Duration::from_millis(50), Duration::from_millis(1));
        assert_eq!(d.delay(0), Duration::from_millis(50));
        assert_eq!(d.cap(), Duration::from_millis(50));
    }
}
