//! Spin-then-park backoff for short waits.
//!
//! Parking a thread costs a syscall both ways; a value that will arrive in
//! a few hundred nanoseconds is cheaper to spin for. [`Backoff`] ramps
//! through exponential busy-spins, then scheduler yields, then tells the
//! caller to park ([`Backoff::snooze`] returns `false`). The channel's
//! send/recv fast paths drive their retry loops with it.

/// Exhaust spins, then yields, then recommends parking.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

/// Past this step each wait doubles no further (2^6 = 64 spin hints).
const SPIN_LIMIT: u32 = 6;
/// Past this step the caller should park instead of yielding again.
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// A fresh backoff at the cheapest step.
    pub fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Rewinds to the cheapest step (call after making progress).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Busy-spins with exponentially increasing length. Never yields; use
    /// in lock-retry loops where the holder runs on another core.
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// One step of waiting: spins while cheap, then yields the scheduler
    /// slot. Returns `false` once the budget is spent and the caller
    /// should park on its condvar instead.
    pub fn snooze(&mut self) -> bool {
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
        } else if self.step <= YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            return false;
        }
        self.step += 1;
        true
    }

    /// True once [`Backoff::snooze`] has told the caller to park.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snooze_eventually_recommends_parking() {
        let mut b = Backoff::new();
        let mut steps = 0;
        while b.snooze() {
            steps += 1;
            assert!(steps < 100, "backoff never completed");
        }
        assert!(b.is_completed());
        assert!(steps >= (YIELD_LIMIT as usize), "should spin + yield first");
    }

    #[test]
    fn reset_restarts_budget() {
        let mut b = Backoff::new();
        while b.snooze() {}
        b.reset();
        assert!(!b.is_completed());
        assert!(b.snooze());
    }

    #[test]
    fn spin_caps_step_growth() {
        let mut b = Backoff::new();
        for _ in 0..1000 {
            b.spin(); // must terminate quickly even after many calls
        }
    }
}
