//! Poison-ignoring lock wrappers with the guard-returning calling
//! convention the workspace uses everywhere (`lock()`, `read()`, `write()`
//! return guards directly, no `Result`).
//!
//! Poisoning exists so a panic mid-critical-section can be observed by
//! other threads. Our critical sections are short field updates that leave
//! the data structurally valid at every await-free point, and a worker
//! panic already aborts the run via [`crate::crew::work_crew`]'s
//! propagation — so every caller would just `unwrap()` anyway. Recovering
//! the guard from the poison error keeps shutdown paths (Drop impls
//! running during unwind) deadlock- and double-panic-free.

use std::sync;

/// Mutual exclusion lock; `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires the lock only if free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard and parks until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard(self.0.wait(guard.0).unwrap_or_else(|e| e.into_inner()))
    }

    /// Like [`Condvar::wait`] with an upper bound on the park time.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (g, res) = self.0.wait_timeout(guard.0, dur).unwrap_or_else(|e| e.into_inner());
        (MutexGuard(g), res.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic or deadlock
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
