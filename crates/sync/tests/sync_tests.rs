//! Cross-primitive tests for the concurrency substrate: ordering, blocking,
//! wakeup, and panic-propagation semantics the pipeline layer depends on.

use dhub_sync::{bounded, unbounded, work_crew, RecvError, SendError, Striped, WaitGroup};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Single-producer single-consumer order is FIFO across the blocking path
/// (the ring wraps many times at capacity 8).
#[test]
fn channel_fifo_order() {
    let (tx, rx) = bounded(8);
    let producer = std::thread::spawn(move || {
        for i in 0..10_000u64 {
            tx.send(i).unwrap();
        }
    });
    let got: Vec<u64> = rx.iter().collect();
    producer.join().unwrap();
    assert_eq!(got.len(), 10_000);
    assert!(got.windows(2).all(|w| w[0] + 1 == w[1]), "out-of-order delivery");
}

/// A receiver parked on an empty channel must wake with `RecvError` when
/// the last sender drops — the close/drain contract pipeline stages use to
/// terminate.
#[test]
fn close_wakes_blocked_receiver() {
    let (tx, rx) = bounded::<u32>(4);
    let waiter = std::thread::spawn(move || rx.recv());
    // Give the receiver time to park.
    std::thread::sleep(Duration::from_millis(30));
    drop(tx);
    assert_eq!(waiter.join().unwrap(), Err(RecvError));
}

/// A sender parked on a full channel must wake with the rejected value when
/// the last receiver drops (downstream hang-up).
#[test]
fn hangup_wakes_blocked_sender() {
    let (tx, rx) = bounded(1);
    tx.send(1u8).unwrap();
    let sender = std::thread::spawn(move || tx.send(2));
    std::thread::sleep(Duration::from_millis(30));
    drop(rx);
    assert_eq!(sender.join().unwrap(), Err(SendError(2)));
}

/// Bounded capacity holds under MPMC contention: many producers and
/// consumers, every item delivered exactly once, buffer never over depth.
#[test]
fn mpmc_contention_full_empty_blocking() {
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: usize = 5_000;
    let (tx, rx) = bounded(4);
    let received = Arc::new(AtomicUsize::new(0));
    let sum = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                tx.send(p * PER_PRODUCER + i).unwrap();
            }
        }));
    }
    drop(tx);
    for _ in 0..CONSUMERS {
        let rx = rx.clone();
        let received = received.clone();
        let sum = sum.clone();
        handles.push(std::thread::spawn(move || {
            while let Ok(v) = rx.recv() {
                assert!(rx.len() <= 4, "ring exceeded its bound");
                received.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(v, Ordering::Relaxed);
            }
        }));
    }
    drop(rx);
    for h in handles {
        h.join().unwrap();
    }
    let n = PRODUCERS * PER_PRODUCER;
    assert_eq!(received.load(Ordering::Relaxed), n);
    assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "lost or duplicated items");
}

/// A panicking crew worker propagates to the caller, after all healthy
/// workers joined.
#[test]
fn work_crew_panic_propagation() {
    let healthy = AtomicUsize::new(0);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        work_crew(6, |i| {
            if i == 3 {
                panic!("crew worker failure");
            }
            healthy.fetch_add(1, Ordering::SeqCst);
        });
    }))
    .unwrap_err();
    assert_eq!(*err.downcast::<&str>().unwrap(), "crew worker failure");
    assert_eq!(healthy.load(Ordering::SeqCst), 5);
}

/// A striped map built on `Striped` agrees with a sequential `HashMap`
/// under concurrent updates — mirroring `dhub-par`'s sharded-map
/// equivalence test one layer down the stack.
#[test]
fn striped_map_matches_hashmap() {
    fn hash(k: u64) -> u64 {
        // Same mixing idea as the dedup index: multiply-shift into high bits.
        k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
    let keys: Vec<u64> = (0..100_000).map(|i| i % 777).collect();

    let striped: Striped<HashMap<u64, u64>> = Striped::new(16, HashMap::new);
    work_crew(8, |w| {
        for k in keys.iter().skip(w).step_by(8) {
            *striped.stripe(hash(*k)).lock().entry(*k).or_default() += 1;
        }
    });

    let mut reference: HashMap<u64, u64> = HashMap::new();
    for &k in &keys {
        *reference.entry(k).or_default() += 1;
    }

    let mut merged: HashMap<u64, u64> = HashMap::new();
    for shard in striped.into_values() {
        for (k, v) in shard {
            *merged.entry(k).or_default() += v;
        }
    }
    assert_eq!(merged, reference);
}

/// An unbounded channel through a WaitGroup barrier: jobs pushed from many
/// threads are all visible after `wait()` returns.
#[test]
fn waitgroup_flushes_unbounded_queue() {
    let (tx, rx) = unbounded();
    let wg = WaitGroup::new();
    for i in 0..16u64 {
        let tx = tx.clone();
        let member = wg.clone();
        std::thread::spawn(move || {
            tx.send(i).unwrap();
            drop(member);
        });
    }
    wg.wait();
    drop(tx);
    let got: Vec<u64> = rx.iter().collect();
    assert_eq!(got.len(), 16);
    let total: u64 = got.iter().sum();
    assert_eq!(total, 120);
}
