//! In-memory tar archive writer.

use crate::header::{checksum, write_octal, EntryKind, TarEntry, BLOCK_SIZE};

/// ustar magic + version ("ustar\0" + "00").
const USTAR_MAGIC: &[u8; 8] = b"ustar\x0000";

/// Builds a tar archive in memory.
#[derive(Default)]
pub struct Writer {
    out: Vec<u8>,
}

impl Writer {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry (header, long-name record if needed, payload).
    pub fn append(&mut self, entry: &TarEntry) {
        // Paths that fit neither the 100-byte name field nor the ustar
        // name/prefix split get a GNU 'L' long-name record first.
        let (name, prefix) = match split_path(&entry.path) {
            Some(np) => np,
            None => {
                self.append_gnu_longname(&entry.path);
                let truncated: String = entry.path.chars().take(100).collect();
                (truncated, String::new())
            }
        };
        let mut header = [0u8; BLOCK_SIZE];
        header[0..name.len()].copy_from_slice(name.as_bytes());
        write_octal(&mut header[100..108], entry.mode as u64);
        write_octal(&mut header[108..116], entry.uid as u64);
        write_octal(&mut header[116..124], entry.gid as u64);
        write_octal(&mut header[124..136], entry.payload_len() as u64);
        write_octal(&mut header[136..148], entry.mtime);
        let (typeflag, link): (u8, &str) = match &entry.kind {
            EntryKind::File(_) => (b'0', ""),
            EntryKind::Dir => (b'5', ""),
            EntryKind::Symlink(t) => (b'2', t),
            EntryKind::Hardlink(t) => (b'1', t),
        };
        header[156] = typeflag;
        let link_bytes = link.as_bytes();
        let link_len = link_bytes.len().min(100);
        header[157..157 + link_len].copy_from_slice(&link_bytes[..link_len]);
        header[257..265].copy_from_slice(USTAR_MAGIC);
        header[265..265 + 4].copy_from_slice(b"root");
        header[297..297 + 4].copy_from_slice(b"root");
        header[345..345 + prefix.len()].copy_from_slice(prefix.as_bytes());
        let sum = checksum(&header);
        let chk = format!("{:06o}\0 ", sum);
        header[148..156].copy_from_slice(chk.as_bytes());

        self.out.extend_from_slice(&header);
        let data = entry.data();
        self.out.extend_from_slice(data);
        let pad = (BLOCK_SIZE - data.len() % BLOCK_SIZE) % BLOCK_SIZE;
        self.out.extend(std::iter::repeat_n(0u8, pad));
    }

    /// Emits a GNU 'L' record carrying the full path as payload.
    fn append_gnu_longname(&mut self, path: &str) {
        let mut payload = path.as_bytes().to_vec();
        payload.push(0);
        let rec = TarEntry {
            path: "././@LongLink".to_string(),
            kind: EntryKind::File(payload),
            mode: 0,
            uid: 0,
            gid: 0,
            mtime: 0,
        };
        // Write the record with typeflag 'L' by patching the header we just
        // produced through the normal path.
        let start = self.out.len();
        self.append(&rec);
        self.out[start + 156] = b'L';
        // Re-checksum after the patch.
        let mut header = [0u8; BLOCK_SIZE];
        header.copy_from_slice(&self.out[start..start + BLOCK_SIZE]);
        let sum = checksum(&header);
        let chk = format!("{:06o}\0 ", sum);
        self.out[start + 148..start + 156].copy_from_slice(chk.as_bytes());
    }

    /// Bytes written so far (without the terminator).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when no entry has been appended.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Finishes the archive with two zero blocks and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.out.extend(std::iter::repeat_n(0u8, 2 * BLOCK_SIZE));
        self.out
    }
}

/// Splits a path into (name ≤ 100, prefix ≤ 155) per ustar rules, or `None`
/// if it cannot be represented.
fn split_path(path: &str) -> Option<(String, String)> {
    if path.len() <= 100 {
        return Some((path.to_string(), String::new()));
    }
    if path.len() > 255 {
        return None;
    }
    // Find a '/' such that prefix ≤ 155 and the remainder ≤ 100.
    for (i, b) in path.bytes().enumerate().rev() {
        if b == b'/' && i <= 155 && path.len() - i - 1 <= 100 && path.len() - i - 1 > 0 {
            return Some((path[i + 1..].to_string(), path[..i].to_string()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_short_path() {
        assert_eq!(split_path("etc/passwd"), Some(("etc/passwd".into(), String::new())));
    }

    #[test]
    fn split_long_path() {
        let p = format!("{}/tail", "a".repeat(120));
        let (name, prefix) = split_path(&p).unwrap();
        assert_eq!(name, "tail");
        assert_eq!(prefix, "a".repeat(120));
    }

    #[test]
    fn split_unsplittable() {
        // A 200-byte single component cannot use the prefix trick.
        assert_eq!(split_path(&"x".repeat(200)), None);
        assert!(split_path(&"y".repeat(300)).is_none());
    }

    #[test]
    fn header_is_one_block_per_small_file() {
        let mut w = Writer::new();
        w.append(&TarEntry::file("f", vec![]));
        assert_eq!(w.len(), BLOCK_SIZE);
    }
}
