//! Zero-copy tar archive view.
//!
//! [`TarView`] iterates a tar archive held in one in-memory buffer and
//! yields [`EntryView`]s that *borrow* from it: file payloads are slices
//! of the buffer, paths are `Cow`s that only allocate when the on-disk
//! form needs assembly (ustar prefix split). This is the analyzer's hot
//! path — a layer's decompressed tar lives in a reusable scratch buffer
//! and its files are hashed and classified in place, with no per-entry
//! `Vec` materialization. The owned [`Reader`](crate::Reader) is a thin
//! wrapper converting views to [`TarEntry`]s, so the two cannot diverge.

use crate::header::{checksum, parse_octal, EntryKind, TarEntry, TarError, BLOCK_SIZE};
use std::borrow::Cow;

/// Entry kind with payloads borrowed from the archive buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryViewKind<'a> {
    /// Regular file contents (a slice of the archive buffer).
    File(&'a [u8]),
    Dir,
    /// Symlink target.
    Symlink(&'a str),
    /// Hardlink target.
    Hardlink(&'a str),
}

/// One archive entry, borrowing from the archive buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryView<'a> {
    /// Entry path. Borrowed except when assembled from a ustar
    /// name/prefix split.
    pub path: Cow<'a, str>,
    pub kind: EntryViewKind<'a>,
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
    pub mtime: u64,
}

impl<'a> EntryView<'a> {
    /// True for regular files.
    pub fn is_file(&self) -> bool {
        matches!(self.kind, EntryViewKind::File(_))
    }

    /// File contents (empty slice for non-files).
    pub fn data(&self) -> &'a [u8] {
        match self.kind {
            EntryViewKind::File(d) => d,
            _ => &[],
        }
    }

    /// Materializes an owned [`TarEntry`].
    pub fn to_entry(&self) -> TarEntry {
        let kind = match self.kind {
            EntryViewKind::File(d) => EntryKind::File(d.to_vec()),
            EntryViewKind::Dir => EntryKind::Dir,
            EntryViewKind::Symlink(t) => EntryKind::Symlink(t.to_string()),
            EntryViewKind::Hardlink(t) => EntryKind::Hardlink(t.to_string()),
        };
        TarEntry {
            path: self.path.clone().into_owned(),
            kind,
            mode: self.mode,
            uid: self.uid,
            gid: self.gid,
            mtime: self.mtime,
        }
    }
}

/// Iterator over the entries of an in-memory tar archive, zero-copy.
pub struct TarView<'a> {
    data: &'a [u8],
    pos: usize,
    /// Long name captured from a preceding GNU 'L' record (a slice of the
    /// record's payload).
    pending_longname: Option<&'a str>,
    done: bool,
}

impl<'a> TarView<'a> {
    /// Creates a view over archive bytes.
    pub fn new(data: &'a [u8]) -> Self {
        TarView { data, pos: 0, pending_longname: None, done: false }
    }

    fn take_block(&mut self) -> Result<&'a [u8], TarError> {
        if self.pos + BLOCK_SIZE > self.data.len() {
            return Err(TarError::Truncated);
        }
        let b = &self.data[self.pos..self.pos + BLOCK_SIZE];
        self.pos += BLOCK_SIZE;
        Ok(b)
    }

    fn next_entry(&mut self) -> Result<Option<EntryView<'a>>, TarError> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.pos >= self.data.len() {
                // Tolerate archives missing the final zero blocks (some
                // real-world docker layers are truncated like this).
                self.done = true;
                return Ok(None);
            }
            let block = self.take_block()?;
            if block.iter().all(|&b| b == 0) {
                // End marker (first of two zero blocks).
                self.done = true;
                return Ok(None);
            }
            let header: &[u8; BLOCK_SIZE] = block.try_into().expect("block is BLOCK_SIZE");
            let want = parse_octal(&header[148..156])?;
            if checksum(header) as u64 != want {
                return Err(TarError::BadChecksum);
            }
            let size = parse_octal(&header[124..136])? as usize;
            let mode = parse_octal(&header[100..108])? as u32;
            let uid = parse_octal(&header[108..116])? as u32;
            let gid = parse_octal(&header[116..124])? as u32;
            let mtime = parse_octal(&header[136..148])?;
            let typeflag = header[156];

            let payload_blocks = size.div_ceil(BLOCK_SIZE);
            if self.pos + payload_blocks * BLOCK_SIZE > self.data.len() {
                return Err(TarError::Truncated);
            }
            let payload = &self.data[self.pos..self.pos + size];
            self.pos += payload_blocks * BLOCK_SIZE;

            if typeflag == b'L' {
                // GNU long name: payload is the real path (NUL-terminated),
                // borrowed straight out of the record payload.
                let end = payload.iter().position(|&b| b == 0).unwrap_or(payload.len());
                let name = std::str::from_utf8(&payload[..end]).map_err(|_| TarError::BadUtf8)?;
                self.pending_longname = Some(name);
                continue;
            }

            let path: Cow<'a, str> = match self.pending_longname.take() {
                Some(p) => Cow::Borrowed(p),
                None => {
                    let name = c_str(&header[0..100])?;
                    let prefix = c_str(&header[345..500])?;
                    if prefix.is_empty() {
                        Cow::Borrowed(name)
                    } else {
                        Cow::Owned(format!("{prefix}/{name}"))
                    }
                }
            };

            let kind = match typeflag {
                b'0' | 0 | b'7' => EntryViewKind::File(payload),
                b'5' => EntryViewKind::Dir,
                b'2' => EntryViewKind::Symlink(c_str(&header[157..257])?),
                b'1' => EntryViewKind::Hardlink(c_str(&header[157..257])?),
                // PAX metadata records ('x'/'g') carry attributes we do not
                // model; skip them (their payload was already consumed).
                b'x' | b'g' => continue,
                t => return Err(TarError::UnsupportedType(t)),
            };
            return Ok(Some(EntryView { path, kind, mode, uid, gid, mtime }));
        }
    }
}

impl<'a> Iterator for TarView<'a> {
    type Item = Result<EntryView<'a>, TarError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_entry() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// NUL-terminated field as a borrowed str. The borrow has the archive's
/// lifetime, which is what lets paths and link targets stay zero-copy.
fn c_str(field: &[u8]) -> Result<&str, TarError> {
    let end = field.iter().position(|&b| b == 0).unwrap_or(field.len());
    std::str::from_utf8(&field[..end]).map_err(|_| TarError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_archive, write_archive, Writer};

    /// Archive covering every construct the writer can emit: dirs, files
    /// (incl. empty), symlinks, hardlinks, a GNU long name, and a path
    /// long enough for the name field but with deep nesting.
    fn exhaustive_entries() -> Vec<TarEntry> {
        let long = format!("{}/file.bin", "deep/".repeat(60).trim_end_matches('/'));
        vec![
            TarEntry::dir("usr/"),
            TarEntry::dir("usr/bin/"),
            TarEntry::file("usr/bin/bash", b"\x7fELF fake".to_vec()),
            TarEntry::file("empty", Vec::new()),
            TarEntry::symlink("usr/bin/sh", "bash"),
            TarEntry::hardlink("usr/bin/rbash", "usr/bin/bash"),
            TarEntry::file(&long, vec![0xAB; 1234]),
        ]
    }

    #[test]
    fn view_matches_owned_reader() {
        let bytes = write_archive(&exhaustive_entries());
        let owned = read_archive(&bytes).unwrap();
        let viewed: Vec<TarEntry> = TarView::new(&bytes)
            .map(|r| r.map(|e| e.to_entry()))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(viewed, owned);
    }

    #[test]
    fn view_borrows_payloads() {
        let bytes = write_archive(&[TarEntry::file("f", b"borrowed".to_vec())]);
        let entry = TarView::new(&bytes).next().unwrap().unwrap();
        let data = entry.data();
        assert_eq!(data, b"borrowed");
        // The slice must point into the archive buffer itself.
        let range = bytes.as_ptr_range();
        assert!(range.contains(&data.as_ptr()), "payload not borrowed from archive");
        assert!(matches!(entry.path, Cow::Borrowed(_)));
    }

    #[test]
    fn view_matches_reader_on_missing_terminator() {
        let full = write_archive(&exhaustive_entries());
        let trimmed = &full[..full.len() - 2 * BLOCK_SIZE];
        let owned = read_archive(trimmed).unwrap();
        let viewed: Vec<TarEntry> = TarView::new(trimmed)
            .map(|r| r.map(|e| e.to_entry()))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(viewed, owned);
    }

    #[test]
    fn view_stops_after_error_like_reader() {
        let mut bytes = write_archive(&exhaustive_entries());
        bytes[0] ^= 0xff;
        let view_results: Vec<_> = TarView::new(&bytes).collect();
        assert_eq!(view_results.len(), 1);
        assert_eq!(view_results[0].as_ref().unwrap_err(), &TarError::BadChecksum);
    }

    #[test]
    fn longname_is_borrowed() {
        let long = "x".repeat(200);
        let mut w = Writer::new();
        w.append(&TarEntry::file(&long, b"data".to_vec()));
        let bytes = w.finish();
        let entry = TarView::new(&bytes).next().unwrap().unwrap();
        assert_eq!(entry.path, long);
        assert!(
            matches!(entry.path, Cow::Borrowed(_)),
            "GNU longname should borrow from the record payload"
        );
    }
}
