//! Tar entry model and the 512-byte ustar header codec.

/// Tar block size; headers and data are padded to this.
pub const BLOCK_SIZE: usize = 512;

/// Errors raised on malformed archives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TarError {
    /// Archive ended mid-entry.
    Truncated,
    /// Header checksum mismatch.
    BadChecksum,
    /// A numeric field contained non-octal characters.
    BadNumber,
    /// Unsupported type flag.
    UnsupportedType(u8),
    /// A GNU long-name record was not followed by a real entry.
    DanglingLongName,
    /// Entry name is not valid UTF-8 (paths in this study always are).
    BadUtf8,
}

impl std::fmt::Display for TarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TarError::Truncated => f.write_str("truncated tar archive"),
            TarError::BadChecksum => f.write_str("tar header checksum mismatch"),
            TarError::BadNumber => f.write_str("invalid octal field"),
            TarError::UnsupportedType(t) => write!(f, "unsupported tar entry type {:?}", *t as char),
            TarError::DanglingLongName => f.write_str("GNU long-name record without entry"),
            TarError::BadUtf8 => f.write_str("non-UTF-8 path"),
        }
    }
}

impl std::error::Error for TarError {}

/// What an entry is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// Regular file with contents.
    File(Vec<u8>),
    /// Directory.
    Dir,
    /// Symbolic link to `target`.
    Symlink(String),
    /// Hard link to `target` (an earlier path in the same archive).
    Hardlink(String),
}

/// One archive member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TarEntry {
    /// Slash-separated relative path.
    pub path: String,
    /// Payload / link target.
    pub kind: EntryKind,
    /// Unix permission bits.
    pub mode: u32,
    /// Owner uid/gid (container layers are almost always root).
    pub uid: u32,
    pub gid: u32,
    /// Modification time, seconds since the epoch.
    pub mtime: u64,
}

impl TarEntry {
    /// Regular file with default metadata.
    pub fn file(path: &str, data: Vec<u8>) -> TarEntry {
        TarEntry { path: path.to_string(), kind: EntryKind::File(data), mode: 0o644, uid: 0, gid: 0, mtime: 0 }
    }

    /// Directory with default metadata.
    pub fn dir(path: &str) -> TarEntry {
        TarEntry { path: path.to_string(), kind: EntryKind::Dir, mode: 0o755, uid: 0, gid: 0, mtime: 0 }
    }

    /// Symlink with default metadata.
    pub fn symlink(path: &str, target: &str) -> TarEntry {
        TarEntry {
            path: path.to_string(),
            kind: EntryKind::Symlink(target.to_string()),
            mode: 0o777,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }

    /// Hardlink with default metadata.
    pub fn hardlink(path: &str, target: &str) -> TarEntry {
        TarEntry {
            path: path.to_string(),
            kind: EntryKind::Hardlink(target.to_string()),
            mode: 0o644,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }

    /// File contents (empty slice for non-files).
    pub fn data(&self) -> &[u8] {
        match &self.kind {
            EntryKind::File(d) => d,
            _ => &[],
        }
    }

    /// Size of the payload that follows the header.
    pub fn payload_len(&self) -> usize {
        self.data().len()
    }

    /// True if this entry is a regular file.
    pub fn is_file(&self) -> bool {
        matches!(self.kind, EntryKind::File(_))
    }
}

/// Writes an octal numeric field: `width-1` octal digits + NUL.
pub fn write_octal(buf: &mut [u8], value: u64) {
    let width = buf.len();
    let s = format!("{:0>width$o}\0", value, width = width - 1);
    buf.copy_from_slice(s.as_bytes());
}

/// Parses an octal field, tolerating leading spaces and trailing NUL/space.
pub fn parse_octal(field: &[u8]) -> Result<u64, TarError> {
    let mut v: u64 = 0;
    let mut seen = false;
    for &b in field {
        match b {
            b'0'..=b'7' => {
                v = v.checked_mul(8).and_then(|v| v.checked_add((b - b'0') as u64)).ok_or(TarError::BadNumber)?;
                seen = true;
            }
            b' ' if !seen => continue,
            b'\0' | b' ' => break,
            _ => return Err(TarError::BadNumber),
        }
    }
    Ok(v)
}

/// Computes the header checksum: byte sum with the checksum field blanked.
pub fn checksum(header: &[u8; BLOCK_SIZE]) -> u32 {
    let mut sum: u32 = 0;
    for (i, &b) in header.iter().enumerate() {
        sum += if (148..156).contains(&i) { b' ' as u32 } else { b as u32 };
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octal_roundtrip() {
        let mut buf = [0u8; 12];
        for v in [0u64, 1, 0o644, 0o777, 123456, 0o77777777777] {
            write_octal(&mut buf, v);
            assert_eq!(parse_octal(&buf).unwrap(), v);
        }
    }

    #[test]
    fn parse_octal_tolerates_gnu_format() {
        assert_eq!(parse_octal(b"  644 \0").unwrap(), 0o644);
        assert_eq!(parse_octal(b"\0\0\0").unwrap(), 0);
    }

    #[test]
    fn parse_octal_rejects_garbage() {
        assert_eq!(parse_octal(b"12x4"), Err(TarError::BadNumber));
        assert_eq!(parse_octal(b"9"), Err(TarError::BadNumber));
    }

    #[test]
    fn entry_constructors() {
        let f = TarEntry::file("a/b", vec![1, 2]);
        assert!(f.is_file());
        assert_eq!(f.payload_len(), 2);
        let d = TarEntry::dir("a/");
        assert!(!d.is_file());
        assert_eq!(d.data(), b"");
        assert_eq!(d.mode, 0o755);
    }
}
