//! From-scratch ustar tar archives (POSIX.1-1988 with the GNU long-name
//! extension).
//!
//! Docker image layers are tar archives; the synthetic hub writes layer
//! tarballs with [`Writer`] and the analyzer walks them back with
//! [`Reader`]. The format implemented here covers what container layers
//! use: regular files, directories, symlinks, hardlinks, the ustar
//! name/prefix split, and GNU `L`-type long-name records for paths over
//! 255 bytes.

mod header;
mod reader;
mod view;
mod writer;

pub use header::{EntryKind, TarEntry, TarError, BLOCK_SIZE};
pub use reader::Reader;
pub use view::{EntryView, EntryViewKind, TarView};
pub use writer::Writer;

/// Serializes `entries` into a complete tar archive in memory.
pub fn write_archive(entries: &[TarEntry]) -> Vec<u8> {
    let mut w = Writer::new();
    for e in entries {
        w.append(e);
    }
    w.finish()
}

/// Parses a complete tar archive into entries.
pub fn read_archive(data: &[u8]) -> Result<Vec<TarEntry>, TarError> {
    Reader::new(data).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, data: &[u8]) -> TarEntry {
        TarEntry::file(path, data.to_vec())
    }

    #[test]
    fn roundtrip_mixed_entries() {
        let entries = vec![
            TarEntry::dir("usr/"),
            TarEntry::dir("usr/bin/"),
            file("usr/bin/bash", b"\x7fELF fake binary"),
            file("etc/hostname", b"container\n"),
            TarEntry::symlink("usr/bin/sh", "bash"),
            TarEntry::hardlink("usr/bin/rbash", "usr/bin/bash"),
            file("empty", b""),
        ];
        let bytes = write_archive(&entries);
        assert_eq!(bytes.len() % BLOCK_SIZE, 0);
        let back = read_archive(&bytes).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_archive() {
        let bytes = write_archive(&[]);
        assert_eq!(bytes.len(), 2 * BLOCK_SIZE);
        assert!(read_archive(&bytes).unwrap().is_empty());
    }

    #[test]
    fn data_padding_to_block() {
        let bytes = write_archive(&[file("a", &[0x42; 513])]);
        // header + 2 data blocks + 2 terminator blocks
        assert_eq!(bytes.len(), BLOCK_SIZE * 5);
        let back = read_archive(&bytes).unwrap();
        assert_eq!(back[0].data().len(), 513);
    }

    #[test]
    fn long_path_via_prefix_split() {
        let dir = format!("{}/{}/leaf.txt", "segment0".repeat(8), "segment1".repeat(8));
        assert!(dir.len() > 100 && dir.len() < 255);
        let entries = vec![file(&dir, b"deep")];
        let back = read_archive(&write_archive(&entries)).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn very_long_path_via_gnu_longname() {
        let path = format!("{}/file.txt", "d123456789".repeat(40));
        assert!(path.len() > 255);
        let entries = vec![file(&path, b"x")];
        let back = read_archive(&write_archive(&entries)).unwrap();
        assert_eq!(back[0].path, path);
        assert_eq!(back[0].data(), b"x");
    }

    #[test]
    fn interop_with_system_tar() {
        // If tar(1) is available, it must be able to list our archive.
        use std::io::Write as _;
        use std::process::{Command, Stdio};
        if Command::new("tar").arg("--version").output().map(|o| !o.status.success()).unwrap_or(true) {
            eprintln!("tar(1) unavailable; skipping interop test");
            return;
        }
        let entries = vec![
            TarEntry::dir("opt/"),
            file("opt/app.py", b"print('hi')\n"),
            TarEntry::symlink("opt/link", "app.py"),
        ];
        let bytes = write_archive(&entries);
        let mut child = Command::new("tar")
            .args(["-tf", "-"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(&bytes).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "tar -t rejected our archive");
        let listing = String::from_utf8_lossy(&out.stdout);
        assert!(listing.contains("opt/app.py"), "{listing}");
        assert!(listing.contains("opt/link"), "{listing}");
    }
}
