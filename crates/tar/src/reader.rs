//! Tar archive reader (owned entries).
//!
//! All parsing lives in the zero-copy [`TarView`]; this reader is a thin
//! wrapper that materializes each view into an owned [`TarEntry`], so the
//! two iteration paths cannot disagree on format handling.

use crate::header::{TarEntry, TarError};
use crate::view::TarView;

/// Iterator over the entries of an in-memory tar archive.
pub struct Reader<'a> {
    view: TarView<'a>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over archive bytes.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { view: TarView::new(data) }
    }
}

impl<'a> Iterator for Reader<'a> {
    type Item = Result<TarEntry, TarError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.view.next().map(|r| r.map(|e| e.to_entry()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{checksum, BLOCK_SIZE};
    use crate::write_archive;

    #[test]
    fn corrupt_checksum_detected() {
        let mut bytes = write_archive(&[TarEntry::file("f", b"x".to_vec())]);
        bytes[0] ^= 0xff;
        let err = Reader::new(&bytes).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err, TarError::BadChecksum);
    }

    #[test]
    fn truncated_payload_detected() {
        let bytes = write_archive(&[TarEntry::file("f", vec![7; 5000])]);
        let err = Reader::new(&bytes[..BLOCK_SIZE + 512]).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err, TarError::Truncated);
    }

    #[test]
    fn missing_terminator_tolerated() {
        let full = write_archive(&[TarEntry::file("f", b"data".to_vec())]);
        // Strip the two zero blocks.
        let trimmed = &full[..full.len() - 2 * BLOCK_SIZE];
        let entries = Reader::new(trimmed).collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut bytes = write_archive(&[
            TarEntry::file("a", b"1".to_vec()),
            TarEntry::file("b", b"2".to_vec()),
        ]);
        bytes[0] ^= 0xff;
        let results: Vec<_> = Reader::new(&bytes).collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn old_style_type_zero_byte() {
        // Pre-POSIX archives use NUL as the regular-file typeflag.
        let mut bytes = write_archive(&[TarEntry::file("f", b"old".to_vec())]);
        bytes[156] = 0;
        // Fix checksum for the patched byte.
        let mut header = [0u8; BLOCK_SIZE];
        header.copy_from_slice(&bytes[..BLOCK_SIZE]);
        let sum = checksum(&header);
        bytes[148..156].copy_from_slice(format!("{:06o}\0 ", sum).as_bytes());
        let entries = Reader::new(&bytes).collect::<Result<Vec<_>, _>>().unwrap();
        assert!(entries[0].is_file());
        assert_eq!(entries[0].data(), b"old");
    }
}
