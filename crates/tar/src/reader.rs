//! Tar archive reader.

use crate::header::{checksum, parse_octal, EntryKind, TarEntry, TarError, BLOCK_SIZE};

/// Iterator over the entries of an in-memory tar archive.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Long name captured from a preceding GNU 'L' record.
    pending_longname: Option<String>,
    done: bool,
}

impl<'a> Reader<'a> {
    /// Creates a reader over archive bytes.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0, pending_longname: None, done: false }
    }

    fn take_block(&mut self) -> Result<&'a [u8], TarError> {
        if self.pos + BLOCK_SIZE > self.data.len() {
            return Err(TarError::Truncated);
        }
        let b = &self.data[self.pos..self.pos + BLOCK_SIZE];
        self.pos += BLOCK_SIZE;
        Ok(b)
    }

    fn next_entry(&mut self) -> Result<Option<TarEntry>, TarError> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.pos >= self.data.len() {
                // Tolerate archives missing the final zero blocks (some
                // real-world docker layers are truncated like this).
                self.done = true;
                return Ok(None);
            }
            let block = self.take_block()?;
            if block.iter().all(|&b| b == 0) {
                // End marker (first of two zero blocks).
                self.done = true;
                return Ok(None);
            }
            let mut header = [0u8; BLOCK_SIZE];
            header.copy_from_slice(block);
            let want = parse_octal(&header[148..156])?;
            if checksum(&header) as u64 != want {
                return Err(TarError::BadChecksum);
            }
            let size = parse_octal(&header[124..136])? as usize;
            let mode = parse_octal(&header[100..108])? as u32;
            let uid = parse_octal(&header[108..116])? as u32;
            let gid = parse_octal(&header[116..124])? as u32;
            let mtime = parse_octal(&header[136..148])?;
            let typeflag = header[156];

            let payload_blocks = size.div_ceil(BLOCK_SIZE);
            if self.pos + payload_blocks * BLOCK_SIZE > self.data.len() {
                return Err(TarError::Truncated);
            }
            let payload = &self.data[self.pos..self.pos + size];
            self.pos += payload_blocks * BLOCK_SIZE;

            if typeflag == b'L' {
                // GNU long name: payload is the real path (NUL-terminated).
                let end = payload.iter().position(|&b| b == 0).unwrap_or(payload.len());
                let name = std::str::from_utf8(&payload[..end]).map_err(|_| TarError::BadUtf8)?;
                self.pending_longname = Some(name.to_string());
                continue;
            }

            let path = match self.pending_longname.take() {
                Some(p) => p,
                None => {
                    let name = c_string(&header[0..100])?;
                    let prefix = c_string(&header[345..500])?;
                    if prefix.is_empty() {
                        name
                    } else {
                        format!("{prefix}/{name}")
                    }
                }
            };

            let kind = match typeflag {
                b'0' | 0 | b'7' => EntryKind::File(payload.to_vec()),
                b'5' => EntryKind::Dir,
                b'2' => EntryKind::Symlink(c_string(&header[157..257])?),
                b'1' => EntryKind::Hardlink(c_string(&header[157..257])?),
                // PAX metadata records ('x'/'g') carry attributes we do not
                // model; skip them (their payload was already consumed).
                b'x' | b'g' => continue,
                t => return Err(TarError::UnsupportedType(t)),
            };
            return Ok(Some(TarEntry { path, kind, mode, uid, gid, mtime }));
        }
    }
}

impl<'a> Iterator for Reader<'a> {
    type Item = Result<TarEntry, TarError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_entry() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

fn c_string(field: &[u8]) -> Result<String, TarError> {
    let end = field.iter().position(|&b| b == 0).unwrap_or(field.len());
    std::str::from_utf8(&field[..end]).map(|s| s.to_string()).map_err(|_| TarError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write_archive;

    #[test]
    fn corrupt_checksum_detected() {
        let mut bytes = write_archive(&[TarEntry::file("f", b"x".to_vec())]);
        bytes[0] ^= 0xff;
        let err = Reader::new(&bytes).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err, TarError::BadChecksum);
    }

    #[test]
    fn truncated_payload_detected() {
        let bytes = write_archive(&[TarEntry::file("f", vec![7; 5000])]);
        let err = Reader::new(&bytes[..BLOCK_SIZE + 512]).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err, TarError::Truncated);
    }

    #[test]
    fn missing_terminator_tolerated() {
        let full = write_archive(&[TarEntry::file("f", b"data".to_vec())]);
        // Strip the two zero blocks.
        let trimmed = &full[..full.len() - 2 * BLOCK_SIZE];
        let entries = Reader::new(trimmed).collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut bytes = write_archive(&[
            TarEntry::file("a", b"1".to_vec()),
            TarEntry::file("b", b"2".to_vec()),
        ]);
        bytes[0] ^= 0xff;
        let results: Vec<_> = Reader::new(&bytes).collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn old_style_type_zero_byte() {
        // Pre-POSIX archives use NUL as the regular-file typeflag.
        let mut bytes = write_archive(&[TarEntry::file("f", b"old".to_vec())]);
        bytes[156] = 0;
        // Fix checksum for the patched byte.
        let mut header = [0u8; BLOCK_SIZE];
        header.copy_from_slice(&bytes[..BLOCK_SIZE]);
        let sum = checksum(&header);
        bytes[148..156].copy_from_slice(format!("{:06o}\0 ", sum).as_bytes());
        let entries = Reader::new(&bytes).collect::<Result<Vec<_>, _>>().unwrap();
        assert!(entries[0].is_file());
        assert_eq!(entries[0].data(), b"old");
    }
}
