//! Property tests: write→read identity over arbitrary entry sets.

#![cfg(feature = "proptest")]

use dhub_tar::{read_archive, write_archive, EntryKind, TarEntry};
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = TarEntry> {
    let path = "[a-z]{1,12}(/[a-z0-9._-]{1,12}){0,4}";
    let kind = prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048).prop_map(EntryKind::File),
        Just(EntryKind::Dir),
        "[a-z]{1,20}".prop_map(EntryKind::Symlink),
        "[a-z]{1,20}".prop_map(EntryKind::Hardlink),
    ];
    (path, kind, 0u32..0o1000, 0u32..1 << 18, 0u64..1 << 33).prop_map(
        |(path, kind, mode, uid, mtime)| TarEntry { path, kind, mode, uid, gid: uid / 2, mtime },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip(entries in proptest::collection::vec(arb_entry(), 0..20)) {
        let bytes = write_archive(&entries);
        prop_assert_eq!(bytes.len() % 512, 0);
        let back = read_archive(&bytes).unwrap();
        prop_assert_eq!(back, entries);
    }

    #[test]
    fn reader_never_panics(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = read_archive(&data);
    }
}
