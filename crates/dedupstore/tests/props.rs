//! Property tests: any layer our tar/gzip stack can produce survives a
//! round-trip through the dedup store byte-identically.

#![cfg(feature = "proptest")]

use dhub_compress::{gzip_compress, CompressOptions};
use dhub_dedupstore::DedupStore;
use dhub_model::Digest;
use dhub_tar::{write_archive, EntryKind, TarEntry};
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = TarEntry> {
    let path = "[a-z]{1,8}(/[a-z0-9._-]{1,10}){0,3}";
    let kind = prop_oneof![
        4 => proptest::collection::vec(any::<u8>(), 0..1024).prop_map(EntryKind::File),
        1 => Just(EntryKind::Dir),
        1 => "[a-z]{1,12}".prop_map(EntryKind::Symlink),
    ];
    (path, kind, 0u32..0o1000, 0u64..1 << 31).prop_map(|(path, kind, mode, mtime)| TarEntry {
        path,
        kind,
        mode,
        uid: 0,
        gid: 0,
        mtime,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ingest_reconstruct_identity(entries in proptest::collection::vec(arb_entry(), 0..12)) {
        let tar = write_archive(&entries);
        let blob = gzip_compress(&tar, &CompressOptions::fast());
        let digest = Digest::of(&blob);
        let store = DedupStore::new();
        store.ingest_layer(digest, &blob).unwrap();
        prop_assert_eq!(store.reconstruct_tar(&digest).unwrap(), tar);
        let blob2 = store.reconstruct_blob(&digest, &CompressOptions::fast()).unwrap();
        prop_assert_eq!(blob2, blob);
    }

    /// Accounting invariants hold across arbitrary ingest sets.
    #[test]
    fn accounting_invariants(layers in proptest::collection::vec(
        proptest::collection::vec(arb_entry(), 0..6), 1..6)) {
        let store = DedupStore::new();
        for entries in &layers {
            let tar = write_archive(entries);
            let blob = gzip_compress(&tar, &CompressOptions::fast());
            let _ = store.ingest_layer(Digest::of(&blob), &blob); // dup blobs rejected, fine
        }
        let st = store.stats();
        prop_assert!(st.physical_bytes <= st.logical_bytes);
        prop_assert!(st.dedup_factor() >= 1.0);
        prop_assert!(st.unique_objects <= layers.iter().map(|l| l.len()).sum::<usize>());
    }
}
