//! The durable dedup store: the in-memory [`DedupStore`] backed by a
//! crash-safe on-disk layout, so `analyze_and_ingest` output survives the
//! process and can be reopened, resumed, and queried later.
//!
//! On-disk layout under the store root:
//!
//! ```text
//! objects/ab/<hex>        content-addressed file objects (dhub-persist BlobStore)
//! layers/ab/<hex>.json    one recipe envelope per ingested layer
//! manifest.json           checkpointed refcount manifest (cache, not truth)
//! ```
//!
//! **Write ordering** makes every crash recoverable without a journal: a
//! layer commit publishes (1) any new file objects, then (2) the recipe
//! envelope, then (3) updates the in-memory store. Each publish is
//! atomic (temp + fsync + rename + parent fsync), so a crash anywhere
//! leaves either orphan objects with no recipe — garbage, collected by
//! [`PersistentDedupStore::gc`] — or a complete recipe whose objects are
//! all already durable. A recipe can never reference bytes that were not
//! published first.
//!
//! **Reopen** replays the recipe files (sorted by digest, so
//! deterministic) through the same [`DedupStore::commit_parsed`] path a
//! live ingest uses. Every aggregate the store reports is an
//! order-independent sum, so a reloaded store's stats — including the
//! float `dedup_factor()` — are bit-identical to the single-process run
//! that wrote it.
//!
//! The manifest is a checkpoint of derived state (refcounts + stats),
//! fingerprinted against the layer set it summarized. A stale, torn, or
//! missing manifest is simply ignored: recipes are authoritative.

use crate::recipe::LayerRecipe;
use crate::store::{DedupStore, IngestStats, PendingEntry, StoreError};
use dhub_analyzer::{analyze_layer_with, AnalyzeError};
use dhub_digest::{FxHashMap, FxHashSet};
use dhub_json::Json;
use dhub_model::{Digest, LayerProfile};
use dhub_obs::MetricsRegistry;
use dhub_par::Scratch;
use dhub_persist::{fsync_dir, hex_of, BlobStore, GcStats, PersistError, Publisher, RefManifest};
use dhub_persist::manifest::ManifestStats;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors from the persistent store: either a logical store error (same
/// domain as the in-memory store) or a durability-tier failure.
#[derive(Debug)]
pub enum PersistentError {
    Store(StoreError),
    Persist(PersistError),
}

impl std::fmt::Display for PersistentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistentError::Store(e) => write!(f, "{e}"),
            PersistentError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistentError {}

impl From<StoreError> for PersistentError {
    fn from(e: StoreError) -> Self {
        PersistentError::Store(e)
    }
}

impl From<PersistError> for PersistentError {
    fn from(e: PersistError) -> Self {
        PersistentError::Persist(e)
    }
}

/// A [`DedupStore`] whose objects and recipes live on disk.
pub struct PersistentDedupStore {
    mem: DedupStore,
    objects: BlobStore,
    layers_dir: PathBuf,
    manifest_path: PathBuf,
    publisher: Publisher,
}

impl PersistentDedupStore {
    /// Opens (creating if needed) a store rooted at `root` and replays any
    /// recipes already on disk into memory. All durable writes go through
    /// `publisher` (which may carry fault injection and metrics).
    pub fn open(root: impl AsRef<Path>, publisher: Publisher) -> Result<Self, PersistentError> {
        Self::open_obs(root, publisher, None)
    }

    /// [`PersistentDedupStore::open`] with the in-memory store's
    /// `dhub_store_*` metrics (and the blob store's `dhub_persist_*`
    /// metrics) bound to `reg`.
    pub fn open_obs(
        root: impl AsRef<Path>,
        publisher: Publisher,
        reg: Option<&MetricsRegistry>,
    ) -> Result<Self, PersistentError> {
        let root = root.as_ref().to_path_buf();
        let layers_dir = root.join("layers");
        std::fs::create_dir_all(&layers_dir).map_err(PersistError::from)?;
        let mut objects = BlobStore::open(root.join("objects"), publisher.clone())?;
        let mem = match reg {
            Some(reg) => {
                objects = objects.with_metrics(reg);
                DedupStore::with_metrics(reg)
            }
            None => DedupStore::new(),
        };
        let store = PersistentDedupStore {
            mem,
            objects,
            layers_dir,
            manifest_path: root.join("manifest.json"),
            publisher,
        };
        store.replay()?;
        Ok(store)
    }

    /// The in-memory store (stats, reconstruction, recipes — everything
    /// that does not touch disk).
    pub fn mem(&self) -> &DedupStore {
        &self.mem
    }

    /// The underlying object store.
    pub fn objects(&self) -> &BlobStore {
        &self.objects
    }

    fn recipe_path(&self, layer_digest: &Digest) -> PathBuf {
        let hex = hex_of(layer_digest);
        self.layers_dir.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Serializes a recipe envelope: the recipe JSON plus the compressed
    /// blob length (needed to rebuild the conventional-bytes counter) and
    /// a checksum over the recipe text so tampering behind the store's
    /// back is caught on replay.
    fn envelope(recipe: &LayerRecipe, blob_len: u64) -> String {
        let recipe_text = recipe.to_json();
        let mut root = Json::obj();
        root.set("schema", "dhub-persist-recipe-v1");
        root.set("blobLen", blob_len);
        root.set("checksum", Digest::of(recipe_text.as_bytes()).to_docker_string());
        root.set("recipe", dhub_json::parse(&recipe_text).expect("own serialization parses"));
        root.to_string()
    }

    fn parse_envelope(text: &str) -> Option<(LayerRecipe, u64)> {
        let j = dhub_json::parse(text).ok()?;
        if j.get("schema")?.as_str()? != "dhub-persist-recipe-v1" {
            return None;
        }
        let blob_len = j.get("blobLen")?.as_u64()?;
        let recipe_text = j.get("recipe")?.to_string();
        if Digest::parse(j.get("checksum")?.as_str()?)? != Digest::of(recipe_text.as_bytes()) {
            return None;
        }
        Some((LayerRecipe::from_json(&recipe_text)?, blob_len))
    }

    /// Replays every recipe on disk through the normal commit path.
    fn replay(&self) -> Result<(), PersistentError> {
        let mut recipe_files: Vec<PathBuf> = Vec::new();
        for shard in std::fs::read_dir(&self.layers_dir).map_err(PersistError::from)? {
            let shard = shard.map_err(PersistError::from)?;
            if !shard.file_type().map_err(PersistError::from)?.is_dir() {
                continue;
            }
            for f in std::fs::read_dir(shard.path()).map_err(PersistError::from)? {
                let path = f.map_err(PersistError::from)?.path();
                // In-flight temp files are crash debris, not recipes.
                if path.extension().map(|e| e == "json").unwrap_or(false) {
                    recipe_files.push(path);
                }
            }
        }
        recipe_files.sort();
        for path in recipe_files {
            let text = std::fs::read_to_string(&path).map_err(PersistError::from)?;
            let (recipe, blob_len) = Self::parse_envelope(&text)
                .ok_or_else(|| PersistError::Torn(path.clone()))?;
            // Fetch each referenced object once; reads are digest-verified,
            // so torn or flipped bytes surface as Corrupt, never as data.
            let mut contents: FxHashMap<Digest, Vec<u8>> = FxHashMap::default();
            for d in recipe.file_digests() {
                if contents.contains_key(&d) {
                    continue;
                }
                let data = self
                    .objects
                    .get(&d)?
                    .ok_or(PersistentError::Store(StoreError::MissingObject(d)))?;
                contents.insert(d, data);
            }
            let pending: Vec<PendingEntry<'_>> = recipe
                .entries
                .iter()
                .map(|meta| {
                    let file = match &meta.kind {
                        crate::recipe::RecipeEntryKind::File(d) => {
                            Some((*d, contents[d].as_slice()))
                        }
                        _ => None,
                    };
                    PendingEntry { meta: meta.clone(), file }
                })
                .collect();
            self.mem.commit_parsed(recipe.layer_digest, blob_len, pending)?;
        }
        Ok(())
    }

    /// True when a layer with this digest is already ingested (fast,
    /// memory only — disk state mirrors it).
    pub fn contains_layer(&self, layer_digest: &Digest) -> bool {
        self.mem.contains_layer(layer_digest)
    }

    /// Commits a layer from already-parsed entries, durably. Publishes
    /// new objects first, then the recipe envelope, then updates memory —
    /// see the module docs for why this ordering makes crashes safe.
    pub fn commit_parsed(
        &self,
        layer_digest: Digest,
        blob_len: u64,
        pending: Vec<PendingEntry<'_>>,
    ) -> Result<IngestStats, PersistentError> {
        if self.mem.contains_layer(&layer_digest) {
            return Err(StoreError::AlreadyIngested.into());
        }
        // One batched publish for the layer's new objects: a single fanout
        // dir fsync per touched shard instead of one per object.
        let new_objects: Vec<(Digest, &[u8])> = pending
            .iter()
            .filter_map(|p| p.file.as_ref())
            .filter(|(digest, _)| !self.mem.has_object(digest))
            .map(|(digest, data)| (*digest, *data))
            .collect();
        self.objects.put_batch(&new_objects)?;
        let recipe = LayerRecipe {
            layer_digest,
            entries: pending.iter().map(|p| p.meta.clone()).collect(),
        };
        let path = self.recipe_path(&layer_digest);
        let shard = path.parent().expect("recipe path has a shard dir");
        std::fs::create_dir_all(shard).map_err(PersistError::from)?;
        fsync_dir(&self.layers_dir).map_err(PersistError::from)?;
        self.publisher.publish(&path, Self::envelope(&recipe, blob_len).as_bytes())?;
        Ok(self.mem.commit_parsed(layer_digest, blob_len, pending)?)
    }

    /// Ingests a gzip-compressed layer tarball durably (decompress + walk
    /// + hash, then [`PersistentDedupStore::commit_parsed`]).
    pub fn ingest_layer(
        &self,
        layer_digest: Digest,
        blob: &[u8],
    ) -> Result<IngestStats, PersistentError> {
        if self.mem.contains_layer(&layer_digest) {
            return Err(StoreError::AlreadyIngested.into());
        }
        dhub_par::with_scratch(|scratch| {
            let mut pending = Vec::new();
            analyze_layer_with(layer_digest, blob, scratch, |entry, file| {
                pending.push(PendingEntry::from_view(entry, file));
            })
            .map_err(|e| StoreError::BadLayer(e.to_string()))?;
            self.commit_parsed(layer_digest, blob.len() as u64, pending)
        })
    }

    /// Writes the refcount manifest checkpoint.
    pub fn checkpoint(&self) -> Result<(), PersistentError> {
        let stats = self.mem.stats();
        let mut m = RefManifest {
            stats: ManifestStats {
                layers: stats.layers as u64,
                unique_objects: stats.unique_objects as u64,
                physical_bytes: stats.physical_bytes,
                logical_bytes: stats.logical_bytes,
                conventional_bytes: stats.conventional_bytes,
            },
            refcounts: self.mem.object_refcounts(),
            layers: self.mem.layer_digests(),
        };
        m.normalize();
        m.save(&self.manifest_path, &self.publisher)?;
        Ok(())
    }

    /// Whether the on-disk manifest exists, parses, and matches the live
    /// state (fingerprint over the layer set plus the stats snapshot).
    pub fn manifest_is_current(&self) -> bool {
        let Ok(Some(m)) = RefManifest::load(&self.manifest_path) else {
            return false;
        };
        let mut layers = self.mem.layer_digests();
        layers.sort_by_key(hex_of);
        let stats = self.mem.stats();
        m.layers == layers
            && m.stats.layers == stats.layers as u64
            && m.stats.physical_bytes == stats.physical_bytes
            && m.stats.logical_bytes == stats.logical_bytes
            && m.stats.conventional_bytes == stats.conventional_bytes
    }

    /// Garbage-collects objects no recipe references (crash orphans,
    /// deleted layers) and sweeps in-flight temp debris.
    pub fn gc(&self) -> Result<GcStats, PersistentError> {
        let mut live: FxHashSet<Digest> = FxHashSet::default();
        for d in self.mem.layer_digests() {
            if let Some(r) = self.mem.recipe(&d) {
                live.extend(r.file_digests());
            }
        }
        Ok(self.objects.gc(&live)?)
    }

    /// Removes a layer durably: deletes the recipe file, then mirrors the
    /// removal (refcount decrements + GC) in memory and on disk.
    pub fn remove_layer(&self, layer_digest: &Digest) -> Result<u64, PersistentError> {
        let path = self.recipe_path(layer_digest);
        if !self.mem.contains_layer(layer_digest) {
            return Err(StoreError::UnknownLayer.into());
        }
        std::fs::remove_file(&path).map_err(PersistError::from)?;
        let reclaimed = self.mem.remove_layer(layer_digest)?;
        self.gc()?;
        Ok(reclaimed)
    }
}

/// Analyzes one layer and ingests it durably in a single pass — the
/// persistent mirror of [`crate::analyze_and_ingest`]: same outer/inner
/// result split (analysis failure stores nothing; a duplicate layer still
/// yields its profile).
pub fn analyze_and_ingest_persistent(
    store: &PersistentDedupStore,
    digest: Digest,
    blob: &[u8],
    scratch: &mut Scratch,
) -> Result<(LayerProfile, Result<IngestStats, PersistentError>), AnalyzeError> {
    let mut pending = Vec::new();
    let profile = analyze_layer_with(digest, blob, scratch, |entry, file| {
        pending.push(PendingEntry::from_view(entry, file));
    })?;
    let ingest = store.commit_parsed(digest, blob.len() as u64, pending);
    Ok((profile, ingest))
}

/// Outcome of a persistent fused batch run.
pub struct PersistentFusedResult {
    pub analysis: dhub_analyzer::AnalysisResult,
    /// Per-layer ingest outcomes for layers that analyzed cleanly, in
    /// input order.
    pub ingests: Vec<(Digest, Result<IngestStats, PersistentError>)>,
}

/// Analyzes all layers in parallel, ingesting each durably — the
/// persistent mirror of [`crate::analyze_and_ingest_all`].
pub fn analyze_and_ingest_all_persistent(
    layers: &[(Digest, Arc<Vec<u8>>)],
    threads: usize,
    store: &PersistentDedupStore,
    obs: &MetricsRegistry,
) -> PersistentFusedResult {
    let counters = dhub_analyzer::AnalyzeCounters::on(obs);
    let results = dhub_par::par_map(threads, layers, |(digest, blob)| {
        let start = std::time::Instant::now();
        let r = dhub_par::with_scratch(|scratch| {
            let r = analyze_and_ingest_persistent(store, *digest, blob, scratch);
            match &r {
                Ok((p, _)) => counters.record_ok(p, scratch.tar_len()),
                Err(_) => counters.record_err(),
            }
            r
        });
        counters.record_busy(start.elapsed());
        (*digest, r)
    });
    let mut map = FxHashMap::default();
    let mut errors = Vec::new();
    let mut ingests = Vec::new();
    for (digest, r) in results {
        match r {
            Ok((profile, ingest)) => {
                map.insert(digest, profile);
                ingests.push((digest, ingest));
            }
            Err(e) => errors.push((digest, e)),
        }
    }
    PersistentFusedResult {
        analysis: dhub_analyzer::AnalysisResult { layers: map, errors },
        ingests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_compress::{gzip_compress, CompressOptions};
    use dhub_tar::TarEntry;

    fn layer(entries: &[TarEntry]) -> (Digest, Vec<u8>) {
        let tar = dhub_tar::write_archive(entries);
        let blob = gzip_compress(&tar, &CompressOptions::fast());
        (Digest::of(&blob), blob)
    }

    fn file(path: &str, data: &[u8]) -> TarEntry {
        TarEntry::file(path, data.to_vec())
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dhub-pstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_layers() -> Vec<(Digest, Vec<u8>)> {
        let shared = b"the shared library bytes".as_slice();
        vec![
            layer(&[
                TarEntry::dir("usr/"),
                file("usr/lib/libx.so", shared),
                file("etc/one", b"one"),
                TarEntry::symlink("usr/l", "lib"),
            ]),
            layer(&[file("opt/lib/libx.so", shared), file("etc/two", b"two")]),
            layer(&[file("var/empty", b""), TarEntry::hardlink("var/h", "var/empty")]),
        ]
    }

    #[test]
    fn reopened_store_matches_fresh_run_bit_for_bit() {
        let root = tmp_root("reopen");
        let reference = DedupStore::new();
        {
            let store = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
            for (d, b) in &sample_layers() {
                let sp = store.ingest_layer(*d, b).unwrap();
                let sm = reference.ingest_layer(*d, b).unwrap();
                assert_eq!(sp, sm, "persistent ingest must report identical stats");
            }
            store.checkpoint().unwrap();
        }
        let reopened = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        assert_eq!(reopened.mem().stats(), reference.stats());
        assert_eq!(
            reopened.mem().stats().dedup_factor().to_bits(),
            reference.stats().dedup_factor().to_bits(),
            "dedup factor must be bit-identical after reload"
        );
        for (d, _) in &sample_layers() {
            assert_eq!(
                reopened.mem().reconstruct_tar(d).unwrap(),
                reference.reconstruct_tar(d).unwrap(),
                "reloaded recipes must reconstruct byte-identically"
            );
        }
        assert!(reopened.manifest_is_current());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn resume_skips_already_ingested_layers() {
        let root = tmp_root("resume");
        let layers = sample_layers();
        {
            let store = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
            store.ingest_layer(layers[0].0, &layers[0].1).unwrap();
        }
        let store = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        assert!(store.contains_layer(&layers[0].0));
        assert!(matches!(
            store.ingest_layer(layers[0].0, &layers[0].1),
            Err(PersistentError::Store(StoreError::AlreadyIngested))
        ));
        for (d, b) in &layers[1..] {
            store.ingest_layer(*d, b).unwrap();
        }
        assert_eq!(store.mem().stats().layers, 3);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn orphan_objects_from_partial_commit_are_gced() {
        let root = tmp_root("orphan");
        let store = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        let (d, b) = sample_layers()[0].clone();
        store.ingest_layer(d, &b).unwrap();
        // Simulate a crash between object publish and recipe publish:
        // objects on disk, no recipe referencing them.
        let orphan = store.objects().put(b"orphaned by a crash").unwrap();
        let live_before = store.mem().stats().unique_objects;
        let swept = store.gc().unwrap();
        assert_eq!(swept.objects, 1, "exactly the orphan is collected");
        assert!(!store.objects().contains(&orphan));
        // Reopen: referenced objects all still present.
        drop(store);
        let reopened = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        assert_eq!(reopened.mem().stats().unique_objects, live_before);
        assert_eq!(reopened.mem().reconstruct_tar(&d).unwrap().len() % 512, 0);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn faulted_writes_retry_to_a_consistent_store() {
        use dhub_faults::{FaultConfig, FaultInjector, RetryPolicy};
        let root = tmp_root("faulted");
        let injector = Arc::new(FaultInjector::new(FaultConfig::uniform(41, 0.25)));
        let publisher = Publisher::new().with_faults(Some(dhub_persist::WriteFaults {
            injector: injector.clone(),
            policy: RetryPolicy::fast(32),
        }));
        let reference = DedupStore::new();
        {
            let store = PersistentDedupStore::open(&root, publisher).unwrap();
            for (d, b) in &sample_layers() {
                store.ingest_layer(*d, b).unwrap();
                reference.ingest_layer(*d, b).unwrap();
            }
        }
        assert!(injector.stats().total() > 0, "25 % crash rate must fire");
        let reopened = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        assert_eq!(reopened.mem().stats(), reference.stats());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn torn_recipe_fails_replay_loudly() {
        let root = tmp_root("torn");
        let (d, b) = sample_layers()[0].clone();
        {
            let store = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
            store.ingest_layer(d, &b).unwrap();
        }
        // Flip a byte inside the recipe envelope behind the store's back.
        let hex = hex_of(&d);
        let path = root.join("layers").join(&hex[..2]).join(format!("{hex}.json"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = PersistentDedupStore::open(&root, Publisher::new())
            .err()
            .expect("replay of a tampered recipe must fail");
        match err {
            PersistentError::Persist(PersistError::Torn(p)) => assert_eq!(p, path),
            other => panic!("expected torn recipe error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn persistent_fused_matches_memory_fused() {
        let root = tmp_root("fused");
        let layers: Vec<(Digest, Arc<Vec<u8>>)> =
            sample_layers().into_iter().map(|(d, b)| (d, Arc::new(b))).collect();
        let mem_store = DedupStore::new();
        let mem_obs = MetricsRegistry::new();
        let mem_res = crate::analyze_and_ingest_all(&layers, 2, &mem_store, &mem_obs);

        let pstore = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        let pobs = MetricsRegistry::new();
        let pres = analyze_and_ingest_all_persistent(&layers, 2, &pstore, &pobs);

        assert_eq!(pres.analysis.layers, mem_res.analysis.layers);
        assert_eq!(pres.ingests.len(), mem_res.ingests.len());
        assert_eq!(pstore.mem().stats(), mem_store.stats());
        assert_eq!(
            pobs.counter_value("dhub_analyze_files_total"),
            mem_obs.counter_value("dhub_analyze_files_total")
        );

        drop(pstore);
        let reopened = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        assert_eq!(reopened.mem().stats(), mem_store.stats());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn remove_layer_mirrors_on_disk() {
        let root = tmp_root("remove");
        let store = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        let layers = sample_layers();
        for (d, b) in &layers {
            store.ingest_layer(*d, b).unwrap();
        }
        let before_objects = store.objects().list().unwrap().len();
        assert!(before_objects > 0);
        store.remove_layer(&layers[2].0).unwrap();
        assert!(!store.contains_layer(&layers[2].0));
        drop(store);
        let reopened = PersistentDedupStore::open(&root, Publisher::new()).unwrap();
        assert_eq!(reopened.mem().stats().layers, 2);
        assert!(reopened.mem().reconstruct_tar(&layers[0].0).is_ok());
        let _ = std::fs::remove_dir_all(root);
    }
}
