//! Fused analyze + ingest: one decompression, one tar walk, one hash per
//! file, shared between the profiler and the dedup store.
//!
//! The study's store pipeline previously ran each layer through
//! `analyze_layer` (inflate → untar → hash) and then `ingest_layer`
//! (inflate → untar → hash again). [`analyze_and_ingest`] drives the
//! analyzer's entry sink to stage [`PendingEntry`]s while the profile is
//! built, then commits them — the second decompression and the second
//! content hash per file disappear, and the decompressed tar only ever
//! lives in the worker's scratch arena.

use crate::store::{DedupStore, IngestStats, PendingEntry, StoreError};
use dhub_analyzer::{analyze_layer_with, AnalysisResult, AnalyzeCounters, AnalyzeError};
use dhub_digest::FxHashMap;
use dhub_model::{Digest, LayerProfile};
use dhub_obs::MetricsRegistry;
use dhub_par::Scratch;
use std::sync::Arc;
use std::time::Instant;

/// Analyzes one layer and ingests it into `store` in a single pass.
///
/// The outer `Result` is the analysis outcome: an undecodable blob yields
/// `Err` and touches neither the profile nor the store. On success the
/// inner `Result` reports the ingest outcome separately — a layer that is
/// already stored still produces its profile (with
/// [`StoreError::AlreadyIngested`] alongside).
pub fn analyze_and_ingest(
    store: &DedupStore,
    digest: Digest,
    blob: &[u8],
    scratch: &mut Scratch,
) -> Result<(LayerProfile, Result<IngestStats, StoreError>), AnalyzeError> {
    let mut pending = Vec::new();
    let profile = analyze_layer_with(digest, blob, scratch, |entry, file| {
        pending.push(PendingEntry::from_view(entry, file));
    })?;
    let ingest = store.commit_parsed(digest, blob.len() as u64, pending);
    Ok((profile, ingest))
}

/// Outcome of a fused batch run.
pub struct FusedResult {
    /// Profiles and analysis failures, exactly as `analyze_all_obs` would
    /// report them.
    pub analysis: AnalysisResult,
    /// Per-layer ingest outcomes for the layers that analyzed cleanly, in
    /// input order.
    pub ingests: Vec<(Digest, Result<IngestStats, StoreError>)>,
}

/// Analyzes all layers in parallel, ingesting each into `store` as part of
/// the same pass. Records the `dhub_analyze_*` counters into `obs` with
/// the same semantics as `analyze_all_obs` (the store's own `dhub_store_*`
/// metrics fire via `store`'s registry binding, if any).
pub fn analyze_and_ingest_all(
    layers: &[(Digest, Arc<Vec<u8>>)],
    threads: usize,
    store: &DedupStore,
    obs: &MetricsRegistry,
) -> FusedResult {
    let counters = AnalyzeCounters::on(obs);
    let results = dhub_par::par_map(threads, layers, |(digest, blob)| {
        let start = Instant::now();
        let r = dhub_par::with_scratch(|scratch| {
            let r = analyze_and_ingest(store, *digest, blob, scratch);
            match &r {
                Ok((p, _)) => counters.record_ok(p, scratch.tar_len()),
                Err(_) => counters.record_err(),
            }
            r
        });
        counters.record_busy(start.elapsed());
        (*digest, r)
    });
    let mut map = FxHashMap::default();
    let mut errors = Vec::new();
    let mut ingests = Vec::new();
    for (digest, r) in results {
        match r {
            Ok((profile, ingest)) => {
                map.insert(digest, profile);
                ingests.push((digest, ingest));
            }
            Err(e) => errors.push((digest, e)),
        }
    }
    FusedResult { analysis: AnalysisResult { layers: map, errors }, ingests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_compress::{gzip_compress, CompressOptions};
    use dhub_tar::{write_archive, TarEntry};

    fn layer(entries: &[TarEntry]) -> (Digest, Vec<u8>) {
        let tar = write_archive(entries);
        let blob = gzip_compress(&tar, &CompressOptions::fast());
        (Digest::of(&blob), blob)
    }

    fn file(path: &str, data: &[u8]) -> TarEntry {
        TarEntry::file(path, data.to_vec())
    }

    #[test]
    fn fused_matches_analyze_then_ingest() {
        let shared = b"the shared library bytes".as_slice();
        let layers = vec![
            layer(&[TarEntry::dir("usr/"), file("usr/lib/libx.so", shared), file("etc/one", b"one")]),
            layer(&[file("opt/lib/libx.so", shared), TarEntry::symlink("opt/l", "lib")]),
        ];

        let fused_store = DedupStore::new();
        let plain_store = DedupStore::new();
        let mut scratch = Scratch::new();
        for (d, b) in &layers {
            let (profile, ingest) = analyze_and_ingest(&fused_store, *d, b, &mut scratch).unwrap();
            let want_profile = dhub_analyzer::analyze_layer_reference(*d, b).unwrap();
            let want_ingest = plain_store.ingest_layer_reference(*d, b).unwrap();
            assert_eq!(profile, want_profile);
            assert_eq!(ingest.unwrap(), want_ingest);
        }
        assert_eq!(fused_store.stats(), plain_store.stats());
        for (d, _) in &layers {
            assert_eq!(
                fused_store.reconstruct_tar(d).unwrap(),
                plain_store.reconstruct_tar(d).unwrap(),
                "recipes must reconstruct identically"
            );
        }
        let f = fused_store.stats().dedup_factor();
        let p = plain_store.stats().dedup_factor();
        assert_eq!(f.to_bits(), p.to_bits(), "dedup factor must be bit-identical");
    }

    #[test]
    fn bad_blob_reports_analysis_error_and_stores_nothing() {
        let store = DedupStore::new();
        let mut scratch = Scratch::new();
        let err = analyze_and_ingest(&store, Digest::of(b"x"), b"junk", &mut scratch).unwrap_err();
        assert!(matches!(err, AnalyzeError::BadGzip(_)));
        assert_eq!(store.stats().layers, 0);
    }

    #[test]
    fn duplicate_layer_still_profiles() {
        let store = DedupStore::new();
        let mut scratch = Scratch::new();
        let (d, b) = layer(&[file("f", b"data")]);
        let (_, first) = analyze_and_ingest(&store, d, &b, &mut scratch).unwrap();
        first.unwrap();
        let (profile, ingest) = analyze_and_ingest(&store, d, &b, &mut scratch).unwrap();
        assert_eq!(profile.file_count, 1);
        assert_eq!(ingest.unwrap_err(), StoreError::AlreadyIngested);
        assert_eq!(store.stats().layers, 1, "duplicate must not double-count");
    }

    #[test]
    fn batch_counters_match_result() {
        let (d1, b1) = layer(&[file("a", b"one"), file("b", b"two")]);
        let (d2, b2) = layer(&[file("c", b"three")]);
        let bad = (Digest::of(b"bad"), Arc::new(b"junk".to_vec()));
        let layers = vec![(d1, Arc::new(b1)), (d2, Arc::new(b2)), bad];
        let store = DedupStore::new();
        let obs = MetricsRegistry::new();
        let res = analyze_and_ingest_all(&layers, 2, &store, &obs);
        assert_eq!(res.analysis.layers.len(), 2);
        assert_eq!(res.analysis.errors.len(), 1);
        assert_eq!(res.ingests.len(), 2);
        assert!(res.ingests.iter().all(|(_, r)| r.is_ok()));
        assert_eq!(obs.counter_value("dhub_analyze_layers_total"), 2);
        assert_eq!(obs.counter_value("dhub_analyze_files_total"), 3);
        assert_eq!(obs.counter_value("dhub_analyze_errors_total"), 1);
        let cls: u64 = res.analysis.layers.values().map(|p| p.cls).sum();
        assert_eq!(obs.counter_value("dhub_analyze_bytes_total"), cls);
        assert_eq!(store.stats().layers, 2);
    }
}
