//! Layer recipes: everything needed to rebuild a layer except the file
//! contents themselves, which live deduplicated in the object store.

use dhub_json::Json;
use dhub_model::Digest;

/// Non-content entry kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecipeEntryKind {
    /// Regular file; contents found by digest in the object store.
    File(Digest),
    Dir,
    Symlink(String),
    Hardlink(String),
}

/// One tar entry's metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryMeta {
    pub path: String,
    pub kind: RecipeEntryKind,
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
    pub mtime: u64,
}

/// A complete layer recipe: ordered entries plus the digest of the
/// original compressed blob for verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerRecipe {
    /// Digest of the original compressed layer blob.
    pub layer_digest: Digest,
    /// Entries in original archive order.
    pub entries: Vec<EntryMeta>,
}

impl LayerRecipe {
    /// Digests of the file contents this recipe references (with
    /// repetition, in order).
    pub fn file_digests(&self) -> impl Iterator<Item = Digest> + '_ {
        self.entries.iter().filter_map(|e| match &e.kind {
            RecipeEntryKind::File(d) => Some(*d),
            _ => None,
        })
    }

    /// Serializes to JSON (the registry would store this as a small blob).
    pub fn to_json(&self) -> String {
        let mut root = Json::obj();
        root.set("layerDigest", self.layer_digest.to_docker_string());
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut o = Json::obj();
                o.set("path", e.path.as_str())
                    .set("mode", e.mode as u64)
                    .set("uid", e.uid as u64)
                    .set("gid", e.gid as u64)
                    .set("mtime", e.mtime);
                match &e.kind {
                    RecipeEntryKind::File(d) => {
                        o.set("type", "file").set("digest", d.to_docker_string());
                    }
                    RecipeEntryKind::Dir => {
                        o.set("type", "dir");
                    }
                    RecipeEntryKind::Symlink(t) => {
                        o.set("type", "symlink").set("target", t.as_str());
                    }
                    RecipeEntryKind::Hardlink(t) => {
                        o.set("type", "hardlink").set("target", t.as_str());
                    }
                }
                o
            })
            .collect();
        root.set("entries", Json::Arr(entries));
        root.to_string()
    }

    /// Parses a recipe back from JSON.
    pub fn from_json(text: &str) -> Option<LayerRecipe> {
        let j = dhub_json::parse(text).ok()?;
        let layer_digest = Digest::parse(j.get("layerDigest")?.as_str()?)?;
        let entries = j
            .get("entries")?
            .as_arr()?
            .iter()
            .map(|e| {
                let kind = match e.get("type")?.as_str()? {
                    "file" => RecipeEntryKind::File(Digest::parse(e.get("digest")?.as_str()?)?),
                    "dir" => RecipeEntryKind::Dir,
                    "symlink" => RecipeEntryKind::Symlink(e.get("target")?.as_str()?.to_string()),
                    "hardlink" => RecipeEntryKind::Hardlink(e.get("target")?.as_str()?.to_string()),
                    _ => return None,
                };
                Some(EntryMeta {
                    path: e.get("path")?.as_str()?.to_string(),
                    kind,
                    mode: e.get("mode")?.as_u64()? as u32,
                    uid: e.get("uid")?.as_u64()? as u32,
                    gid: e.get("gid")?.as_u64()? as u32,
                    mtime: e.get("mtime")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(LayerRecipe { layer_digest, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayerRecipe {
        LayerRecipe {
            layer_digest: Digest::of(b"blob"),
            entries: vec![
                EntryMeta {
                    path: "usr".into(),
                    kind: RecipeEntryKind::Dir,
                    mode: 0o755,
                    uid: 0,
                    gid: 0,
                    mtime: 0,
                },
                EntryMeta {
                    path: "usr/bin/tool".into(),
                    kind: RecipeEntryKind::File(Digest::of(b"contents")),
                    mode: 0o755,
                    uid: 1000,
                    gid: 1000,
                    mtime: 1_495_000_000,
                },
                EntryMeta {
                    path: "usr/bin/alias".into(),
                    kind: RecipeEntryKind::Symlink("tool".into()),
                    mode: 0o777,
                    uid: 0,
                    gid: 0,
                    mtime: 0,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let text = r.to_json();
        assert_eq!(LayerRecipe::from_json(&text), Some(r));
    }

    #[test]
    fn file_digests_iterates_files_only() {
        let r = sample();
        let digests: Vec<Digest> = r.file_digests().collect();
        assert_eq!(digests, vec![Digest::of(b"contents")]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(LayerRecipe::from_json("{}").is_none());
        assert!(LayerRecipe::from_json("nope").is_none());
        let bad_type = r#"{"layerDigest":"sha256:e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855","entries":[{"path":"x","mode":1,"uid":0,"gid":0,"mtime":0,"type":"socket"}]}"#;
        assert!(LayerRecipe::from_json(bad_type).is_none());
    }

    #[test]
    fn order_preserved() {
        let r = sample();
        let back = LayerRecipe::from_json(&r.to_json()).unwrap();
        assert_eq!(back.entries[0].path, "usr");
        assert_eq!(back.entries[2].path, "usr/bin/alias");
    }
}
