//! File-level deduplicating layer store.
//!
//! The paper concludes that "file-level deduplication can eliminate 96.8 %
//! of the files" and plans to "utilize our deduplication observations to
//! improve storage efficiency for Docker registry" (§VI). This crate is
//! that improvement, built: a registry-side store that ingests gzip layer
//! tarballs, splits them into content-addressed *file objects* shared
//! across all layers, and keeps a per-layer *recipe* (entry list +
//! metadata + file digests) from which the layer can be reconstructed on
//! demand (cf. Slimmer \[16\] and "Carving perfect layers" \[30\], both cited
//! by the paper).
//!
//! * [`recipe`] — the layer recipe model with JSON (de)serialization,
//! * [`store`] — the store itself: ingest, reconstruct, per-file
//!   refcounting, layer deletion with garbage collection, and savings
//!   accounting,
//! * [`fused`] — single-pass analyze + ingest sharing one decompression
//!   and one content hash per file with the profiler,
//! * [`persistent`] — the same store backed by `dhub-persist`'s
//!   crash-safe on-disk layout (objects + recipe envelopes + refcount
//!   manifest), so ingest output survives the process and can be
//!   reopened, resumed, and garbage-collected.

pub mod fused;
pub mod persistent;
pub mod recipe;
pub mod store;

pub use fused::{analyze_and_ingest, analyze_and_ingest_all, FusedResult};
pub use persistent::{
    analyze_and_ingest_all_persistent, analyze_and_ingest_persistent, PersistentDedupStore,
    PersistentError, PersistentFusedResult,
};
pub use recipe::{EntryMeta, LayerRecipe, RecipeEntryKind};
pub use store::{DedupStore, IngestStats, PendingEntry, StoreError, StoreStats};
