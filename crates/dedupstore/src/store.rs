//! The deduplicating store itself.

use crate::recipe::{EntryMeta, LayerRecipe, RecipeEntryKind};
use dhub_compress::{
    gzip_compress, gzip_decompress_into, gzip_decompress_reference, CompressOptions,
};
use dhub_digest::FxHashMap;
use dhub_model::Digest;
use dhub_obs::{Counter, Gauge, MetricsRegistry};
use dhub_tar::{read_archive, EntryKind, EntryView, EntryViewKind, TarEntry, TarView, Writer};
use dhub_sync::RwLock;
use std::sync::Arc;

/// Errors from store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Layer blob failed to decode (gzip or tar).
    BadLayer(String),
    /// No recipe for the requested layer.
    UnknownLayer,
    /// A recipe references a file object that is missing (store corruption).
    MissingObject(Digest),
    /// Layer already ingested.
    AlreadyIngested,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadLayer(e) => write!(f, "undecodable layer: {e}"),
            StoreError::UnknownLayer => f.write_str("unknown layer"),
            StoreError::MissingObject(d) => write!(f, "missing file object {d:?}"),
            StoreError::AlreadyIngested => f.write_str("layer already ingested"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Outcome of ingesting one layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// File entries in the layer.
    pub files: u64,
    /// Files whose content was new to the store.
    pub new_files: u64,
    /// Bytes actually added to the object store.
    pub bytes_added: u64,
    /// Bytes that were already present (saved by dedup).
    pub bytes_deduped: u64,
}

/// Aggregate store statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub layers: usize,
    pub unique_objects: usize,
    /// Physical bytes held in the object store.
    pub physical_bytes: u64,
    /// Logical bytes across all ingested layers (Σ FLS).
    pub logical_bytes: u64,
    /// Compressed bytes the layers would occupy stored conventionally.
    pub conventional_bytes: u64,
}

impl StoreStats {
    /// Logical-to-physical dedup factor (the paper's capacity ratio).
    pub fn dedup_factor(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }
}

/// Reference-counted file object.
struct ObjectEntry {
    data: Arc<Vec<u8>>,
    refs: u64,
}

/// Live `dhub_store_*` metric handles. Default handles are detached (no
/// registry), so an unobserved store pays only relaxed atomic increments.
struct StoreMetrics {
    ingests: Counter,
    reconstructions: Counter,
    gc_objects: Counter,
    gc_reclaimed_bytes: Counter,
    dedup_factor: Gauge,
}

impl Default for StoreMetrics {
    fn default() -> Self {
        StoreMetrics {
            ingests: Counter::detached(),
            reconstructions: Counter::detached(),
            gc_objects: Counter::detached(),
            gc_reclaimed_bytes: Counter::detached(),
            dedup_factor: Gauge::detached(),
        }
    }
}

impl StoreMetrics {
    fn on(reg: &MetricsRegistry) -> Self {
        StoreMetrics {
            ingests: reg.counter("dhub_store_ingests_total"),
            reconstructions: reg.counter("dhub_store_reconstructions_total"),
            gc_objects: reg.counter("dhub_store_gc_objects_total"),
            gc_reclaimed_bytes: reg.counter("dhub_store_gc_reclaimed_bytes_total"),
            dedup_factor: reg.gauge("dhub_store_dedup_factor"),
        }
    }
}

/// One parsed layer entry staged for [`DedupStore::commit_parsed`]:
/// owned recipe metadata plus, for regular files, the content digest and
/// a payload slice still borrowing the decompressed tar. Producing these
/// from an analysis pass lets the store ingest a layer without a second
/// decompression or hash.
pub struct PendingEntry<'a> {
    /// Recipe metadata for this entry (path, kind, mode, owner, mtime).
    pub meta: EntryMeta,
    /// For regular files: content digest + borrowed payload.
    pub file: Option<(Digest, &'a [u8])>,
}

impl<'a> PendingEntry<'a> {
    /// Stages a zero-copy tar entry. `file` may carry an
    /// already-computed `(digest, payload)` pair (from the fused analysis
    /// sink); when absent for a file entry the digest is computed here.
    pub fn from_view(entry: &EntryView<'a>, file: Option<(Digest, &'a [u8])>) -> PendingEntry<'a> {
        let file = match entry.kind {
            EntryViewKind::File(data) => Some(file.unwrap_or_else(|| (Digest::of(data), data))),
            _ => None,
        };
        let kind = match (&entry.kind, &file) {
            (EntryViewKind::File(_), Some((d, _))) => RecipeEntryKind::File(*d),
            (EntryViewKind::Dir, _) => RecipeEntryKind::Dir,
            (EntryViewKind::Symlink(t), _) => RecipeEntryKind::Symlink(t.to_string()),
            (EntryViewKind::Hardlink(t), _) => RecipeEntryKind::Hardlink(t.to_string()),
            (EntryViewKind::File(_), None) => unreachable!("file pair filled in above"),
        };
        PendingEntry {
            meta: EntryMeta {
                path: entry.path.clone().into_owned(),
                kind,
                mode: entry.mode,
                uid: entry.uid,
                gid: entry.gid,
                mtime: entry.mtime,
            },
            file,
        }
    }
}

/// A file-level deduplicating layer store.
///
/// Thread-safe: ingest/reconstruct may run concurrently from the analysis
/// pipeline's workers.
#[derive(Default)]
pub struct DedupStore {
    objects: RwLock<FxHashMap<Digest, ObjectEntry>>,
    recipes: RwLock<FxHashMap<Digest, Arc<LayerRecipe>>>,
    /// Compressed (conventional) size of each ingested layer, so a store
    /// rebuilt from recipes alone can still answer size-distribution
    /// queries without the original blobs.
    layer_cls: RwLock<FxHashMap<Digest, u64>>,
    counters: RwLock<StoreStats>,
    metrics: StoreMetrics,
}

impl DedupStore {
    /// Creates an empty store.
    pub fn new() -> DedupStore {
        DedupStore::default()
    }

    /// An empty store whose operations record into `reg` under
    /// `dhub_store_*` (ingests, reconstructions, GC work) plus the
    /// `dhub_store_dedup_factor` gauge.
    pub fn with_metrics(reg: &MetricsRegistry) -> DedupStore {
        DedupStore { metrics: StoreMetrics::on(reg), ..DedupStore::default() }
    }

    /// True when a layer with this digest is already ingested.
    pub fn contains_layer(&self, layer_digest: &Digest) -> bool {
        self.recipes.read().contains_key(layer_digest)
    }

    /// Ingests a gzip-compressed layer tarball under `layer_digest`.
    ///
    /// Decompresses into the calling thread's scratch arena and walks the
    /// tar zero-copy; file payloads are copied only when they are new to
    /// the object store. Callers that already analyzed the layer should
    /// use [`crate::analyze_and_ingest`] instead, which shares one
    /// decompression and one hash per file with the profiler.
    pub fn ingest_layer(&self, layer_digest: Digest, blob: &[u8]) -> Result<IngestStats, StoreError> {
        if self.contains_layer(&layer_digest) {
            return Err(StoreError::AlreadyIngested);
        }
        dhub_par::with_scratch(|scratch| {
            let buf = scratch.tar_buf();
            gzip_decompress_into(blob, buf).map_err(|e| StoreError::BadLayer(e.to_string()))?;
            let tar: &[u8] = buf;
            let mut pending = Vec::new();
            for entry in TarView::new(tar) {
                let entry = entry.map_err(|e| StoreError::BadLayer(e.to_string()))?;
                pending.push(PendingEntry::from_view(&entry, None));
            }
            self.commit_parsed(layer_digest, blob.len() as u64, pending)
        })
    }

    /// Commits a layer from already-parsed entries (the tail of every
    /// ingest path). `blob_len` is the compressed size, charged to the
    /// conventional-storage counter. Payload bytes are copied into the
    /// object store only for content the store has not seen.
    pub fn commit_parsed(
        &self,
        layer_digest: Digest,
        blob_len: u64,
        pending: Vec<PendingEntry<'_>>,
    ) -> Result<IngestStats, StoreError> {
        if self.contains_layer(&layer_digest) {
            return Err(StoreError::AlreadyIngested);
        }
        let mut stats = IngestStats::default();
        let mut recipe_entries = Vec::with_capacity(pending.len());
        {
            let mut objects = self.objects.write();
            for p in pending {
                if let Some((digest, data)) = p.file {
                    stats.files += 1;
                    match objects.get_mut(&digest) {
                        Some(obj) => {
                            obj.refs += 1;
                            stats.bytes_deduped += data.len() as u64;
                        }
                        None => {
                            stats.new_files += 1;
                            stats.bytes_added += data.len() as u64;
                            objects
                                .insert(digest, ObjectEntry { data: Arc::new(data.to_vec()), refs: 1 });
                        }
                    }
                }
                recipe_entries.push(p.meta);
            }
        }
        let recipe = LayerRecipe { layer_digest, entries: recipe_entries };
        self.recipes.write().insert(layer_digest, Arc::new(recipe));
        self.layer_cls.write().insert(layer_digest, blob_len);

        let mut c = self.counters.write();
        c.layers += 1;
        c.physical_bytes += stats.bytes_added;
        c.logical_bytes += stats.bytes_added + stats.bytes_deduped;
        c.conventional_bytes += blob_len;
        c.unique_objects = self.objects.read().len();
        self.metrics.ingests.inc();
        self.metrics.dedup_factor.set(c.dedup_factor());
        Ok(stats)
    }

    /// Golden-model ingest: the original owned-decompression, owned-entry
    /// implementation. The equivalence tests assert [`ingest_layer`] (and
    /// the fused path) produce identical stats, recipes, and store state;
    /// this baseline stays frozen.
    pub fn ingest_layer_reference(
        &self,
        layer_digest: Digest,
        blob: &[u8],
    ) -> Result<IngestStats, StoreError> {
        if self.recipes.read().contains_key(&layer_digest) {
            return Err(StoreError::AlreadyIngested);
        }
        let tar = gzip_decompress_reference(blob).map_err(|e| StoreError::BadLayer(e.to_string()))?;
        let entries = read_archive(&tar).map_err(|e| StoreError::BadLayer(e.to_string()))?;

        let mut stats = IngestStats::default();
        let mut recipe_entries = Vec::with_capacity(entries.len());
        {
            let mut objects = self.objects.write();
            for entry in entries {
                let kind = match entry.kind {
                    EntryKind::File(data) => {
                        let digest = Digest::of(&data);
                        stats.files += 1;
                        match objects.get_mut(&digest) {
                            Some(obj) => {
                                obj.refs += 1;
                                stats.bytes_deduped += data.len() as u64;
                            }
                            None => {
                                stats.new_files += 1;
                                stats.bytes_added += data.len() as u64;
                                objects.insert(digest, ObjectEntry { data: Arc::new(data), refs: 1 });
                            }
                        }
                        RecipeEntryKind::File(digest)
                    }
                    EntryKind::Dir => RecipeEntryKind::Dir,
                    EntryKind::Symlink(t) => RecipeEntryKind::Symlink(t),
                    EntryKind::Hardlink(t) => RecipeEntryKind::Hardlink(t),
                };
                recipe_entries.push(EntryMeta {
                    path: entry.path,
                    kind,
                    mode: entry.mode,
                    uid: entry.uid,
                    gid: entry.gid,
                    mtime: entry.mtime,
                });
            }
        }
        let recipe = LayerRecipe { layer_digest, entries: recipe_entries };
        self.recipes.write().insert(layer_digest, Arc::new(recipe));
        self.layer_cls.write().insert(layer_digest, blob.len() as u64);

        let mut c = self.counters.write();
        c.layers += 1;
        c.physical_bytes += stats.bytes_added;
        c.logical_bytes += stats.bytes_added + stats.bytes_deduped;
        c.conventional_bytes += blob.len() as u64;
        c.unique_objects = self.objects.read().len();
        self.metrics.ingests.inc();
        self.metrics.dedup_factor.set(c.dedup_factor());
        Ok(stats)
    }

    /// Rebuilds the layer tarball (uncompressed) from its recipe. The
    /// result contains the same entries, metadata, and order as the
    /// original archive.
    pub fn reconstruct_tar(&self, layer_digest: &Digest) -> Result<Vec<u8>, StoreError> {
        let recipe = self.recipes.read().get(layer_digest).cloned().ok_or(StoreError::UnknownLayer)?;
        let objects = self.objects.read();
        let mut w = Writer::new();
        for e in &recipe.entries {
            let kind = match &e.kind {
                RecipeEntryKind::File(d) => {
                    let obj = objects.get(d).ok_or(StoreError::MissingObject(*d))?;
                    EntryKind::File(obj.data.as_ref().clone())
                }
                RecipeEntryKind::Dir => EntryKind::Dir,
                RecipeEntryKind::Symlink(t) => EntryKind::Symlink(t.clone()),
                RecipeEntryKind::Hardlink(t) => EntryKind::Hardlink(t.clone()),
            };
            w.append(&TarEntry {
                path: e.path.clone(),
                kind,
                mode: e.mode,
                uid: e.uid,
                gid: e.gid,
                mtime: e.mtime,
            });
        }
        self.metrics.reconstructions.inc();
        Ok(w.finish())
    }

    /// Rebuilds and re-compresses the layer blob. With the deterministic
    /// gzip writer this is byte-identical to the original for layers our
    /// own tooling produced with the same options.
    pub fn reconstruct_blob(&self, layer_digest: &Digest, opts: &CompressOptions) -> Result<Vec<u8>, StoreError> {
        Ok(gzip_compress(&self.reconstruct_tar(layer_digest)?, opts))
    }

    /// The stored recipe for a layer.
    pub fn recipe(&self, layer_digest: &Digest) -> Option<Arc<LayerRecipe>> {
        self.recipes.read().get(layer_digest).cloned()
    }

    /// True when the object store already holds this content digest (the
    /// persistent tier uses this to skip redundant disk writes).
    pub fn has_object(&self, digest: &Digest) -> bool {
        self.objects.read().contains_key(digest)
    }

    /// The content bytes of one stored object, if present. Recipe walkers
    /// (e.g. `dhub query` answering from a replayed store) pair this with
    /// [`DedupStore::recipe`] to re-derive per-file facts.
    pub fn object_data(&self, digest: &Digest) -> Option<Arc<Vec<u8>>> {
        self.objects.read().get(digest).map(|o| o.data.clone())
    }

    /// Digests of every ingested layer (unordered).
    pub fn layer_digests(&self) -> Vec<Digest> {
        self.recipes.read().keys().copied().collect()
    }

    /// `(layer digest, compressed size)` for every ingested layer, sorted
    /// by digest. Lets a store replayed from recipes alone (no study
    /// checkpoint) answer layer-size distribution queries.
    pub fn layer_sizes(&self) -> Vec<(Digest, u64)> {
        let mut v: Vec<(Digest, u64)> = self.layer_cls.read().iter().map(|(d, c)| (*d, *c)).collect();
        v.sort_by_key(|(d, _)| *d);
        v
    }

    /// `(content digest, reference count)` for every live object
    /// (unordered) — the raw material of a persisted refcount manifest.
    pub fn object_refcounts(&self) -> Vec<(Digest, u64)> {
        self.objects.read().iter().map(|(d, o)| (*d, o.refs)).collect()
    }

    /// Removes a layer: drops its recipe, decrements object refcounts, and
    /// garbage-collects objects that reached zero. Returns reclaimed bytes.
    pub fn remove_layer(&self, layer_digest: &Digest) -> Result<u64, StoreError> {
        let recipe = self.recipes.write().remove(layer_digest).ok_or(StoreError::UnknownLayer)?;
        self.layer_cls.write().remove(layer_digest);
        let mut objects = self.objects.write();
        let mut reclaimed = 0u64;
        let mut logical_removed = 0u64;
        let mut collected = 0u64;
        for d in recipe.file_digests() {
            if let Some(obj) = objects.get_mut(&d) {
                obj.refs -= 1;
                logical_removed += obj.data.len() as u64;
                if obj.refs == 0 {
                    reclaimed += obj.data.len() as u64;
                    collected += 1;
                    objects.remove(&d);
                }
            }
        }
        let mut c = self.counters.write();
        c.layers -= 1;
        c.physical_bytes -= reclaimed;
        c.logical_bytes -= logical_removed;
        c.unique_objects = objects.len();
        self.metrics.gc_objects.add(collected);
        self.metrics.gc_reclaimed_bytes.add(reclaimed);
        self.metrics.dedup_factor.set(c.dedup_factor());
        Ok(reclaimed)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        *self.counters.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(entries: &[TarEntry]) -> (Digest, Vec<u8>) {
        let tar = dhub_tar::write_archive(entries);
        let blob = gzip_compress(&tar, &CompressOptions::fast());
        (Digest::of(&blob), blob)
    }

    fn file(path: &str, data: &[u8]) -> TarEntry {
        TarEntry::file(path, data.to_vec())
    }

    #[test]
    fn ingest_dedups_across_layers() {
        let store = DedupStore::new();
        let shared = b"the shared library bytes".as_slice();
        let (d1, b1) = layer(&[file("usr/lib/libx.so", shared), file("etc/one", b"one")]);
        let (d2, b2) = layer(&[file("opt/lib/libx.so", shared), file("etc/two", b"two")]);

        let s1 = store.ingest_layer(d1, &b1).unwrap();
        assert_eq!(s1.files, 2);
        assert_eq!(s1.new_files, 2);
        assert_eq!(s1.bytes_deduped, 0);

        let s2 = store.ingest_layer(d2, &b2).unwrap();
        assert_eq!(s2.files, 2);
        assert_eq!(s2.new_files, 1, "shared lib must dedup");
        assert_eq!(s2.bytes_deduped, shared.len() as u64);

        let stats = store.stats();
        assert_eq!(stats.layers, 2);
        assert_eq!(stats.unique_objects, 3);
        assert!(stats.dedup_factor() > 1.0);
    }

    #[test]
    fn reconstruction_is_exact() {
        let store = DedupStore::new();
        let entries = vec![
            TarEntry::dir("app"),
            file("app/main.py", b"#!/usr/bin/env python\nprint('hi')\n"),
            TarEntry::symlink("app/link", "main.py"),
            file("app/empty", b""),
        ];
        let tar = dhub_tar::write_archive(&entries);
        let blob = gzip_compress(&tar, &CompressOptions::fast());
        let digest = Digest::of(&blob);
        store.ingest_layer(digest, &blob).unwrap();

        let rebuilt_tar = store.reconstruct_tar(&digest).unwrap();
        assert_eq!(rebuilt_tar, tar, "tar must rebuild byte-identically");
        let rebuilt_blob = store.reconstruct_blob(&digest, &CompressOptions::fast()).unwrap();
        assert_eq!(rebuilt_blob, blob, "blob must rebuild byte-identically");
        assert_eq!(Digest::of(&rebuilt_blob), digest);
    }

    #[test]
    fn duplicate_ingest_rejected() {
        let store = DedupStore::new();
        let (d, b) = layer(&[file("f", b"x")]);
        store.ingest_layer(d, &b).unwrap();
        assert_eq!(store.ingest_layer(d, &b).unwrap_err(), StoreError::AlreadyIngested);
    }

    #[test]
    fn corrupt_layer_rejected() {
        let store = DedupStore::new();
        let err = store.ingest_layer(Digest::of(b"x"), b"not gzip").unwrap_err();
        assert!(matches!(err, StoreError::BadLayer(_)));
        assert_eq!(store.stats().layers, 0);
    }

    #[test]
    fn unknown_layer_errors() {
        let store = DedupStore::new();
        assert_eq!(store.reconstruct_tar(&Digest::of(b"ghost")).unwrap_err(), StoreError::UnknownLayer);
        assert_eq!(store.remove_layer(&Digest::of(b"ghost")).unwrap_err(), StoreError::UnknownLayer);
    }

    #[test]
    fn remove_layer_gc() {
        let store = DedupStore::new();
        let shared = b"shared-content".as_slice();
        let (d1, b1) = layer(&[file("a", shared), file("only1", b"111")]);
        let (d2, b2) = layer(&[file("b", shared)]);
        store.ingest_layer(d1, &b1).unwrap();
        store.ingest_layer(d2, &b2).unwrap();

        // Removing layer 1 reclaims only its exclusive object.
        let reclaimed = store.remove_layer(&d1).unwrap();
        assert_eq!(reclaimed, 3);
        let stats = store.stats();
        assert_eq!(stats.layers, 1);
        assert_eq!(stats.unique_objects, 1);
        // Layer 2 still reconstructs.
        assert!(store.reconstruct_tar(&d2).is_ok());
        // Removing layer 2 reclaims the shared object too.
        let reclaimed = store.remove_layer(&d2).unwrap();
        assert_eq!(reclaimed, shared.len() as u64);
        assert_eq!(store.stats().physical_bytes, 0);
        assert_eq!(store.stats().unique_objects, 0);
    }

    #[test]
    fn metrics_track_store_operations() {
        let reg = MetricsRegistry::new();
        let store = DedupStore::with_metrics(&reg);
        let shared = b"shared-content".as_slice();
        let (d1, b1) = layer(&[file("a", shared), file("only1", b"111")]);
        let (d2, b2) = layer(&[file("b", shared)]);
        store.ingest_layer(d1, &b1).unwrap();
        store.ingest_layer(d2, &b2).unwrap();
        store.reconstruct_tar(&d1).unwrap();
        assert_eq!(reg.counter_value("dhub_store_ingests_total"), 2);
        assert_eq!(reg.counter_value("dhub_store_reconstructions_total"), 1);
        let factor = reg.gauge_value("dhub_store_dedup_factor");
        assert!((factor - store.stats().dedup_factor()).abs() < 1e-12);

        let reclaimed = store.remove_layer(&d1).unwrap();
        assert_eq!(reg.counter_value("dhub_store_gc_objects_total"), 1);
        assert_eq!(reg.counter_value("dhub_store_gc_reclaimed_bytes_total"), reclaimed);
    }

    #[test]
    fn stats_track_conventional_bytes() {
        let store = DedupStore::new();
        let (d, b) = layer(&[file("f", &[7u8; 5000])]);
        store.ingest_layer(d, &b).unwrap();
        assert_eq!(store.stats().conventional_bytes, b.len() as u64);
        assert_eq!(store.stats().logical_bytes, 5000);
    }

    #[test]
    fn zero_copy_ingest_matches_reference() {
        let long = format!("{}/file.bin", "deep/".repeat(60).trim_end_matches('/'));
        let shared = b"shared across layers".as_slice();
        let layers = vec![
            layer(&[
                TarEntry::dir("usr/"),
                file("usr/bin/tool", shared),
                file(&long, &[0xAB; 1234]),
                TarEntry::symlink("usr/bin/t", "tool"),
                TarEntry::hardlink("usr/bin/t2", "usr/bin/tool"),
                file("empty", b""),
            ]),
            layer(&[file("opt/tool", shared)]),
        ];
        let fast = DedupStore::new();
        let golden = DedupStore::new();
        for (d, b) in &layers {
            let sf = fast.ingest_layer(*d, b).unwrap();
            let sg = golden.ingest_layer_reference(*d, b).unwrap();
            assert_eq!(sf, sg);
            assert_eq!(fast.recipe(d).unwrap().entries, golden.recipe(d).unwrap().entries);
        }
        assert_eq!(fast.stats(), golden.stats());
        for (d, _) in &layers {
            assert_eq!(fast.reconstruct_tar(d).unwrap(), golden.reconstruct_tar(d).unwrap());
        }
    }

    #[test]
    fn synthetic_layers_roundtrip_through_store() {
        use dhub_synth::layergen::build_app_layer;
        use dhub_synth::pool::FilePool;
        use dhub_synth::SynthConfig;
        let pool = FilePool::build(&SynthConfig::tiny(3), 20_000);
        let store = DedupStore::new();
        let mut total_dedup = 0u64;
        for seed in 0..24u64 {
            let l = build_app_layer(&pool, 0xDE0 + seed);
            match store.ingest_layer(l.digest, &l.blob) {
                Ok(s) => total_dedup += s.bytes_deduped,
                Err(StoreError::AlreadyIngested) => continue, // seed collision: same blob
                Err(e) => panic!("{e}"),
            }
            // Layers built by our own tooling round-trip to the same blob.
            let rebuilt = store.reconstruct_blob(&l.digest, &CompressOptions::fast()).unwrap();
            assert_eq!(rebuilt, l.blob);
        }
        assert!(total_dedup > 0, "synthetic layers share prototypes");
        assert!(store.stats().dedup_factor() > 1.0);
    }
}
