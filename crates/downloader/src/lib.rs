//! Parallel image downloader (§III-B of the paper).
//!
//! The paper bypassed `docker pull` (which unpacks layers and writes
//! storage-driver snapshots) and talked to the Registry API directly:
//! resolve `latest`, then fetch each referenced layer — and *only unique
//! layers*, skipping blobs already fetched for another image. The same
//! logic runs here over the in-process registry: a worker crew downloads
//! images in parallel, a shared dedup set prevents duplicate layer
//! fetches, and the failure taxonomy (auth vs. missing `latest`) is
//! tallied exactly as the paper reports it.

use dhub_faults::{fault_key, RetryPolicy};
use dhub_model::{Digest, Manifest, RepoName};
use dhub_obs::{DeltaCounter, MetricsRegistry};
use dhub_par::ShardedMap;
use dhub_registry::{ApiError, NetworkModel, Registry};
use dhub_sync::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// One successfully downloaded image.
#[derive(Clone, Debug)]
pub struct DownloadedImage {
    pub repo: RepoName,
    pub manifest_digest: Digest,
    pub manifest: Manifest,
}

/// Aggregate download outcome — the numbers behind the paper's
/// "355,319 images / 1,792,609 unique layers / 111,384 failures (13 % auth,
/// 87 % no latest)".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DownloadReport {
    pub images_downloaded: usize,
    pub unique_layers: usize,
    /// Compressed bytes actually transferred (unique layers only).
    pub bytes_fetched: u64,
    /// Layer fetches skipped because another image already pulled the blob.
    pub layer_fetches_skipped: u64,
    pub failed_auth: usize,
    pub failed_no_latest: usize,
    pub failed_other: usize,
    /// Attempts re-issued after a transient (retryable) failure.
    pub retries: u64,
    /// Operations abandoned after the retry budget ran out.
    pub gave_up: u64,
    /// The subset of `retries` forced by failed digest verification
    /// (truncated or bit-flipped bodies).
    pub corrupt_retries: u64,
    /// Time lost to retry backoff, summed over workers (the deterministic
    /// scheduled delays, so this is identical across worker counts).
    pub backoff_sleep: Duration,
    /// Simulated wall-clock transfer time under the network model, summed
    /// over transfers (i.e. single-connection equivalent).
    pub simulated_transfer: Duration,
}

impl DownloadReport {
    /// Total failed images.
    pub fn failures(&self) -> usize {
        self.failed_auth + self.failed_no_latest + self.failed_other
    }
}

/// Shared retry bookkeeping for one download run (thread-safe; workers
/// bump it concurrently). The counters are `dhub-obs` sharded counters:
/// built with [`RetryCounters::on`] they alias the registry's
/// `dhub_download_*` metrics, so a `/metrics` scrape sees retries live;
/// built with [`RetryCounters::new`] they are detached but identical in
/// behavior. Accessors report the *delta* since construction, so reports
/// derived from them reconcile even on a long-lived shared registry.
pub struct RetryCounters {
    retries: DeltaCounter,
    gave_up: DeltaCounter,
    corrupt_retries: DeltaCounter,
    backoff_ns: DeltaCounter,
}

impl Default for RetryCounters {
    fn default() -> Self {
        RetryCounters::new()
    }
}

impl RetryCounters {
    /// Zeroed counters, not attached to any metrics registry.
    pub fn new() -> RetryCounters {
        RetryCounters {
            retries: DeltaCounter::detached(),
            gave_up: DeltaCounter::detached(),
            corrupt_retries: DeltaCounter::detached(),
            backoff_ns: DeltaCounter::detached(),
        }
    }

    /// Counters aliasing `reg`'s `dhub_download_{retries,gave_up,
    /// corrupt_retries,backoff_ns}_total` metrics.
    pub fn on(reg: &MetricsRegistry) -> RetryCounters {
        RetryCounters {
            retries: DeltaCounter::on(reg, "dhub_download_retries_total"),
            gave_up: DeltaCounter::on(reg, "dhub_download_gave_up_total"),
            corrupt_retries: DeltaCounter::on(reg, "dhub_download_corrupt_retries_total"),
            backoff_ns: DeltaCounter::on(reg, "dhub_download_backoff_ns_total"),
        }
    }

    /// Attempts re-issued after retryable errors.
    pub fn retries(&self) -> u64 {
        self.retries.delta()
    }

    /// Operations abandoned with the budget exhausted.
    pub fn gave_up(&self) -> u64 {
        self.gave_up.delta()
    }

    /// Retries caused by failed digest verification.
    pub fn corrupt_retries(&self) -> u64 {
        self.corrupt_retries.delta()
    }

    /// Total scheduled backoff slept by retry loops using these counters.
    pub fn backoff_sleep(&self) -> Duration {
        Duration::from_nanos(self.backoff_ns.delta())
    }

    /// Folds an HTTP client's retry statistics into these counters (the
    /// client runs its own retry loop and reports totals after the fact).
    pub fn absorb(&self, stats: &dhub_registry::http::RetryStats) {
        self.retries.add(stats.retries);
        self.gave_up.add(stats.gave_up);
        self.corrupt_retries.add(stats.corrupt_retries);
        self.backoff_ns.add(stats.backoff_ns);
    }
}

/// Runs `op` under `policy`: retryable errors back off (jittered, keyed by
/// `key`) and re-issue; terminal errors and exhausted budgets surface.
fn with_retries<T, E>(
    policy: &RetryPolicy,
    key: u64,
    counters: &RetryCounters,
    is_retryable: impl Fn(&E) -> bool,
    is_corrupt: impl Fn(&E) -> bool,
    op: impl Fn() -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_retryable(&e) && attempt < policy.max_retries => {
                if is_corrupt(&e) {
                    counters.corrupt_retries.add(1);
                }
                counters.retries.add(1);
                let slept = policy.sleep(key, attempt);
                counters.backoff_ns.add(slept.as_nanos() as u64);
                attempt += 1;
            }
            Err(e) => {
                if is_retryable(&e) {
                    counters.gave_up.add(1);
                }
                return Err(e);
            }
        }
    }
}

/// A blob-fetch error after verification: either the registry refused, or
/// the bytes kept failing the digest check.
#[derive(Debug)]
pub enum BlobError {
    Api(ApiError),
    DigestMismatch,
}

/// Resolves a manifest under the retry policy, counting what the loop did.
pub fn get_manifest_with_retry(
    registry: &Registry,
    repo: &RepoName,
    tag: &str,
    policy: &RetryPolicy,
    counters: &RetryCounters,
) -> Result<dhub_registry::PullSession, ApiError> {
    let key = fault_key(format!("{}:{tag}", repo.full()).as_bytes());
    with_retries(
        policy,
        key,
        counters,
        ApiError::is_retryable,
        |e| matches!(e, ApiError::CorruptManifest),
        || registry.get_manifest(repo, tag, false),
    )
}

/// Fetches one blob and verifies the bytes hash to `digest` — the content
/// address the manifest promised. A mismatch (bit flip, truncation) is
/// retried like any transient fault, never silently stored.
pub fn get_blob_verified(
    registry: &Registry,
    digest: &Digest,
    policy: &RetryPolicy,
    counters: &RetryCounters,
) -> Result<Arc<Vec<u8>>, BlobError> {
    let key = fault_key(&digest.0);
    with_retries(
        policy,
        key,
        counters,
        |e| match e {
            BlobError::Api(e) => e.is_retryable(),
            BlobError::DigestMismatch => true,
        },
        |e| matches!(e, BlobError::DigestMismatch),
        || {
            let blob = registry.get_blob(digest).map_err(BlobError::Api)?;
            if Digest::of(blob.as_ref()) != *digest {
                return Err(BlobError::DigestMismatch);
            }
            Ok(blob)
        },
    )
}

/// Download result: per-image successes plus fetched unique layer blobs.
pub struct DownloadResult {
    pub images: Vec<DownloadedImage>,
    /// Unique layer blobs, keyed by digest (decompressed later by the
    /// analyzer).
    pub layers: Vec<(Digest, Arc<Vec<u8>>)>,
    pub report: DownloadReport,
}

/// Downloads the `latest` image of every repository in `repos` using
/// `threads` parallel workers, fetching each unique layer once, with the
/// default retry policy.
pub fn download_all(
    registry: &Registry,
    repos: &[RepoName],
    threads: usize,
    net: &NetworkModel,
) -> DownloadResult {
    download_all_with(registry, repos, threads, net, &RetryPolicy::default())
}

/// [`download_all`] with an explicit retry policy ([`RetryPolicy::none`]
/// fails fast — the "classify, don't retry" stance; larger budgets ride
/// out injected faults).
pub fn download_all_with(
    registry: &Registry,
    repos: &[RepoName],
    threads: usize,
    net: &NetworkModel,
    policy: &RetryPolicy,
) -> DownloadResult {
    download_all_obs(registry, repos, threads, net, policy, &MetricsRegistry::new())
}

/// Per-run download counters attached to an obs registry; every field both
/// feeds the live `dhub_download_*` metric and remembers its entry value so
/// the final [`DownloadReport`] is the exact delta this run contributed.
struct DownloadCounters {
    auth: DeltaCounter,
    no_latest: DeltaCounter,
    other: DeltaCounter,
    skipped: DeltaCounter,
    bytes: DeltaCounter,
    sim_nanos: DeltaCounter,
    images_ok: DeltaCounter,
    unique_layers: DeltaCounter,
    retry: RetryCounters,
}

impl DownloadCounters {
    fn on(reg: &MetricsRegistry) -> DownloadCounters {
        DownloadCounters {
            auth: DeltaCounter::on(reg, "dhub_download_failed_auth_total"),
            no_latest: DeltaCounter::on(reg, "dhub_download_failed_no_latest_total"),
            other: DeltaCounter::on(reg, "dhub_download_failed_other_total"),
            skipped: DeltaCounter::on(reg, "dhub_download_layer_fetches_skipped_total"),
            bytes: DeltaCounter::on(reg, "dhub_download_bytes_total"),
            sim_nanos: DeltaCounter::on(reg, "dhub_download_sim_transfer_ns_total"),
            images_ok: DeltaCounter::on(reg, "dhub_download_images_ok_total"),
            unique_layers: DeltaCounter::on(reg, "dhub_download_unique_layers_total"),
            retry: RetryCounters::on(reg),
        }
    }

    fn report(&self) -> DownloadReport {
        DownloadReport {
            images_downloaded: self.images_ok.delta() as usize,
            unique_layers: self.unique_layers.delta() as usize,
            bytes_fetched: self.bytes.delta(),
            layer_fetches_skipped: self.skipped.delta(),
            failed_auth: self.auth.delta() as usize,
            failed_no_latest: self.no_latest.delta() as usize,
            failed_other: self.other.delta() as usize,
            retries: self.retry.retries(),
            gave_up: self.retry.gave_up(),
            corrupt_retries: self.retry.corrupt_retries(),
            backoff_sleep: self.retry.backoff_sleep(),
            simulated_transfer: Duration::from_nanos(self.sim_nanos.delta()),
        }
    }
}

/// [`download_all_with`] recording into `obs`: every tally below lives in
/// the registry's `dhub_download_*` counters (scrapeable mid-run via
/// `/metrics`), and the returned [`DownloadReport`] is *derived from* those
/// counters — the two reconcile exactly by construction.
pub fn download_all_obs(
    registry: &Registry,
    repos: &[RepoName],
    threads: usize,
    net: &NetworkModel,
    policy: &RetryPolicy,
    obs: &MetricsRegistry,
) -> DownloadResult {
    // digest → blob, populated once per unique layer.
    let fetched: ShardedMap<Digest, Option<Arc<Vec<u8>>>> = ShardedMap::new(64);
    let images: Mutex<Vec<DownloadedImage>> = Mutex::new(Vec::with_capacity(repos.len()));
    let dl = DownloadCounters::on(obs);
    // Digests whose fetch was abandoned: their placeholder entries must
    // not masquerade as downloaded layers.
    let failed_digests: Mutex<BTreeSet<Digest>> = Mutex::new(BTreeSet::new());

    dhub_par::par_for_each(threads, repos, |repo| {
        // Spans are roots, not nested: a shared layer's fetch is performed
        // by whichever worker wins the claim race, so nesting fetch spans
        // under the winner's manifest span would make trace ids depend on
        // interleaving. Root spans keyed by repo/digest stay deterministic.
        let resolved = {
            let _span = dhub_obs::span!(obs, "resolve_manifest", repo.full());
            get_manifest_with_retry(registry, repo, "latest", policy, &dl.retry)
        };
        match resolved {
            Err(ApiError::AuthRequired) => {
                dl.auth.add(1);
            }
            Err(ApiError::TagNotFound) => {
                dl.no_latest.add(1);
            }
            Err(_) => {
                dl.other.add(1);
            }
            Ok(sess) => {
                dl.sim_nanos.add(net.transfer_time(1024).as_nanos() as u64);
                for layer in &sess.manifest.layers {
                    // Claim the digest first so exactly one worker fetches it.
                    let mut claimed = false;
                    fetched.update(layer.digest, |slot| {
                        if slot.is_none() {
                            claimed = true;
                            // Placeholder marks "claimed"; replaced below.
                            *slot = Some(Arc::new(Vec::new()));
                        }
                    });
                    if !claimed {
                        dl.skipped.add(1);
                        continue;
                    }
                    let _span = dhub_obs::span!(obs, "fetch_blob", layer.digest);
                    match get_blob_verified(registry, &layer.digest, policy, &dl.retry) {
                        Ok(blob) => {
                            dl.bytes.add(blob.len() as u64);
                            dl.sim_nanos.add(net.transfer_time(blob.len() as u64).as_nanos() as u64);
                            fetched.update(layer.digest, |slot| *slot = Some(blob.clone()));
                        }
                        Err(_) => {
                            failed_digests.lock().insert(layer.digest);
                        }
                    }
                }
                // Push unconditionally; images referencing an abandoned
                // digest are reclassified after the loop, by manifest
                // contents rather than by who won the claim race.
                images.lock().push(DownloadedImage {
                    repo: repo.clone(),
                    manifest_digest: sess.manifest_digest,
                    manifest: sess.manifest,
                });
            }
        }
    });

    let failed_digests = failed_digests.into_inner();
    let layers: Vec<(Digest, Arc<Vec<u8>>)> = fetched
        .into_entries()
        .into_iter()
        .filter(|(d, _)| !failed_digests.contains(d))
        .map(|(d, blob)| (d, blob.expect("claimed blobs are filled")))
        .collect();
    let mut images = images.into_inner();
    // Every image whose manifest references a failed digest is incomplete
    // — including those that skipped the fetch because another worker held
    // the claim. Classifying here keeps the taxonomy independent of thread
    // interleaving under gave-up conditions.
    let mut failed_images = 0usize;
    images.retain(|img| {
        let complete = img.manifest.layers.iter().all(|l| !failed_digests.contains(&l.digest));
        failed_images += usize::from(!complete);
        complete
    });
    images.sort_by(|a, b| a.repo.cmp(&b.repo));

    dl.other.add(failed_images as u64);
    dl.images_ok.add(images.len() as u64);
    dl.unique_layers.add(layers.len() as u64);
    let report = dl.report();
    DownloadResult { images, layers, report }
}

/// Downloads over the Registry V2 **HTTP** transport instead of in-process
/// calls — the exact protocol path the paper's downloader took against
/// `registry-1.docker.io`. Anonymous (no token dance), like the study.
///
/// Results are identical to [`download_all`] modulo the network model (the
/// transfer here is real TCP, so no simulated duration is reported).
pub fn download_all_http(
    addr: std::net::SocketAddr,
    repos: &[RepoName],
    threads: usize,
) -> DownloadResult {
    download_all_http_with(addr, repos, threads, &RetryPolicy::default())
}

/// [`download_all_http`] with an explicit retry policy; the policy is
/// installed on every per-repo client, and each client's retry counters
/// are folded into the report.
pub fn download_all_http_with(
    addr: std::net::SocketAddr,
    repos: &[RepoName],
    threads: usize,
    policy: &RetryPolicy,
) -> DownloadResult {
    download_all_http_obs(addr, repos, threads, policy, &MetricsRegistry::new())
}

/// Pull-through-mirror spelling of [`download_all_http_obs`]. A mirror
/// started with `RegistryServer::start_mirror` speaks the exact same
/// Registry V2 wire protocol as an origin, so "downloading through the
/// mirror" is nothing more than pointing the HTTP downloader at the
/// mirror's address — the alias exists so call sites state the topology
/// they mean. Results are byte-identical to pulling from the origin
/// directly; only latency (edge hits skip the origin round-trip) and the
/// `dhub_mirror_*` counters differ.
pub fn download_all_mirror_obs(
    mirror_addr: std::net::SocketAddr,
    repos: &[RepoName],
    threads: usize,
    policy: &RetryPolicy,
    obs: &MetricsRegistry,
) -> DownloadResult {
    download_all_http_obs(mirror_addr, repos, threads, policy, obs)
}

/// [`download_all_http_with`] recording into `obs` — same counter-derived
/// report contract as [`download_all_obs`].
pub fn download_all_http_obs(
    addr: std::net::SocketAddr,
    repos: &[RepoName],
    threads: usize,
    policy: &RetryPolicy,
    obs: &MetricsRegistry,
) -> DownloadResult {
    use dhub_registry::http::ClientError;

    let fetched: ShardedMap<Digest, Option<Arc<Vec<u8>>>> = ShardedMap::new(64);
    let images: Mutex<Vec<DownloadedImage>> = Mutex::new(Vec::with_capacity(repos.len()));
    let dl = DownloadCounters::on(obs);
    let failed_digests: Mutex<BTreeSet<Digest>> = Mutex::new(BTreeSet::new());

    dhub_par::par_for_each(threads, repos, |repo| {
        // One client per request batch; connections are per-request
        // (connection: close), matching a crawl that cycles addresses.
        let client =
            dhub_registry::RemoteRegistry::connect_anonymous(addr).with_retry_policy(*policy);
        let resolved = {
            let _span = dhub_obs::span!(obs, "resolve_manifest", repo.full());
            client.get_manifest(repo, "latest")
        };
        match resolved {
            Err(ClientError::AuthRequired) => {
                dl.auth.add(1);
            }
            Err(ClientError::NotFound) => {
                dl.no_latest.add(1);
            }
            Err(_) => {
                dl.other.add(1);
            }
            Ok((manifest_digest, manifest)) => {
                for layer in &manifest.layers {
                    let mut claimed = false;
                    fetched.update(layer.digest, |slot| {
                        if slot.is_none() {
                            claimed = true;
                            *slot = Some(Arc::new(Vec::new()));
                        }
                    });
                    if !claimed {
                        dl.skipped.add(1);
                        continue;
                    }
                    let _span = dhub_obs::span!(obs, "fetch_blob", layer.digest);
                    // The client verifies blob digests internally and
                    // retries mismatches; an error here is final.
                    match client.get_blob(repo, &layer.digest) {
                        Ok(blob) => {
                            dl.bytes.add(blob.len() as u64);
                            let blob = Arc::new(blob);
                            fetched.update(layer.digest, |slot| *slot = Some(blob.clone()));
                        }
                        Err(_) => {
                            failed_digests.lock().insert(layer.digest);
                        }
                    }
                }
                // Reclassified below if any referenced digest failed.
                images.lock().push(DownloadedImage {
                    repo: repo.clone(),
                    manifest_digest,
                    manifest,
                });
            }
        }
        dl.retry.absorb(&client.retry_stats());
    });

    let failed_digests = failed_digests.into_inner();
    let layers: Vec<(Digest, Arc<Vec<u8>>)> = fetched
        .into_entries()
        .into_iter()
        .filter(|(d, _)| !failed_digests.contains(d))
        .map(|(d, blob)| (d, blob.expect("claimed blobs are filled")))
        .collect();
    let mut images = images.into_inner();
    // Same interleaving-independent reclassification as download_all_with.
    let mut failed_images = 0usize;
    images.retain(|img| {
        let complete = img.manifest.layers.iter().all(|l| !failed_digests.contains(&l.digest));
        failed_images += usize::from(!complete);
        complete
    });
    images.sort_by(|a, b| a.repo.cmp(&b.repo));

    dl.other.add(failed_images as u64);
    dl.images_ok.add(images.len() as u64);
    dl.unique_layers.add(layers.len() as u64);
    let report = dl.report();
    DownloadResult { images, layers, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::LayerRef;

    fn registry_with(repos: &[(&str, &str, bool, &[u8])]) -> (Registry, Vec<RepoName>) {
        let reg = Registry::new();
        let mut names = Vec::new();
        for (name, tag, auth, payload) in repos {
            let repo = RepoName::parse(name).unwrap();
            reg.create_repo(repo.clone(), *auth);
            let blob = payload.to_vec();
            let manifest =
                Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
            reg.push_image(&repo, tag, &manifest, vec![blob]).unwrap();
            names.push(repo);
        }
        (reg, names)
    }

    #[test]
    fn downloads_ok_images_and_counts_failures() {
        let (reg, names) = registry_with(&[
            ("a/ok1", "latest", false, b"layer-1"),
            ("a/ok2", "latest", false, b"layer-2"),
            ("b/private", "latest", true, b"secret"),
            ("b/untagged", "v1", false, b"old"),
        ]);
        let res = download_all(&reg, &names, 4, &NetworkModel::datacenter());
        assert_eq!(res.report.images_downloaded, 2);
        assert_eq!(res.report.failed_auth, 1);
        assert_eq!(res.report.failed_no_latest, 1);
        assert_eq!(res.report.failures(), 2);
        assert_eq!(res.layers.len(), 2);
    }

    #[test]
    fn shared_layers_fetched_once() {
        let shared = b"shared base layer".as_slice();
        let specs: Vec<(String, &str, bool, &[u8])> =
            (0..20).map(|i| (format!("u/app{i}"), "latest", false, shared)).collect();
        let reg = Registry::new();
        let mut names = Vec::new();
        for (name, tag, auth, payload) in &specs {
            let repo = RepoName::parse(name).unwrap();
            reg.create_repo(repo.clone(), *auth);
            let blob = payload.to_vec();
            let manifest =
                Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
            reg.push_image(&repo, tag, &manifest, vec![blob]).unwrap();
            names.push(repo);
        }
        let res = download_all(&reg, &names, 8, &NetworkModel::datacenter());
        assert_eq!(res.report.images_downloaded, 20);
        assert_eq!(res.report.unique_layers, 1);
        assert_eq!(res.report.layer_fetches_skipped, 19);
        assert_eq!(res.report.bytes_fetched, res.layers[0].1.len() as u64);
    }

    #[test]
    fn download_counts_pulls_in_registry() {
        let (reg, names) = registry_with(&[("x/y", "latest", false, b"p")]);
        download_all(&reg, &names, 2, &NetworkModel::datacenter());
        assert_eq!(reg.pull_count(&names[0]), Some(1));
    }

    #[test]
    fn empty_repo_list() {
        let (reg, _) = registry_with(&[]);
        let res = download_all(&reg, &[], 4, &NetworkModel::datacenter());
        assert_eq!(res.report.images_downloaded, 0);
        assert!(res.layers.is_empty());
    }

    #[test]
    fn simulated_transfer_positive() {
        let (reg, names) = registry_with(&[("a/b", "latest", false, &[7u8; 100_000])]);
        let res = download_all(&reg, &names, 1, &NetworkModel::wan());
        assert!(res.report.simulated_transfer > Duration::from_millis(40));
    }

    #[test]
    fn deterministic_image_order() {
        let (reg, names) = registry_with(&[
            ("z/last", "latest", false, b"1"),
            ("a/first", "latest", false, b"2"),
        ]);
        let res = download_all(&reg, &names, 4, &NetworkModel::datacenter());
        assert_eq!(res.images[0].repo.full(), "a/first");
        assert_eq!(res.images[1].repo.full(), "z/last");
    }

    use dhub_faults::{FaultConfig, FaultInjector, FaultKind, ALL_FAULT_KINDS};

    fn faulted_registry(cfg: FaultConfig) -> (Registry, Vec<RepoName>) {
        let (reg, names) = registry_with(&[
            ("a/ok1", "latest", false, b"layer-1"),
            ("a/ok2", "latest", false, b"layer-2"),
            ("b/private", "latest", true, b"secret"),
            ("b/untagged", "v1", false, b"old"),
        ]);
        reg.set_fault_injector(Some(Arc::new(FaultInjector::new(cfg))));
        (reg, names)
    }

    #[test]
    fn faulted_download_with_retries_matches_clean_counts() {
        let (clean_reg, names) = registry_with(&[
            ("a/ok1", "latest", false, b"layer-1"),
            ("a/ok2", "latest", false, b"layer-2"),
            ("b/private", "latest", true, b"secret"),
            ("b/untagged", "v1", false, b"old"),
        ]);
        let net = NetworkModel::datacenter();
        let clean = download_all(&clean_reg, &names, 4, &net);

        let (reg, names) = faulted_registry(FaultConfig::uniform(31, 0.3));
        let faulty =
            download_all_with(&reg, &names, 4, &net, &RetryPolicy::fast(16).with_seed(31));
        assert_eq!(faulty.report.images_downloaded, clean.report.images_downloaded);
        assert_eq!(faulty.report.unique_layers, clean.report.unique_layers);
        assert_eq!(faulty.report.bytes_fetched, clean.report.bytes_fetched);
        assert_eq!(faulty.report.failed_auth, clean.report.failed_auth);
        assert_eq!(faulty.report.failed_no_latest, clean.report.failed_no_latest);
        assert!(faulty.report.retries > 0, "30 % faults must force retries");
        assert_eq!(faulty.report.gave_up, 0);
    }

    #[test]
    fn corrupt_blobs_are_verified_and_refetched() {
        // Only bit flips, at a rate retries can ride out: every stored
        // layer must come back byte-identical, with the refetches counted.
        let cfg = ALL_FAULT_KINDS.iter().fold(FaultConfig::uniform(13, 0.5), |c, &k| {
            c.with_weight(k, u32::from(k == FaultKind::Corrupt))
        });
        let (reg, names) = faulted_registry(cfg);
        let res = download_all_with(
            &reg,
            &names,
            2,
            &NetworkModel::datacenter(),
            &RetryPolicy::fast(16).with_seed(13),
        );
        assert_eq!(res.report.images_downloaded, 2);
        assert!(res.report.corrupt_retries > 0, "rate 0.5 must flip some blobs");
        for (digest, blob) in &res.layers {
            assert_eq!(Digest::of(blob.as_ref()), *digest, "stored layer failed verification");
        }
    }

    #[test]
    fn exhausted_retries_fail_the_image_not_the_run() {
        // Blob fetches always fault and the budget is zero: both public
        // images lose a layer, land in failed_other, and the layer list
        // contains no placeholder garbage.
        let cfg = ALL_FAULT_KINDS
            .iter()
            .fold(FaultConfig::off().with_rate(dhub_faults::FaultOp::Blob, 1.0), |c, &k| {
                c.with_weight(k, u32::from(k == FaultKind::Corrupt))
            });
        let (reg, names) = faulted_registry(cfg);
        let res =
            download_all_with(&reg, &names, 2, &NetworkModel::datacenter(), &RetryPolicy::none());
        assert_eq!(res.report.images_downloaded, 0);
        assert_eq!(res.report.failed_other, 2);
        assert_eq!(res.report.failed_auth, 1);
        assert_eq!(res.report.failed_no_latest, 1);
        assert_eq!(res.report.gave_up, 2);
        assert!(res.layers.is_empty());
        assert_eq!(res.report.unique_layers, 0);
    }

    #[test]
    fn shared_failed_layer_fails_every_referencing_image() {
        // Twenty images share one layer whose fetch always fails: every
        // one of them is incomplete, not just the worker that happened to
        // win the claim race. The taxonomy must say so deterministically.
        let shared = b"doomed base layer".as_slice();
        let reg = Registry::new();
        let mut names = Vec::new();
        for i in 0..20 {
            let repo = RepoName::parse(&format!("u/app{i}")).unwrap();
            reg.create_repo(repo.clone(), false);
            let blob = shared.to_vec();
            let manifest =
                Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
            reg.push_image(&repo, "latest", &manifest, vec![blob]).unwrap();
            names.push(repo);
        }
        let cfg = ALL_FAULT_KINDS
            .iter()
            .fold(FaultConfig::off().with_rate(dhub_faults::FaultOp::Blob, 1.0), |c, &k| {
                c.with_weight(k, u32::from(k == FaultKind::Corrupt))
            });
        reg.set_fault_injector(Some(Arc::new(FaultInjector::new(cfg))));
        let res =
            download_all_with(&reg, &names, 4, &NetworkModel::datacenter(), &RetryPolicy::none());
        assert_eq!(res.report.images_downloaded, 0);
        assert_eq!(res.report.failed_other, 20, "every referencing image must fail");
        assert_eq!(res.report.gave_up, 1, "the one claimed fetch exhausted its budget");
        assert!(res.layers.is_empty());
    }
}

#[cfg(test)]
mod http_tests {
    use super::*;
    use dhub_model::{LayerRef, Manifest};
    use dhub_registry::RegistryServer;
    use std::sync::Arc;

    fn serve() -> (RegistryServer, Arc<Registry>, Vec<RepoName>) {
        let reg = Arc::new(Registry::new());
        let mut names = Vec::new();
        let shared = b"shared-base".to_vec();
        for (name, tag, auth, extra) in [
            ("a/one", "latest", false, &b"only-one"[..]),
            ("a/two", "latest", false, b"only-two"),
            ("b/private", "latest", true, b"secret"),
            ("b/old", "v1", false, b"old"),
        ] {
            let repo = RepoName::parse(name).unwrap();
            reg.create_repo(repo.clone(), auth);
            let blobs = vec![shared.clone(), extra.to_vec()];
            let refs: Vec<LayerRef> = blobs
                .iter()
                .map(|b| LayerRef { digest: Digest::of(b), size: b.len() as u64 })
                .collect();
            reg.push_image(&repo, tag, &Manifest::new(refs), blobs).unwrap();
            names.push(repo);
        }
        let srv = RegistryServer::start(reg.clone()).unwrap();
        (srv, reg, names)
    }

    #[test]
    fn http_download_matches_in_process() {
        let (srv, reg, names) = serve();
        let via_http = download_all_http(srv.addr(), &names, 4);
        let in_proc = download_all(&reg, &names, 4, &dhub_registry::NetworkModel::datacenter());

        assert_eq!(via_http.report.images_downloaded, in_proc.report.images_downloaded);
        assert_eq!(via_http.report.failed_auth, in_proc.report.failed_auth);
        assert_eq!(via_http.report.failed_no_latest, in_proc.report.failed_no_latest);
        assert_eq!(via_http.report.unique_layers, in_proc.report.unique_layers);
        assert_eq!(via_http.report.bytes_fetched, in_proc.report.bytes_fetched);

        let mut h: Vec<Digest> = via_http.layers.iter().map(|(d, _)| *d).collect();
        let mut p: Vec<Digest> = in_proc.layers.iter().map(|(d, _)| *d).collect();
        h.sort();
        p.sort();
        assert_eq!(h, p);
        srv.shutdown();
    }

    #[test]
    fn http_download_shares_layers_once() {
        let (srv, _reg, names) = serve();
        let res = download_all_http(srv.addr(), &names, 2);
        // 2 public latest images share one base layer: 3 unique layers.
        assert_eq!(res.report.images_downloaded, 2);
        assert_eq!(res.report.unique_layers, 3);
        assert_eq!(res.report.layer_fetches_skipped, 1);
        srv.shutdown();
    }
}
