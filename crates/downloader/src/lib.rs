//! Parallel image downloader (§III-B of the paper).
//!
//! The paper bypassed `docker pull` (which unpacks layers and writes
//! storage-driver snapshots) and talked to the Registry API directly:
//! resolve `latest`, then fetch each referenced layer — and *only unique
//! layers*, skipping blobs already fetched for another image. The same
//! logic runs here over the in-process registry: a worker crew downloads
//! images in parallel, a shared dedup set prevents duplicate layer
//! fetches, and the failure taxonomy (auth vs. missing `latest`) is
//! tallied exactly as the paper reports it.

use dhub_model::{Digest, Manifest, RepoName};
use dhub_par::ShardedMap;
use dhub_registry::{ApiError, NetworkModel, Registry};
use dhub_sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One successfully downloaded image.
#[derive(Clone, Debug)]
pub struct DownloadedImage {
    pub repo: RepoName,
    pub manifest_digest: Digest,
    pub manifest: Manifest,
}

/// Aggregate download outcome — the numbers behind the paper's
/// "355,319 images / 1,792,609 unique layers / 111,384 failures (13 % auth,
/// 87 % no latest)".
#[derive(Debug, Default)]
pub struct DownloadReport {
    pub images_downloaded: usize,
    pub unique_layers: usize,
    /// Compressed bytes actually transferred (unique layers only).
    pub bytes_fetched: u64,
    /// Layer fetches skipped because another image already pulled the blob.
    pub layer_fetches_skipped: u64,
    pub failed_auth: usize,
    pub failed_no_latest: usize,
    pub failed_other: usize,
    /// Simulated wall-clock transfer time under the network model, summed
    /// over transfers (i.e. single-connection equivalent).
    pub simulated_transfer: Duration,
}

impl DownloadReport {
    /// Total failed images.
    pub fn failures(&self) -> usize {
        self.failed_auth + self.failed_no_latest + self.failed_other
    }
}

/// Download result: per-image successes plus fetched unique layer blobs.
pub struct DownloadResult {
    pub images: Vec<DownloadedImage>,
    /// Unique layer blobs, keyed by digest (decompressed later by the
    /// analyzer).
    pub layers: Vec<(Digest, Arc<Vec<u8>>)>,
    pub report: DownloadReport,
}

/// Downloads the `latest` image of every repository in `repos` using
/// `threads` parallel workers, fetching each unique layer once.
pub fn download_all(
    registry: &Registry,
    repos: &[RepoName],
    threads: usize,
    net: &NetworkModel,
) -> DownloadResult {
    // digest → blob, populated once per unique layer.
    let fetched: ShardedMap<Digest, Option<Arc<Vec<u8>>>> = ShardedMap::new(64);
    let images: Mutex<Vec<DownloadedImage>> = Mutex::new(Vec::with_capacity(repos.len()));
    let auth = AtomicU64::new(0);
    let no_latest = AtomicU64::new(0);
    let other = AtomicU64::new(0);
    let skipped = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);
    let sim_nanos = AtomicU64::new(0);

    dhub_par::par_for_each(threads, repos, |repo| {
        match registry.get_manifest(repo, "latest", false) {
            Err(ApiError::AuthRequired) => {
                auth.fetch_add(1, Ordering::Relaxed);
            }
            Err(ApiError::TagNotFound) => {
                no_latest.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                other.fetch_add(1, Ordering::Relaxed);
            }
            Ok(sess) => {
                sim_nanos.fetch_add(net.transfer_time(1024).as_nanos() as u64, Ordering::Relaxed);
                for layer in &sess.manifest.layers {
                    // Claim the digest first so exactly one worker fetches it.
                    let mut claimed = false;
                    fetched.update(layer.digest, |slot| {
                        if slot.is_none() {
                            claimed = true;
                            // Placeholder marks "claimed"; replaced below.
                            *slot = Some(Arc::new(Vec::new()));
                        }
                    });
                    if !claimed {
                        skipped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let blob = registry.get_blob(&layer.digest).expect("manifest refs exist");
                    bytes.fetch_add(blob.len() as u64, Ordering::Relaxed);
                    sim_nanos.fetch_add(
                        net.transfer_time(blob.len() as u64).as_nanos() as u64,
                        Ordering::Relaxed,
                    );
                    fetched.update(layer.digest, |slot| *slot = Some(blob.clone()));
                }
                images.lock().push(DownloadedImage {
                    repo: repo.clone(),
                    manifest_digest: sess.manifest_digest,
                    manifest: sess.manifest,
                });
            }
        }
    });

    let layers: Vec<(Digest, Arc<Vec<u8>>)> = fetched
        .into_entries()
        .into_iter()
        .map(|(d, blob)| (d, blob.expect("claimed blobs are filled")))
        .collect();
    let mut images = images.into_inner();
    images.sort_by(|a, b| a.repo.cmp(&b.repo));

    let report = DownloadReport {
        images_downloaded: images.len(),
        unique_layers: layers.len(),
        bytes_fetched: bytes.load(Ordering::Relaxed),
        layer_fetches_skipped: skipped.load(Ordering::Relaxed),
        failed_auth: auth.load(Ordering::Relaxed) as usize,
        failed_no_latest: no_latest.load(Ordering::Relaxed) as usize,
        failed_other: other.load(Ordering::Relaxed) as usize,
        simulated_transfer: Duration::from_nanos(sim_nanos.load(Ordering::Relaxed)),
    };
    DownloadResult { images, layers, report }
}

/// Downloads over the Registry V2 **HTTP** transport instead of in-process
/// calls — the exact protocol path the paper's downloader took against
/// `registry-1.docker.io`. Anonymous (no token dance), like the study.
///
/// Results are identical to [`download_all`] modulo the network model (the
/// transfer here is real TCP, so no simulated duration is reported).
pub fn download_all_http(
    addr: std::net::SocketAddr,
    repos: &[RepoName],
    threads: usize,
) -> DownloadResult {
    use dhub_registry::http::ClientError;

    let fetched: ShardedMap<Digest, Option<Arc<Vec<u8>>>> = ShardedMap::new(64);
    let images: Mutex<Vec<DownloadedImage>> = Mutex::new(Vec::with_capacity(repos.len()));
    let auth = AtomicU64::new(0);
    let no_latest = AtomicU64::new(0);
    let other = AtomicU64::new(0);
    let skipped = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);

    dhub_par::par_for_each(threads, repos, |repo| {
        // One client per request batch; connections are per-request
        // (connection: close), matching a crawl that cycles addresses.
        let client = dhub_registry::RemoteRegistry::connect_anonymous(addr);
        match client.get_manifest(repo, "latest") {
            Err(ClientError::AuthRequired) => {
                auth.fetch_add(1, Ordering::Relaxed);
            }
            Err(ClientError::NotFound) => {
                no_latest.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                other.fetch_add(1, Ordering::Relaxed);
            }
            Ok((manifest_digest, manifest)) => {
                for layer in &manifest.layers {
                    let mut claimed = false;
                    fetched.update(layer.digest, |slot| {
                        if slot.is_none() {
                            claimed = true;
                            *slot = Some(Arc::new(Vec::new()));
                        }
                    });
                    if !claimed {
                        skipped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match client.get_blob(repo, &layer.digest) {
                        Ok(blob) => {
                            bytes.fetch_add(blob.len() as u64, Ordering::Relaxed);
                            let blob = Arc::new(blob);
                            fetched.update(layer.digest, |slot| *slot = Some(blob.clone()));
                        }
                        Err(_) => {
                            other.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                images.lock().push(DownloadedImage { repo: repo.clone(), manifest_digest, manifest });
            }
        }
    });

    let layers: Vec<(Digest, Arc<Vec<u8>>)> = fetched
        .into_entries()
        .into_iter()
        .map(|(d, blob)| (d, blob.expect("claimed blobs are filled")))
        .collect();
    let mut images = images.into_inner();
    images.sort_by(|a, b| a.repo.cmp(&b.repo));

    let report = DownloadReport {
        images_downloaded: images.len(),
        unique_layers: layers.len(),
        bytes_fetched: bytes.load(Ordering::Relaxed),
        layer_fetches_skipped: skipped.load(Ordering::Relaxed),
        failed_auth: auth.load(Ordering::Relaxed) as usize,
        failed_no_latest: no_latest.load(Ordering::Relaxed) as usize,
        failed_other: other.load(Ordering::Relaxed) as usize,
        simulated_transfer: Duration::ZERO,
    };
    DownloadResult { images, layers, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhub_model::LayerRef;

    fn registry_with(repos: &[(&str, &str, bool, &[u8])]) -> (Registry, Vec<RepoName>) {
        let reg = Registry::new();
        let mut names = Vec::new();
        for (name, tag, auth, payload) in repos {
            let repo = RepoName::parse(name).unwrap();
            reg.create_repo(repo.clone(), *auth);
            let blob = payload.to_vec();
            let manifest =
                Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
            reg.push_image(&repo, tag, &manifest, vec![blob]).unwrap();
            names.push(repo);
        }
        (reg, names)
    }

    #[test]
    fn downloads_ok_images_and_counts_failures() {
        let (reg, names) = registry_with(&[
            ("a/ok1", "latest", false, b"layer-1"),
            ("a/ok2", "latest", false, b"layer-2"),
            ("b/private", "latest", true, b"secret"),
            ("b/untagged", "v1", false, b"old"),
        ]);
        let res = download_all(&reg, &names, 4, &NetworkModel::datacenter());
        assert_eq!(res.report.images_downloaded, 2);
        assert_eq!(res.report.failed_auth, 1);
        assert_eq!(res.report.failed_no_latest, 1);
        assert_eq!(res.report.failures(), 2);
        assert_eq!(res.layers.len(), 2);
    }

    #[test]
    fn shared_layers_fetched_once() {
        let shared = b"shared base layer".as_slice();
        let specs: Vec<(String, &str, bool, &[u8])> =
            (0..20).map(|i| (format!("u/app{i}"), "latest", false, shared)).collect();
        let reg = Registry::new();
        let mut names = Vec::new();
        for (name, tag, auth, payload) in &specs {
            let repo = RepoName::parse(name).unwrap();
            reg.create_repo(repo.clone(), *auth);
            let blob = payload.to_vec();
            let manifest =
                Manifest::new(vec![LayerRef { digest: Digest::of(&blob), size: blob.len() as u64 }]);
            reg.push_image(&repo, tag, &manifest, vec![blob]).unwrap();
            names.push(repo);
        }
        let res = download_all(&reg, &names, 8, &NetworkModel::datacenter());
        assert_eq!(res.report.images_downloaded, 20);
        assert_eq!(res.report.unique_layers, 1);
        assert_eq!(res.report.layer_fetches_skipped, 19);
        assert_eq!(res.report.bytes_fetched, res.layers[0].1.len() as u64);
    }

    #[test]
    fn download_counts_pulls_in_registry() {
        let (reg, names) = registry_with(&[("x/y", "latest", false, b"p")]);
        download_all(&reg, &names, 2, &NetworkModel::datacenter());
        assert_eq!(reg.pull_count(&names[0]), Some(1));
    }

    #[test]
    fn empty_repo_list() {
        let (reg, _) = registry_with(&[]);
        let res = download_all(&reg, &[], 4, &NetworkModel::datacenter());
        assert_eq!(res.report.images_downloaded, 0);
        assert!(res.layers.is_empty());
    }

    #[test]
    fn simulated_transfer_positive() {
        let (reg, names) = registry_with(&[("a/b", "latest", false, &[7u8; 100_000])]);
        let res = download_all(&reg, &names, 1, &NetworkModel::wan());
        assert!(res.report.simulated_transfer > Duration::from_millis(40));
    }

    #[test]
    fn deterministic_image_order() {
        let (reg, names) = registry_with(&[
            ("z/last", "latest", false, b"1"),
            ("a/first", "latest", false, b"2"),
        ]);
        let res = download_all(&reg, &names, 4, &NetworkModel::datacenter());
        assert_eq!(res.images[0].repo.full(), "a/first");
        assert_eq!(res.images[1].repo.full(), "z/last");
    }
}

#[cfg(test)]
mod http_tests {
    use super::*;
    use dhub_model::{LayerRef, Manifest};
    use dhub_registry::RegistryServer;
    use std::sync::Arc;

    fn serve() -> (RegistryServer, Arc<Registry>, Vec<RepoName>) {
        let reg = Arc::new(Registry::new());
        let mut names = Vec::new();
        let shared = b"shared-base".to_vec();
        for (name, tag, auth, extra) in [
            ("a/one", "latest", false, &b"only-one"[..]),
            ("a/two", "latest", false, b"only-two"),
            ("b/private", "latest", true, b"secret"),
            ("b/old", "v1", false, b"old"),
        ] {
            let repo = RepoName::parse(name).unwrap();
            reg.create_repo(repo.clone(), auth);
            let blobs = vec![shared.clone(), extra.to_vec()];
            let refs: Vec<LayerRef> = blobs
                .iter()
                .map(|b| LayerRef { digest: Digest::of(b), size: b.len() as u64 })
                .collect();
            reg.push_image(&repo, tag, &Manifest::new(refs), blobs).unwrap();
            names.push(repo);
        }
        let srv = RegistryServer::start(reg.clone()).unwrap();
        (srv, reg, names)
    }

    #[test]
    fn http_download_matches_in_process() {
        let (srv, reg, names) = serve();
        let via_http = download_all_http(srv.addr(), &names, 4);
        let in_proc = download_all(&reg, &names, 4, &dhub_registry::NetworkModel::datacenter());

        assert_eq!(via_http.report.images_downloaded, in_proc.report.images_downloaded);
        assert_eq!(via_http.report.failed_auth, in_proc.report.failed_auth);
        assert_eq!(via_http.report.failed_no_latest, in_proc.report.failed_no_latest);
        assert_eq!(via_http.report.unique_layers, in_proc.report.unique_layers);
        assert_eq!(via_http.report.bytes_fetched, in_proc.report.bytes_fetched);

        let mut h: Vec<Digest> = via_http.layers.iter().map(|(d, _)| *d).collect();
        let mut p: Vec<Digest> = in_proc.layers.iter().map(|(d, _)| *d).collect();
        h.sort();
        p.sort();
        assert_eq!(h, p);
        srv.shutdown();
    }

    #[test]
    fn http_download_shares_layers_once() {
        let (srv, _reg, names) = serve();
        let res = download_all_http(srv.addr(), &names, 2);
        // 2 public latest images share one base layer: 3 unique layers.
        assert_eq!(res.report.images_downloaded, 2);
        assert_eq!(res.report.unique_layers, 3);
        assert_eq!(res.report.layer_fetches_skipped, 1);
        srv.shutdown();
    }
}
