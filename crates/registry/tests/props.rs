//! Property tests for the registry substrate.

#![cfg(feature = "proptest")]

use dhub_model::{Digest, LayerRef, Manifest, RepoName};
use dhub_registry::{DiskBlobStore, Registry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Blob store: whatever goes in comes back out under its digest.
    #[test]
    fn blobstore_roundtrip(blobs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..2048), 1..10)) {
        let reg = Registry::new();
        let mut digests = Vec::new();
        for b in &blobs {
            digests.push(reg.blob_store().put(b.clone()));
        }
        for (b, d) in blobs.iter().zip(&digests) {
            let got = reg.blob_store().get(d).unwrap();
            prop_assert_eq!(got.as_slice(), b.as_slice());
        }
        // Unique count never exceeds inserted count.
        prop_assert!(reg.blob_store().len() <= blobs.len());
    }

    /// Push/pull invariant: a pushed manifest is always resolvable and its
    /// layers fetchable.
    #[test]
    fn push_pull_invariant(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..512), 1..6), tag in "[a-z][a-z0-9]{0,8}") {
        let reg = Registry::new();
        let repo = RepoName::user("prop", "repo");
        reg.create_repo(repo.clone(), false);
        let refs: Vec<LayerRef> = payloads
            .iter()
            .map(|p| LayerRef { digest: Digest::of(p), size: p.len() as u64 })
            .collect();
        let manifest = Manifest::new(refs);
        reg.push_image(&repo, &tag, &manifest, payloads.clone()).unwrap();
        let sess = reg.get_manifest(&repo, &tag, false).unwrap();
        prop_assert_eq!(&sess.manifest, &manifest);
        for l in &sess.manifest.layers {
            let blob = reg.get_blob(&l.digest).unwrap();
            prop_assert_eq!(Digest::of(&blob), l.digest);
        }
    }

    /// Disk store round-trip with digest verification.
    #[test]
    fn diskstore_roundtrip(blobs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..1024), 1..6)) {
        let dir = std::env::temp_dir().join(format!("dhub-prop-{}-{:?}",
            std::process::id(), std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskBlobStore::open(&dir).unwrap();
        for b in &blobs {
            let d = store.put(b).unwrap();
            prop_assert_eq!(store.get(&d).unwrap().unwrap(), b.clone());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
