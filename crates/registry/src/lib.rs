//! In-process Docker registry simulation.
//!
//! This substrate stands in for Docker Hub (see DESIGN.md §2): the same
//! protocol surface the paper's tooling hit, minus the TCP transport.
//!
//! * [`blobstore`] — content-addressed storage for layer tarballs and
//!   manifests (what the registry backend stores on disk/S3),
//! * [`api`] — the Registry-V2-shaped operations: resolve a tag to a
//!   manifest, fetch blobs, with token-auth failures and missing-`latest`
//!   failures exactly where the paper's downloader hit them (§III-B),
//! * [`search`] — the Hub's paginated web search, including the duplicate
//!   index entries the paper had to dedup (634,412 hits → 457,627 repos),
//! * [`network`] — a deterministic latency/bandwidth model so pull-latency
//!   experiments (the paper's compression trade-off discussion) have a
//!   transport cost to measure.

pub mod api;
pub mod blobstore;
pub mod diskstore;
pub mod http;
pub mod network;
pub mod search;

pub use api::{ApiError, PullSession, Registry, RegistryStats};
pub use blobstore::BlobStore;
pub use diskstore::{DiskBlobStore, DiskStoreError};
pub use http::{BackendError, ClientError, MirrorBackend, RegistryServer, RemoteRegistry, RetryStats, DEFAULT_MAX_CONNS, DEMO_TOKEN};
pub use network::NetworkModel;
pub use search::{SearchIndex, SearchPage};
