//! Disk-backed content-addressed blob storage.
//!
//! The in-memory [`crate::BlobStore`] is the default for simulation speed;
//! this variant persists blobs the way Docker's registry does — sharded by
//! digest prefix under a root directory (`blobs/sha256/ab/<hex>`), written
//! atomically via `dhub_persist`'s shared temp-write + fsync + rename +
//! parent-fsync discipline. It exists so storage-policy experiments (dedup
//! store, uncompressed-layer policy) can be run against real filesystems.

use dhub_model::Digest;
use dhub_persist::{atomic_publish, fsync_dir};
use dhub_sync::Mutex;
use std::path::{Path, PathBuf};

/// Errors from disk blob operations.
#[derive(Debug)]
pub enum DiskStoreError {
    Io(std::io::Error),
    /// Stored bytes do not match their digest (on-disk corruption).
    Corrupt(Digest),
}

impl std::fmt::Display for DiskStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskStoreError::Io(e) => write!(f, "blob io error: {e}"),
            DiskStoreError::Corrupt(d) => write!(f, "corrupt blob {d:?}"),
        }
    }
}

impl std::error::Error for DiskStoreError {}

impl From<std::io::Error> for DiskStoreError {
    fn from(e: std::io::Error) -> Self {
        DiskStoreError::Io(e)
    }
}

/// A content-addressed blob store rooted at a directory.
pub struct DiskBlobStore {
    root: PathBuf,
    /// Serializes writers of the same digest (rename is atomic, but this
    /// avoids redundant temp writes).
    write_lock: Mutex<()>,
}

impl DiskBlobStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<DiskBlobStore, DiskStoreError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("blobs/sha256"))?;
        Ok(DiskBlobStore { root, write_lock: Mutex::new(()) })
    }

    fn path_for(&self, digest: &Digest) -> PathBuf {
        let hex = digest.to_docker_string();
        let hex = hex.strip_prefix("sha256:").unwrap().to_string();
        self.root.join("blobs/sha256").join(&hex[..2]).join(hex)
    }

    /// Stores `data`, returning its digest. Idempotent.
    pub fn put(&self, data: &[u8]) -> Result<Digest, DiskStoreError> {
        let digest = Digest::of(data);
        let path = self.path_for(&digest);
        if path.exists() {
            return Ok(digest);
        }
        let _guard = self.write_lock.lock();
        if path.exists() {
            return Ok(digest);
        }
        let parent = path.parent().expect("blob path has parent");
        std::fs::create_dir_all(parent)?;
        // The crash-consistency contract (temp write + fsync + atomic
        // rename + parent-directory fsync) lives in `dhub_persist` so the
        // registry and the persist tier share one durability code path.
        // A freshly created shard directory needs its own parent synced
        // too, or a crash can drop the whole shard.
        fsync_dir(&self.root.join("blobs/sha256"))?;
        atomic_publish(&path, data)?;
        Ok(digest)
    }

    /// Fetches and verifies a blob.
    pub fn get(&self, digest: &Digest) -> Result<Option<Vec<u8>>, DiskStoreError> {
        let path = self.path_for(digest);
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if Digest::of(&data) != *digest {
            return Err(DiskStoreError::Corrupt(*digest));
        }
        Ok(Some(data))
    }

    /// True if the blob exists (without reading it).
    pub fn contains(&self, digest: &Digest) -> bool {
        self.path_for(digest).exists()
    }

    /// Deletes a blob if present; returns whether it existed.
    pub fn delete(&self, digest: &Digest) -> Result<bool, DiskStoreError> {
        match std::fs::remove_file(self.path_for(digest)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Total bytes across stored blobs (walks the tree).
    pub fn disk_bytes(&self) -> Result<u64, DiskStoreError> {
        let mut total = 0;
        let base = self.root.join("blobs/sha256");
        for shard in std::fs::read_dir(&base)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for blob in std::fs::read_dir(shard.path())? {
                let blob = blob?;
                if blob.path().extension().map(|e| e == "tmp").unwrap_or(false) {
                    continue;
                }
                total += blob.metadata()?.len();
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> (PathBuf, DiskBlobStore) {
        let dir = std::env::temp_dir().join(format!(
            "dhub-diskstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskBlobStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn put_get_roundtrip() {
        let (dir, store) = tmp_store("roundtrip");
        let d = store.put(b"layer bytes on disk").unwrap();
        assert_eq!(store.get(&d).unwrap().unwrap(), b"layer bytes on disk");
        assert!(store.contains(&d));
        assert_eq!(d, Digest::of(b"layer bytes on disk"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn idempotent_put() {
        let (dir, store) = tmp_store("idem");
        let d1 = store.put(&[7u8; 1000]).unwrap();
        let d2 = store.put(&[7u8; 1000]).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(store.disk_bytes().unwrap(), 1000);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_blob_is_none() {
        let (dir, store) = tmp_store("missing");
        assert!(store.get(&Digest::of(b"nope")).unwrap().is_none());
        assert!(!store.contains(&Digest::of(b"nope")));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corruption_detected() {
        let (dir, store) = tmp_store("corrupt");
        let d = store.put(b"pristine").unwrap();
        // Flip a byte behind the store's back.
        let path = store.path_for(&d);
        std::fs::write(&path, b"tampered!").unwrap();
        assert!(matches!(store.get(&d).unwrap_err(), DiskStoreError::Corrupt(_)));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn delete_and_disk_bytes() {
        let (dir, store) = tmp_store("delete");
        let d1 = store.put(&[1u8; 100]).unwrap();
        let _d2 = store.put(&[2u8; 200]).unwrap();
        assert_eq!(store.disk_bytes().unwrap(), 300);
        assert!(store.delete(&d1).unwrap());
        assert!(!store.delete(&d1).unwrap());
        assert_eq!(store.disk_bytes().unwrap(), 200);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_puts() {
        let (dir, store) = tmp_store("concurrent");
        let store = std::sync::Arc::new(store);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = store.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        s.put(&i.to_le_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.disk_bytes().unwrap(), 200);
        let _ = std::fs::remove_dir_all(dir);
    }
}
