//! Content-addressed blob storage.
//!
//! Every layer tarball and manifest is stored once, keyed by sha256 — the
//! mechanism behind Docker's layer sharing (§V-A): pushing the same blob
//! twice costs nothing. Blobs are `Arc`ed so concurrent pulls share one
//! allocation.

use dhub_model::Digest;
use dhub_sync::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A shared, content-addressed blob store.
#[derive(Default)]
pub struct BlobStore {
    blobs: RwLock<HashMap<Digest, Arc<Vec<u8>>>>,
    /// Total stored bytes (deduplicated).
    bytes: std::sync::atomic::AtomicU64,
}

impl BlobStore {
    /// Creates an empty store.
    pub fn new() -> BlobStore {
        BlobStore::default()
    }

    /// Stores `data`, returning its digest. Re-pushing an existing blob is
    /// a no-op (this is what makes layer sharing free).
    pub fn put(&self, data: Vec<u8>) -> Digest {
        let digest = Digest::of(&data);
        let mut map = self.blobs.write();
        map.entry(digest).or_insert_with(|| {
            self.bytes.fetch_add(data.len() as u64, std::sync::atomic::Ordering::Relaxed);
            Arc::new(data)
        });
        digest
    }

    /// Fetches a blob by digest.
    pub fn get(&self, digest: &Digest) -> Option<Arc<Vec<u8>>> {
        self.blobs.read().get(digest).cloned()
    }

    /// True if the digest is stored.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.blobs.read().contains_key(digest)
    }

    /// Number of unique blobs.
    pub fn len(&self) -> usize {
        self.blobs.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.read().is_empty()
    }

    /// Total deduplicated bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// All stored digests (snapshot).
    pub fn digests(&self) -> Vec<Digest> {
        self.blobs.read().keys().copied().collect()
    }

    /// Keeps only blobs whose digest satisfies `keep`; returns the number
    /// of blobs and bytes removed (the GC primitive).
    pub fn retain(&self, keep: impl Fn(&Digest) -> bool) -> (usize, u64) {
        let mut map = self.blobs.write();
        let before = map.len();
        let mut freed = 0u64;
        map.retain(|d, blob| {
            if keep(d) {
                true
            } else {
                freed += blob.len() as u64;
                false
            }
        });
        self.bytes.fetch_sub(freed, std::sync::atomic::Ordering::Relaxed);
        (before - map.len(), freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = BlobStore::new();
        let d = store.put(b"layer bytes".to_vec());
        assert_eq!(store.get(&d).unwrap().as_slice(), b"layer bytes");
        assert!(store.contains(&d));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn digest_matches_content() {
        let store = BlobStore::new();
        let d = store.put(b"abc".to_vec());
        assert_eq!(d, Digest::of(b"abc"));
    }

    #[test]
    fn deduplicates_identical_blobs() {
        let store = BlobStore::new();
        let d1 = store.put(vec![7; 1000]);
        let d2 = store.put(vec![7; 1000]);
        assert_eq!(d1, d2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 1000);
    }

    #[test]
    fn missing_blob_is_none() {
        let store = BlobStore::new();
        assert!(store.get(&Digest::of(b"nope")).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_puts_count_once() {
        let store = std::sync::Arc::new(BlobStore::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = store.clone();
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        s.put(i.to_le_bytes().to_vec());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 100);
        assert_eq!(store.total_bytes(), 400);
    }
}
